//! Property tests for the pipeline runtime: arena pooling and parallel
//! data parallelism must be *bitwise* invisible — same loss bits, same
//! gradient bits — across random model shapes, kernel-worker counts and
//! weight-gradient modes.

use proptest::prelude::*;

use mepipe_comm::{Backend, TransportConfig};
use mepipe_core::svpp::Mepipe;
use mepipe_core::{Svpp, Synth};
use mepipe_model::config::TransformerConfig;
use mepipe_schedule::generator::{
    Dapple, Dims, GPipe, Hanayo, ScheduleGenerator, TeraPipe, Vpp, Zb, Zbv,
};
use mepipe_schedule::ir::Schedule;
use mepipe_schedule::validate::validate;
use mepipe_schedule::{Blocks, DualPipe};
use mepipe_sim::{simulate, SimConfig, UniformSimCost};
use mepipe_tensor::init::synthetic_tokens;
use mepipe_train::{
    optim::ModelGrads,
    params::ModelParams,
    reference::{add_grads, batch_forward_backward},
    PipelineRuntime, RunStats, WgradMode,
};

fn make_batch(cfg: &TransformerConfig, n: usize, seed: u64) -> Vec<Vec<usize>> {
    (0..n)
        .map(|i| synthetic_tokens(cfg.seq_len + 1, cfg.vocab, seed + i as u64))
        .collect()
}

fn mode_of(idx: usize) -> WgradMode {
    match idx {
        0 => WgradMode::Immediate,
        1 => WgradMode::AtWeightOp,
        _ => WgradMode::DrainOnWait,
    }
}

/// The serial replica loop `run_data_parallel` replaced — kept here as
/// the executable spec its parallel version must match bit for bit.
fn serial_data_parallel(
    rt: &PipelineRuntime,
    schedule: &Schedule,
    batch: &[Vec<usize>],
    replicas: usize,
    mode: WgradMode,
) -> (f64, ModelGrads) {
    let shard = batch.len() / replicas;
    let mut loss = 0.0f64;
    let mut grads: Option<ModelGrads> = None;
    for r in 0..replicas {
        let stats = rt
            .run_iteration(schedule, &batch[r * shard..(r + 1) * shard], mode, None)
            .expect("serial replica run");
        loss += stats.loss;
        match &mut grads {
            None => grads = Some(stats.grads),
            Some(g) => add_grads(g, &stats.grads, 1.0),
        }
    }
    let mut g = grads.expect("at least one replica");
    g.scale(1.0 / replicas as f32);
    (loss / replicas as f64, g)
}

/// Merged arena counters over every stage of a run.
fn merged_arena(stats: &RunStats) -> mepipe_tensor::ArenaStats {
    stats
        .arena
        .iter()
        .fold(mepipe_tensor::ArenaStats::default(), |acc, s| acc.merged(s))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Arena-pooled runs are bit-identical to fresh-allocation runs:
    /// same loss bits, `max_abs_diff == 0`, across random shapes ×
    /// kernel-worker counts × weight-gradient modes — including the
    /// second iteration, which runs entirely out of recycled buffers.
    #[test]
    fn pooled_runs_are_bit_identical_to_fresh(
        layers_half in 1usize..3,   // 2 or 4 layers over 2 stages
        ts in prop::sample::select(vec![4usize, 8]),
        slices in prop::sample::select(vec![1usize, 2, 4]),
        micro_batches in 1usize..3,
        workers in 1usize..4,
        mode_idx in 0usize..3,
        seed in 0u64..1000,
    ) {
        let layers = 2 * layers_half;
        let cfg = TransformerConfig {
            seq_len: ts * slices,
            ..TransformerConfig::tiny(layers)
        };
        let mode = mode_of(mode_idx);
        let sch = Mepipe::new()
            .generate(&Dims::new(2, micro_batches).slices(slices))
            .unwrap();
        let batch = make_batch(&cfg, micro_batches, seed);

        let run = |pooled: bool| {
            let mut rt = PipelineRuntime::new(ModelParams::init(cfg, seed), 2, 1)
                .with_kernel_workers(workers)
                .with_arena(pooled);
            // Two steps: the second exercises warm free lists (pooled)
            // against plain allocation (fresh), with the SGD-updated
            // model making the iterations distinct.
            let first = rt.train_step(&sch, &batch, mode, 0.05).unwrap();
            let second = rt.train_step(&sch, &batch, mode, 0.05).unwrap();
            (first, second)
        };
        let (p1, p2) = run(true);
        let (f1, f2) = run(false);
        prop_assert_eq!(p1.loss.to_bits(), f1.loss.to_bits());
        prop_assert_eq!(p2.loss.to_bits(), f2.loss.to_bits());
        prop_assert_eq!(p1.grads.max_abs_diff(&f1.grads), 0.0);
        prop_assert_eq!(p2.grads.max_abs_diff(&f2.grads), 0.0);
        // The pooled second step actually pooled something...
        let warm = merged_arena(&p2);
        prop_assert!(warm.hits > 0, "warm run never hit the arena");
        // ...and the unpooled runtime reports idle counters.
        let fresh = merged_arena(&f2);
        prop_assert_eq!(fresh.hits + fresh.misses, 0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// The concurrent `run_data_parallel` equals the serial replica loop
    /// exactly: bit-equal loss, bit-equal gradients.
    #[test]
    fn parallel_dp_matches_serial_loop_bitwise(
        replicas in 1usize..4,
        shard in 1usize..3,
        workers in 1usize..3,
        mode_idx in 0usize..3,
        seed in 0u64..1000,
    ) {
        let cfg = TransformerConfig {
            seq_len: 16,
            ..TransformerConfig::tiny(2)
        };
        let mode = mode_of(mode_idx);
        let sch = Mepipe::new().generate(&Dims::new(2, shard).slices(2)).unwrap();
        let batch = make_batch(&cfg, replicas * shard, seed);
        let rt = PipelineRuntime::new(ModelParams::init(cfg, seed), 2, 1)
            .with_kernel_workers(workers);

        let par = rt.run_data_parallel(&sch, &batch, replicas, mode).unwrap();
        let (serial_loss, serial_grads) = serial_data_parallel(&rt, &sch, &batch, replicas, mode);
        prop_assert_eq!(par.loss.to_bits(), serial_loss.to_bits());
        prop_assert_eq!(par.grads.max_abs_diff(&serial_grads), 0.0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Hot-swapping to a different schedule between iterations — what the
    /// calibration loop does mid-run — is bitwise invisible: an iteration
    /// under the new schedule on a runtime already warmed by the old one
    /// (recycled arenas, live transport links) equals a fresh runtime
    /// running the new schedule from scratch, on both the InProc and UDS
    /// transports and under every weight-gradient mode.
    #[test]
    fn hot_swapped_schedule_matches_fresh_run(
        seed in 0u64..1000,
        from_slices in prop::sample::select(vec![2usize, 4, 8]),
        to_slices in prop::sample::select(vec![1usize, 2, 4]),
        mode_idx in 0usize..3,
        uds in proptest::bool::ANY,
    ) {
        let stages = 2;
        let cfg = TransformerConfig {
            seq_len: 16,
            ..TransformerConfig::tiny(4)
        };
        let mode = mode_of(mode_idx);
        let micro_batches = stages;
        let from = Mepipe::new()
            .generate(&Dims::new(stages, micro_batches).slices(from_slices))
            .unwrap();
        let to = Mepipe::new()
            .generate(&Dims::new(stages, micro_batches).slices(to_slices))
            .unwrap();
        let batch = make_batch(&cfg, micro_batches, seed);

        let run = |warm: bool, tag: &str| {
            let dir = uds.then(|| {
                std::env::temp_dir().join(format!(
                    "mepipe-swap-{tag}-{}-{seed}-{from_slices}-{to_slices}",
                    std::process::id()
                ))
            });
            let config = match &dir {
                Some(d) => TransportConfig {
                    backend: Backend::Uds(d.clone()),
                    ..TransportConfig::default()
                },
                None => TransportConfig::in_proc(),
            };
            let rt = PipelineRuntime::new(ModelParams::init(cfg, seed), stages, 1)
                .with_transport(config);
            if warm {
                // The pre-swap iteration seeds the arenas and exercises
                // the links with the *old* slicing before the swap.
                rt.run_iteration(&from, &batch, mode, None)
                    .expect("pre-swap iteration");
            }
            let stats = rt
                .run_iteration(&to, &batch, mode, None)
                .expect("post-swap iteration");
            drop(rt);
            if let Some(d) = dir {
                let _ = std::fs::remove_dir_all(&d);
            }
            stats
        };

        let swapped = run(true, "warm");
        let fresh = run(false, "fresh");
        prop_assert_eq!(
            swapped.loss.to_bits(),
            fresh.loss.to_bits(),
            "hot-swapped loss differs from a scratch run of the new schedule"
        );
        prop_assert_eq!(
            swapped.grads.max_abs_diff(&fresh.grads),
            0.0,
            "hot-swapped grads differ from a scratch run of the new schedule"
        );
    }
}

/// The whole registered generator zoo — the seven literature baselines,
/// SVPP and MEPipe, and the three synthesized tiers — with the dims each
/// family defines at a sampled grid point. The third element is the
/// runtime's virtual-chunk count (= the schedule dims' `v`).
fn generator_zoo(p: usize, n: usize, s: usize) -> Vec<(Box<dyn ScheduleGenerator>, Dims, usize)> {
    let flat = Dims::new(p, n);
    vec![
        (Box::new(GPipe) as Box<dyn ScheduleGenerator>, flat, 1),
        (Box::new(Dapple), flat, 1),
        (Box::new(Zb), flat, 1),
        (Box::new(Vpp), flat.virtual_chunks(2), 2),
        (Box::new(Hanayo), flat.virtual_chunks(2), 2),
        (Box::new(Zbv), flat.virtual_chunks(2), 2),
        (Box::new(TeraPipe), flat.slices(s), 1),
        (Box::new(Svpp::new()), flat.slices(s), 1),
        (Box::new(Mepipe::new()), flat.slices(s), 1),
        (
            Box::new(DualPipe::new()),
            flat.virtual_chunks(2).slices(s),
            2,
        ),
        (Box::new(Blocks::uniform()), flat.slices(s), 1),
        (Box::new(Synth::new()), flat.slices(s), 1),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2))]

    /// Every registered schedule generator — old zoo and synthesized
    /// tiers alike — produces schedules at sampled Fig-8-style grid
    /// points that (a) pass the structural validator, (b) clear the
    /// simulator, and (c) train on the in-process runtime: loss and
    /// gradients within tolerance of the single-device batch reference
    /// (schedules reorder float accumulation, so bitwise equality with
    /// the reference is not expected), and bitwise *repeatable* across
    /// two runs of the same schedule. The model is deliberately minute:
    /// the 12-generator × 2-run loop runs under the debug profile in CI.
    #[test]
    fn generator_zoo_validates_simulates_and_trains(
        p in prop::sample::select(vec![2usize, 4]),
        s in prop::sample::select(vec![1usize, 2]),
        seed in 0u64..1000,
    ) {
        // n = 2p: even (DualPipe) and a multiple of p (VPP).
        let n = 2 * p;
        let cfg = TransformerConfig {
            hidden: 32,
            layers: 8, // divisible by every p·v ≤ 8 in the grid
            ffn_hidden: 64,
            heads: 2,
            kv_heads: 2,
            vocab: 64,
            seq_len: 8,
        };
        let batch = make_batch(&cfg, n, seed + 1);
        let reference = batch_forward_backward(&ModelParams::init(cfg, seed), &batch);
        for (g, dims, chunks) in generator_zoo(p, n, s) {
            let sch = g
                .generate(&dims)
                .unwrap_or_else(|e| panic!("{} rejected {dims}: {e}", g.name()));
            validate(&sch).unwrap_or_else(|e| panic!("{} invalid at {dims}: {e}", g.name()));
            let sim = simulate(&sch, &UniformSimCost::default(), &SimConfig::default())
                .unwrap_or_else(|e| panic!("{} failed to simulate at {dims}: {e}", g.name()));
            prop_assert!(
                sim.makespan > 0.0,
                "{}: empty simulated makespan at {}", g.name(), dims
            );
            let rt = PipelineRuntime::new(ModelParams::init(cfg, seed), p, chunks);
            let stats = rt
                .run_iteration(&sch, &batch, WgradMode::DrainOnWait, None)
                .unwrap_or_else(|e| panic!("{} run failed at {dims}: {e:?}", g.name()));
            prop_assert!(
                (stats.loss - reference.loss).abs() < 1e-4,
                "{}: loss {} vs reference {} at {}", g.name(), stats.loss, reference.loss, dims
            );
            prop_assert!(
                stats.grads.max_abs_diff(&reference.grads) < 1e-3,
                "{}: grads off reference at {}", g.name(), dims
            );
            let again = rt
                .run_iteration(&sch, &batch, WgradMode::DrainOnWait, None)
                .unwrap();
            prop_assert_eq!(
                stats.loss.to_bits(),
                again.loss.to_bits(),
                "{} is not bitwise repeatable at {}", g.name(), dims
            );
            prop_assert_eq!(stats.grads.max_abs_diff(&again.grads), 0.0);
        }
    }
}

/// The acceptance bar for the arena itself: once warmed up, at least 90%
/// of all buffer acquisitions across every stage are served from the
/// free lists (in practice it is well above that — the residual misses
/// are the per-iteration gradient accumulators, which leave their stage
/// thread inside the merged result).
#[test]
fn arena_steady_state_hit_rate_is_at_least_90_percent() {
    let cfg = TransformerConfig {
        seq_len: 32,
        ..TransformerConfig::tiny(4)
    };
    let sch = Mepipe::new().generate(&Dims::new(2, 2).slices(4)).unwrap();
    let batch = make_batch(&cfg, 2, 77);
    let rt = PipelineRuntime::new(ModelParams::init(cfg, 77), 2, 1).with_kernel_workers(1);
    assert!(rt.pooled(), "arenas must be on by default");

    let cold = rt
        .run_iteration(&sch, &batch, WgradMode::DrainOnWait, None)
        .unwrap();
    let warm = rt
        .run_iteration(&sch, &batch, WgradMode::DrainOnWait, None)
        .unwrap();
    let cold_stats = merged_arena(&cold);
    let warm_stats = merged_arena(&warm);
    // The cold run mostly misses; the warm run runs out of the pool.
    assert!(cold_stats.misses > 0);
    assert!(
        warm_stats.hit_rate() >= 0.90,
        "steady-state hit rate {:.3} below 0.90 ({} hits / {} misses)",
        warm_stats.hit_rate(),
        warm_stats.hits,
        warm_stats.misses
    );
    // Per-stage counters are populated for every stage.
    assert_eq!(warm.arena.len(), 2);
    assert!(warm.arena.iter().all(|s| s.hits > 0));
}
