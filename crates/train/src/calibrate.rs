//! The closed calibration loop: measured spans → fitted costs → a better
//! schedule, hot-swapped into the running job.
//!
//! The offline search prices candidates with datasheet constants; on the
//! machine actually running the job those constants can be off by orders
//! of magnitude (a CPU reproduction vs an RTX 4090 datasheet, or an
//! emulated wire vs PCIe). [`Calibrator`] closes the gap online:
//!
//! 1. run a few **warmup iterations** with span tracing on (in-process,
//!    or merged from multi-process stage dumps — the trace format is the
//!    same either way);
//! 2. **score** the model currently in force against each round's
//!    measurement (`sim::bubblecheck`) into a
//!    [`ConvergenceReport`] — round 0 records the uncalibrated error;
//! 3. **fit** the GEMM-efficiency curve and the pipeline-link alpha–beta
//!    to the pooled samples (`sim::calibrate` over
//!    `mepipe_model::calibrate`'s least squares);
//! 4. **re-search** the hot-swap-compatible schedule space under the
//!    fitted costs ([`SearchEngine::retune_mepipe`]), polish the winner
//!    with `core::reschedule`, and hand it back as a [`Proposal`].
//!
//! Swapping is safe between iterations because the runtime's persistent
//! state — model parameters and warmed tensor arenas — is schedule-
//! agnostic: [`PipelineRuntime::run_iteration`] takes the schedule per
//! call, and arenas key buffers by shape, not by schedule position. The
//! proptests assert the contract: a swapped-to schedule produces the
//! same loss bits as running that schedule from scratch.

use std::sync::Arc;

use mepipe_core::reschedule::reschedule_backwards;
use mepipe_hw::{accelerator::AcceleratorSpec, link::LinkSpec, topology::ClusterSpec};
use mepipe_model::{
    config::TransformerConfig,
    cost::ExecutionCost,
    partition::{PartitionSpec, SequenceSplit},
};
use mepipe_schedule::ir::Schedule;
use mepipe_sim::{
    bubblecheck::BubbleCheckReport,
    calibrate::{extract_samples, fit_execution_cost, ConvergenceReport, MeasuredSamples},
    engine::{simulate, SimConfig},
    ModelCost,
};
use mepipe_strategy::SearchEngine;
use mepipe_trace::IterationTrace;

use crate::pipeline::{PipelineRuntime, WgradMode};

/// A schedule the calibrated search recommends swapping to.
#[derive(Debug, Clone)]
pub struct Proposal {
    /// Sequence slices per micro-batch.
    pub slices: usize,
    /// Regeneration knob: SVPP warmup cap for template rows, the
    /// solver's unit cap for synthesized rows.
    pub warmup: usize,
    /// Whether the winning row came out of the order solver rather than
    /// the hand-written SVPP generator (both are MEPipe-shaped and
    /// hot-swap compatible).
    pub synthesized: bool,
    /// Iteration time the fitted model predicts, seconds.
    pub predicted_s: f64,
    /// The schedule, already polished by backward rescheduling.
    pub schedule: Arc<Schedule>,
    /// Whether the backward-rescheduling polish changed the op order.
    pub rescheduled: bool,
}

/// Online cost-model calibration from measured span traces.
///
/// One instance accumulates samples across rounds (pooling is why later
/// rounds keep improving) and owns the [`SearchEngine`] whose schedule
/// cache amortises re-search across rounds.
pub struct Calibrator {
    current: ExecutionCost,
    pooled: MeasuredSamples,
    report: ConvergenceReport,
    engine: SearchEngine,
}

impl Calibrator {
    /// Starts calibrating from `prior` — typically
    /// [`Calibrator::prior_for`]'s datasheet-constant model, whose error
    /// round 0 records.
    pub fn new(prior: ExecutionCost) -> Self {
        Self {
            current: prior,
            pooled: MeasuredSamples::default(),
            report: ConvergenceReport::default(),
            engine: SearchEngine::new(),
        }
    }

    /// The uncalibrated prior for a single-replica training run: `cfg`
    /// split over `stages` pipeline stages with `slices`-way sequence
    /// slicing, priced for an RTX 4090 over PCIe — deliberately *not*
    /// this machine, which is exactly what calibration corrects.
    pub fn prior_for(
        cfg: &TransformerConfig,
        stages: usize,
        slices: usize,
        micro_batches: usize,
    ) -> Result<ExecutionCost, String> {
        // The analytic model counts embedding and head as one pipeline
        // slot each (`layers + 2`, Section 7.2); the runtime instead
        // attaches them to the boundary stages. Price `layers - 2`
        // decoder layers so each modeled slot corresponds to one decoder
        // layer a stage actually executes — the boundary extras fold
        // into those stages' fitted samples.
        let cfg = TransformerConfig {
            layers: cfg.layers.saturating_sub(2),
            ..*cfg
        };
        let spec = PartitionSpec {
            pp: stages,
            vp: 1,
            dp: 1,
            seq: SequenceSplit::SlicePipeline { slices },
            recompute: false,
            micro_batch_size: 1,
            global_batch: micro_batches,
        };
        let cluster = ClusterSpec {
            nodes: 1,
            gpus_per_node: stages,
            accelerator: AcceleratorSpec::rtx4090(),
            intra_node: LinkSpec::pcie4(),
            inter_node: LinkSpec::ib_100g(),
        };
        ExecutionCost::new(cfg, spec, &cluster)
    }

    /// How the runtime is modeled when scoring fits: dynamic wgrad drain
    /// (the execution mode the traces come from), no DP sync or optimizer
    /// (neither happens inside `run_iteration`).
    fn sim_config() -> SimConfig {
        SimConfig {
            dynamic_wgrad: true,
            include_dp_sync: false,
            include_optimizer: false,
            ..Default::default()
        }
    }

    /// Scores the model currently in force against `trace` (measured
    /// under `schedule`) and appends the round to the report. Returns the
    /// round's mean relative error.
    ///
    /// # Errors
    ///
    /// Propagates simulation failures (malformed schedule).
    pub fn record_round(
        &mut self,
        schedule: &Schedule,
        trace: &IterationTrace,
    ) -> Result<f64, String> {
        let sim = simulate(
            schedule,
            &ModelCost::new(self.current.clone()),
            &Self::sim_config(),
        )?;
        self.report
            .push_round(&BubbleCheckReport::from_run(trace, &sim));
        Ok(self
            .report
            .rounds
            .last()
            .expect("round pushed")
            .mean_rel_error)
    }

    /// Pools fitting samples from one measured iteration (call once per
    /// traced iteration; several per round is fine).
    pub fn absorb(&mut self, trace: &IterationTrace) {
        self.pooled.merge(&extract_samples(trace, &self.current));
    }

    /// Refits the model from every sample pooled so far.
    pub fn refit(&mut self) {
        self.current = fit_execution_cost(&self.current, &self.pooled);
    }

    /// One full round on a single trace: score, pool, refit.
    ///
    /// # Errors
    ///
    /// Propagates simulation failures from [`Calibrator::record_round`].
    pub fn observe(&mut self, schedule: &Schedule, trace: &IterationTrace) -> Result<f64, String> {
        let err = self.record_round(schedule, trace)?;
        self.absorb(trace);
        self.refit();
        Ok(err)
    }

    /// The model currently in force (the prior until the first refit).
    pub fn model(&self) -> &ExecutionCost {
        &self.current
    }

    /// The round-by-round error trajectory.
    pub fn report(&self) -> &ConvergenceReport {
        &self.report
    }

    /// Re-runs the schedule search under the fitted costs and returns the
    /// best hot-swap-compatible schedule, polished by backward
    /// rescheduling. `None` if no candidate fits `max_units`.
    ///
    /// # Errors
    ///
    /// Propagates generation/simulation failures from the search.
    pub fn propose(&self, max_units: Option<usize>) -> Result<Option<Proposal>, String> {
        let mut rows = self.engine.retune_mepipe(&self.current, max_units)?;
        if rows.is_empty() {
            return Ok(None);
        }
        let best = rows.remove(0);
        let polished = reschedule_backwards(&best.schedule)?;
        let rescheduled = polished.workers != best.schedule.workers;
        Ok(Some(Proposal {
            slices: best.slices,
            warmup: best.warmup,
            synthesized: best.synthesized,
            predicted_s: best.iteration_time,
            schedule: if rescheduled {
                Arc::new(polished)
            } else {
                best.schedule
            },
            rescheduled,
        }))
    }
}

/// Outcome of [`autotune`].
#[derive(Debug, Clone)]
pub struct AutotuneOutcome {
    /// The calibration error trajectory, one round per fit cycle.
    pub report: ConvergenceReport,
    /// The schedule the fitted search recommends (`None` only if nothing
    /// generates, which a valid starting schedule rules out).
    pub proposal: Option<Proposal>,
    /// Loss of every iteration run, in order — warmup iterations first,
    /// then (when the proposal differs) one iteration under the swapped
    /// schedule. The swap must not perturb these: each equals the loss of
    /// the same schedule run from scratch, bit for bit.
    pub losses: Vec<f64>,
    /// Whether the final iteration ran under a swapped schedule.
    pub swapped: bool,
}

/// Runs the whole loop on a live runtime: `rounds` fit cycles of
/// `iters_per_round` traced warmup iterations each, then a calibrated
/// re-search and — when it recommends a different shape — one iteration
/// under the swapped schedule, on the same runtime, without dropping the
/// warmed arenas or model state.
///
/// `prior.partition()` must match the runtime shape (stages, virtual
/// chunks, micro-batches, sequence length) — [`Calibrator::prior_for`]
/// builds a matching one.
///
/// # Errors
///
/// Fails on shape mismatches, transport failures (as strings), or when
/// the runtime was built without tracing.
pub fn autotune(
    rt: &PipelineRuntime,
    schedule: &Schedule,
    batch: &[Vec<usize>],
    mode: WgradMode,
    prior: ExecutionCost,
    rounds: usize,
    iters_per_round: usize,
) -> Result<AutotuneOutcome, String> {
    if !rt.tracing() {
        return Err("autotune needs a runtime built with_tracing(true)".into());
    }
    let spec = prior.partition();
    if spec.pp != schedule.meta.stages
        || spec.vp != schedule.meta.virtual_chunks
        || spec.micro_batches() != schedule.meta.micro_batches
        || spec.seq.spp_slices() != schedule.meta.slices
        || prior.config().seq_len != rt.model.cfg.seq_len
    {
        return Err(format!(
            "prior shape (p={} v={} n={} s={} seq={}) disagrees with the \
             schedule/runtime (p={} v={} n={} s={} seq={})",
            spec.pp,
            spec.vp,
            spec.micro_batches(),
            spec.seq.spp_slices(),
            prior.config().seq_len,
            schedule.meta.stages,
            schedule.meta.virtual_chunks,
            schedule.meta.micro_batches,
            schedule.meta.slices,
            rt.model.cfg.seq_len,
        ));
    }
    let mut cal = Calibrator::new(prior);
    let mut losses = Vec::new();
    for _ in 0..rounds.max(1) {
        let mut last_trace = None;
        for _ in 0..iters_per_round.max(1) {
            let stats = rt
                .run_iteration(schedule, batch, mode, None)
                .map_err(|e| e.to_string())?;
            losses.push(stats.loss);
            let trace = stats.trace.ok_or("traced run returned no trace")?;
            cal.absorb(&trace);
            last_trace = Some(trace);
        }
        // Score the model that was in force for this round's iterations,
        // then refit from everything pooled so far.
        cal.record_round(schedule, &last_trace.expect("at least one iteration"))?;
        cal.refit();
    }
    let proposal = cal.propose(None)?;
    let swapped = proposal.as_ref().is_some_and(|p| {
        p.slices != schedule.meta.slices || p.schedule.workers != schedule.workers
    });
    if let (true, Some(p)) = (swapped, &proposal) {
        let stats = rt
            .run_iteration(&p.schedule, batch, mode, None)
            .map_err(|e| e.to_string())?;
        losses.push(stats.loss);
    }
    Ok(AutotuneOutcome {
        report: cal.report().clone(),
        proposal,
        losses,
        swapped,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mepipe_comm::TransportConfig;
    use mepipe_core::svpp::Mepipe;
    use mepipe_schedule::generator::{Dims, ScheduleGenerator};
    use mepipe_tensor::init::synthetic_tokens;

    use crate::params::ModelParams;

    fn tiny_cfg() -> TransformerConfig {
        TransformerConfig {
            seq_len: 32,
            ..TransformerConfig::tiny(4)
        }
    }

    fn make_batch(cfg: &TransformerConfig, n: usize, seed: u64) -> Vec<Vec<usize>> {
        (0..n)
            .map(|i| synthetic_tokens(cfg.seq_len + 1, cfg.vocab, seed + i as u64))
            .collect()
    }

    /// A link whose per-message latency dwarfs everything else: the
    /// calibrated search must react by coarsening the slicing.
    fn laggy() -> LinkSpec {
        LinkSpec {
            name: "laggy-test-link",
            bandwidth: 1e9,
            latency: 2e-3,
        }
    }

    /// A model whose GEMMs take milliseconds on this CPU. The
    /// convergence assertion needs the datasheet prior to be *clearly*
    /// wrong: at `tiny`'s 64-hidden, µs-scale ops the RTX 4090 prior
    /// lands inside the fitted model's own residual and round-to-round
    /// noise decides the comparison.
    fn chunky_cfg() -> TransformerConfig {
        TransformerConfig {
            seq_len: 32,
            hidden: 256,
            ffn_hidden: 512,
            ..TransformerConfig::tiny(4)
        }
    }

    #[test]
    fn autotune_error_shrinks_and_proposal_coarsens_on_a_laggy_link() {
        let cfg = chunky_cfg();
        let rt = PipelineRuntime::new(ModelParams::init(cfg, 42), 2, 1)
            .with_transport(TransportConfig::in_proc().with_link(laggy()))
            .with_tracing(true);
        let schedule = Mepipe::new().generate(&Dims::new(2, 2).slices(8)).unwrap();
        let batch = make_batch(&cfg, 2, 7);
        let prior = Calibrator::prior_for(&cfg, 2, 8, 2).unwrap();
        let out = autotune(&rt, &schedule, &batch, WgradMode::DrainOnWait, prior, 2, 1).unwrap();
        assert_eq!(out.report.rounds.len(), 2, "{}", out.report.render());
        assert!(
            out.report.is_strictly_decreasing(),
            "{}",
            out.report.render()
        );
        let p = out.proposal.expect("search proposes something");
        assert!(
            p.slices < 8,
            "a 2 ms/message link should coarsen slicing, got {} slices",
            p.slices
        );
        assert!(out.swapped, "proposal should differ from the 8-slice start");
    }

    #[test]
    fn calibration_never_perturbs_the_losses() {
        // Every loss autotune records — before and after the swap — must
        // equal a from-scratch run of the same schedule, bit for bit:
        // calibration observes, it does not touch the math.
        let cfg = tiny_cfg();
        let rt = PipelineRuntime::new(ModelParams::init(cfg, 11), 2, 1)
            .with_transport(TransportConfig::in_proc().with_link(laggy()))
            .with_tracing(true);
        let schedule = Mepipe::new().generate(&Dims::new(2, 2).slices(4)).unwrap();
        let batch = make_batch(&cfg, 2, 3);
        let prior = Calibrator::prior_for(&cfg, 2, 4, 2).unwrap();
        let out = autotune(&rt, &schedule, &batch, WgradMode::DrainOnWait, prior, 2, 1).unwrap();

        let fresh = |sch: &Schedule| {
            PipelineRuntime::new(ModelParams::init(cfg, 11), 2, 1)
                .run_iteration(sch, &batch, WgradMode::DrainOnWait, None)
                .unwrap()
                .loss
        };
        let warmup_loss = fresh(&schedule);
        for (i, l) in out.losses[..2].iter().enumerate() {
            assert_eq!(
                l.to_bits(),
                warmup_loss.to_bits(),
                "warmup iteration {i} loss drifted"
            );
        }
        if out.swapped {
            let p = out.proposal.as_ref().unwrap();
            assert_eq!(
                out.losses.last().unwrap().to_bits(),
                fresh(&p.schedule).to_bits(),
                "post-swap loss differs from running the new schedule from scratch"
            );
        }
    }

    #[test]
    fn shape_mismatch_is_rejected_up_front() {
        let cfg = tiny_cfg();
        let rt = PipelineRuntime::new(ModelParams::init(cfg, 1), 2, 1).with_tracing(true);
        let schedule = Mepipe::new().generate(&Dims::new(2, 2).slices(4)).unwrap();
        let batch = make_batch(&cfg, 2, 1);
        // Prior says 4 micro-batches; the schedule runs 2.
        let prior = Calibrator::prior_for(&cfg, 2, 4, 4).unwrap();
        let err =
            autotune(&rt, &schedule, &batch, WgradMode::DrainOnWait, prior, 1, 1).unwrap_err();
        assert!(err.contains("disagrees"), "{err}");
    }
}
