//! Live activation-memory accounting for one pipeline stage.
//!
//! The tracker plays the role of the device allocator: saved activations,
//! KV caches and retained weight-gradient operands are charged when
//! created and credited when dropped; the running peak is what Tables 5–8
//! and Figure 1 are about. An optional hard cap turns over-subscription
//! into an explicit error — the "OOM" rows of the paper's configuration
//! tables.

/// Byte-level activation tracker with optional cap.
#[derive(Debug, Clone)]
pub struct MemTracker {
    current: usize,
    peak: usize,
    cap: Option<usize>,
}

impl MemTracker {
    /// A tracker with an optional capacity in bytes.
    pub fn new(cap: Option<usize>) -> Self {
        Self {
            current: 0,
            peak: 0,
            cap,
        }
    }

    /// Charges `bytes`; returns `Err` if a cap would be exceeded (the
    /// charge is still recorded so callers can report the overshoot).
    pub fn alloc(&mut self, bytes: usize) -> Result<(), String> {
        self.current += bytes;
        self.peak = self.peak.max(self.current);
        match self.cap {
            Some(cap) if self.current > cap => Err(format!(
                "activation memory {} exceeds cap {cap}",
                self.current
            )),
            _ => Ok(()),
        }
    }

    /// Credits `bytes`.
    ///
    /// # Panics
    ///
    /// Panics on double-free (credit exceeding the balance).
    pub fn free(&mut self, bytes: usize) {
        assert!(bytes <= self.current, "freeing more than allocated");
        self.current -= bytes;
    }

    /// Current balance in bytes.
    pub fn current(&self) -> usize {
        self.current
    }

    /// Peak balance in bytes.
    pub fn peak(&self) -> usize {
        self.peak
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracks_peak_across_churn() {
        let mut m = MemTracker::new(None);
        m.alloc(100).unwrap();
        m.alloc(50).unwrap();
        m.free(120);
        m.alloc(10).unwrap();
        assert_eq!(m.current(), 40);
        assert_eq!(m.peak(), 150);
    }

    #[test]
    fn cap_violation_is_reported_once_exceeded() {
        let mut m = MemTracker::new(Some(100));
        assert!(m.alloc(80).is_ok());
        assert!(m.alloc(30).is_err());
        assert_eq!(m.peak(), 110);
    }

    #[test]
    #[should_panic(expected = "freeing more than allocated")]
    #[allow(unused_must_use)]
    fn double_free_panics() {
        let mut m = MemTracker::new(None);
        m.alloc(10);
        m.free(20);
    }
}
