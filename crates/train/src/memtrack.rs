//! Live activation-memory accounting for one pipeline stage.
//!
//! The tracker plays the role of the device allocator: saved activations,
//! KV caches and retained weight-gradient operands are charged when
//! created and credited when dropped; the running peak is what Tables 5–8
//! and Figure 1 are about. An optional hard cap turns over-subscription
//! into an explicit error — the "OOM" rows of the paper's configuration
//! tables.

/// A typed over-cap verdict: which stage blew which cap, by how much.
///
/// The OOM rows of the Tables 5–8 reproduction used to travel as
/// formatted strings; machine consumers (the status exporter, the
/// memcheck report, the strategy evaluator) want the numbers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemError {
    /// Live bytes at the moment the cap was exceeded.
    pub current: usize,
    /// The cap that was exceeded, bytes.
    pub cap: usize,
    /// The pipeline stage the tracker accounts for.
    pub stage: usize,
}

impl std::fmt::Display for MemError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "stage {}: activation memory {} exceeds cap {}",
            self.stage, self.current, self.cap
        )
    }
}

impl std::error::Error for MemError {}

/// Byte-level activation tracker with optional cap.
#[derive(Debug, Clone)]
pub struct MemTracker {
    current: usize,
    peak: usize,
    cap: Option<usize>,
    stage: usize,
}

impl MemTracker {
    /// A tracker for `stage` with an optional capacity in bytes.
    pub fn new(stage: usize, cap: Option<usize>) -> Self {
        Self {
            current: 0,
            peak: 0,
            cap,
            stage,
        }
    }

    /// Charges `bytes`; returns a typed [`MemError`] if a cap would be
    /// exceeded (the charge is still recorded so callers can report the
    /// overshoot).
    pub fn alloc(&mut self, bytes: usize) -> Result<(), MemError> {
        self.current += bytes;
        self.peak = self.peak.max(self.current);
        match self.cap {
            Some(cap) if self.current > cap => Err(MemError {
                current: self.current,
                cap,
                stage: self.stage,
            }),
            _ => Ok(()),
        }
    }

    /// Credits `bytes`.
    ///
    /// # Panics
    ///
    /// Panics on double-free (credit exceeding the balance).
    pub fn free(&mut self, bytes: usize) {
        assert!(bytes <= self.current, "freeing more than allocated");
        self.current -= bytes;
    }

    /// Current balance in bytes.
    pub fn current(&self) -> usize {
        self.current
    }

    /// Peak balance in bytes.
    pub fn peak(&self) -> usize {
        self.peak
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracks_peak_across_churn() {
        let mut m = MemTracker::new(0, None);
        m.alloc(100).unwrap();
        m.alloc(50).unwrap();
        m.free(120);
        m.alloc(10).unwrap();
        assert_eq!(m.current(), 40);
        assert_eq!(m.peak(), 150);
    }

    #[test]
    fn cap_violation_is_reported_once_exceeded() {
        let mut m = MemTracker::new(3, Some(100));
        assert!(m.alloc(80).is_ok());
        let err = m.alloc(30).expect_err("over cap");
        assert_eq!(
            err,
            MemError {
                current: 110,
                cap: 100,
                stage: 3
            }
        );
        assert!(err.to_string().contains("stage 3"));
        assert_eq!(m.peak(), 110);
    }

    #[test]
    #[should_panic(expected = "freeing more than allocated")]
    #[allow(unused_must_use)]
    fn double_free_panics() {
        let mut m = MemTracker::new(0, None);
        m.alloc(10);
        m.free(20);
    }
}
