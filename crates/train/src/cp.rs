//! Context parallelism on real tensors (Section 2.2).
//!
//! CP shards one sample's tokens across workers that each hold the full
//! model. Every attention layer then needs the key/value tensors of *all*
//! workers — the all-gather/reduce-scatter traffic that makes CP the
//! paper's expensive alternative to SPP (Figure 9, Table 7).
//!
//! Two Megatron details reproduced here:
//!
//! * **Symmetric two-slice assignment** (Section 7.3): the sample is cut
//!   into `2R` slices and worker `r` gets slices `r` and `2R−1−r`, so
//!   every worker sees the same total causal context — balanced FLOPs.
//! * **dKV reduction**: each worker produces gradient contributions for
//!   the *whole* K/V tensor; summing across workers (the reduce-scatter)
//!   recovers the exact full-sequence gradient.
//!
//! The functions here run the workers sequentially — the object of study
//! is the *math and the communication volumes*, which the cost model
//! prices; thread-level execution lives in the pipeline runtime.

use mepipe_tensor::{
    ops::{causal_attention, causal_attention_backward},
    Tensor,
};

/// Slice indices `(lo, hi)` of worker `r` under Megatron's symmetric
/// two-slice assignment of `2R` slices.
pub fn symmetric_slices(worker: usize, workers: usize) -> (usize, usize) {
    (worker, 2 * workers - 1 - worker)
}

/// Forward of one attention head under CP: each worker computes its two
/// symmetric slices' queries against the (all-gathered) full K/V prefix.
/// Returns the full output, assembled in token order.
///
/// # Panics
///
/// Panics unless the token count divides by `2 × workers`.
pub fn cp_attention_forward(q: &Tensor, k: &Tensor, v: &Tensor, workers: usize) -> Tensor {
    let t = q.rows();
    assert_eq!(t % (2 * workers), 0, "tokens must divide into 2R slices");
    let step = t / (2 * workers);
    let mut out = Tensor::zeros(t, q.cols());
    for r in 0..workers {
        let (a, b) = symmetric_slices(r, workers);
        for sl in [a, b] {
            let off = sl * step;
            let qs = q.slice_rows(off, step);
            // The "all-gather": this worker sees the K/V prefix it needs.
            let kp = k.slice_rows(0, off + step);
            let vp = v.slice_rows(0, off + step);
            let (o, _) = causal_attention(&qs, &kp, &vp, off);
            for i in 0..step {
                out.row_mut(off + i).copy_from_slice(o.row(i));
            }
        }
    }
    out
}

/// Backward of [`cp_attention_forward`]: returns `(dq, dk, dv)` with the
/// dK/dV contributions of all workers reduced (the reduce-scatter).
pub fn cp_attention_backward(
    dout: &Tensor,
    q: &Tensor,
    k: &Tensor,
    v: &Tensor,
    workers: usize,
) -> (Tensor, Tensor, Tensor) {
    let t = q.rows();
    let d = q.cols();
    let step = t / (2 * workers);
    let mut dq = Tensor::zeros(t, d);
    let mut dk = Tensor::zeros(t, d);
    let mut dv = Tensor::zeros(t, d);
    for r in 0..workers {
        let (a, b) = symmetric_slices(r, workers);
        for sl in [a, b] {
            let off = sl * step;
            let qs = q.slice_rows(off, step);
            let kp = k.slice_rows(0, off + step);
            let vp = v.slice_rows(0, off + step);
            let (_, saved) = causal_attention(&qs, &kp, &vp, off);
            let (dqs, dks, dvs) =
                causal_attention_backward(&dout.slice_rows(off, step), &qs, &kp, &vp, &saved);
            for i in 0..step {
                dq.row_mut(off + i).copy_from_slice(dqs.row(i));
            }
            for i in 0..off + step {
                for c in 0..d {
                    dk.set(i, c, dk.at(i, c) + dks.at(i, c));
                    dv.set(i, c, dv.at(i, c) + dvs.at(i, c));
                }
            }
        }
    }
    (dq, dk, dv)
}

/// The causal-attention FLOPs a worker performs under the symmetric
/// assignment (in key-position visits): slice `r` contributes its
/// positions' prefix lengths; pairing `r` with `2R−1−r` equalises the sum
/// across workers — the balancing claim of Section 7.3.
pub fn worker_attention_cost(worker: usize, workers: usize, tokens: usize) -> usize {
    let step = tokens / (2 * workers);
    let (a, b) = symmetric_slices(worker, workers);
    let slice_cost = |sl: usize| -> usize {
        // Σ over the slice's positions of (position + 1).
        let lo = sl * step;
        (lo + 1..=lo + step).sum()
    };
    slice_cost(a) + slice_cost(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mepipe_tensor::init::{rng, uniform};

    #[test]
    fn cp_forward_equals_full_attention() {
        let mut r = rng(61);
        let (t, d) = (16usize, 4usize);
        let q = uniform(t, d, 1.0, &mut r);
        let k = uniform(t, d, 1.0, &mut r);
        let v = uniform(t, d, 1.0, &mut r);
        let (full, _) = causal_attention(&q, &k, &v, 0);
        for workers in [1usize, 2, 4] {
            let cp = cp_attention_forward(&q, &k, &v, workers);
            assert!(
                full.max_abs_diff(&cp) < 1e-5,
                "workers = {workers}: diff {}",
                full.max_abs_diff(&cp)
            );
        }
    }

    #[test]
    fn cp_backward_equals_full_attention_backward() {
        let mut r = rng(62);
        let (t, d) = (16usize, 4usize);
        let q = uniform(t, d, 1.0, &mut r);
        let k = uniform(t, d, 1.0, &mut r);
        let v = uniform(t, d, 1.0, &mut r);
        let dout = uniform(t, d, 1.0, &mut r);
        let (_, saved) = causal_attention(&q, &k, &v, 0);
        let (dq_f, dk_f, dv_f) = causal_attention_backward(&dout, &q, &k, &v, &saved);
        for workers in [2usize, 4] {
            let (dq, dk, dv) = cp_attention_backward(&dout, &q, &k, &v, workers);
            assert!(dq_f.max_abs_diff(&dq) < 1e-4);
            assert!(dk_f.max_abs_diff(&dk) < 1e-4);
            assert!(dv_f.max_abs_diff(&dv) < 1e-4);
        }
    }

    #[test]
    fn symmetric_assignment_balances_attention_cost() {
        // Section 7.3: "(1,4) for one worker and (2,3) for another ...
        // balances the computation workload across different workers".
        for workers in [2usize, 4, 8] {
            let tokens = 64 * workers;
            let costs: Vec<usize> = (0..workers)
                .map(|r| worker_attention_cost(r, workers, tokens))
                .collect();
            assert!(
                costs.iter().all(|&c| c == costs[0]),
                "workers = {workers}: {costs:?}"
            );
        }
    }

    #[test]
    fn slices_cover_without_overlap() {
        let workers = 4;
        let mut seen = vec![false; 2 * workers];
        for r in 0..workers {
            let (a, b) = symmetric_slices(r, workers);
            assert!(!seen[a] && !seen[b]);
            seen[a] = true;
            seen[b] = true;
        }
        assert!(seen.iter().all(|&x| x));
    }
}
