//! `mepipe-worker`: run pipeline stages as separate OS processes.
//!
//! Each worker process initialises the same model and batch from shared
//! seeds, claims its stage's endpoint on a Unix-domain-socket mesh, and
//! executes exactly its rows of the schedule; boundary tensors cross
//! process boundaries as checksummed wire frames. Because every byte a
//! stage consumes is identical to what the in-process runtime would have
//! handed it, the final loss is bit-identical to a single-process run —
//! which `launch` verifies, and `scripts/check.sh` smokes.
//!
//! Modes:
//!
//! * `worker --stage I --stages P --dir D [opts]` — run one stage,
//!   print its loss share as f64 bits.
//! * `launch --stages P [opts]` — spawn P workers over a fresh UDS
//!   mesh, combine their loss shares in stage order, and compare
//!   bit-for-bit against an in-process run of the same iteration.
//! * `selftest-faults [opts]` — run one iteration on the emulated
//!   transport with seeded fault injection (first frame of every
//!   endpoint dropped, plus random delays) and verify the loss is
//!   bit-identical to the clean run, with retransmissions actually
//!   observed and no panic anywhere.

use std::path::PathBuf;
use std::process::{Command, Stdio};

use mepipe_comm::{FaultSpec, SocketMode, SocketTransport, Transport, TransportConfig};
use mepipe_core::svpp::Mepipe;
use mepipe_model::config::TransformerConfig;
use mepipe_schedule::generator::{Dims, ScheduleGenerator};
use mepipe_schedule::ir::Schedule;
use mepipe_tensor::init::synthetic_tokens;
use mepipe_train::{params::ModelParams, PipelineRuntime, WgradMode};

/// The deterministic scenario every process reconstructs from flags.
#[derive(Debug, Clone)]
struct Scenario {
    stages: usize,
    micro_batches: usize,
    slices: usize,
    seq_len: usize,
    layers: usize,
    seed: u64,
    mode: WgradMode,
}

impl Scenario {
    fn schedule(&self) -> Schedule {
        Mepipe::new()
            .generate(&Dims::new(self.stages, self.micro_batches).slices(self.slices))
            .expect("schedule generation")
    }

    fn runtime(&self) -> PipelineRuntime {
        let cfg = TransformerConfig {
            seq_len: self.seq_len,
            ..TransformerConfig::tiny(self.layers)
        };
        PipelineRuntime::new(ModelParams::init(cfg, self.seed), self.stages, 1)
    }

    fn batch(&self) -> Vec<Vec<usize>> {
        let cfg = TransformerConfig {
            seq_len: self.seq_len,
            ..TransformerConfig::tiny(self.layers)
        };
        (0..self.micro_batches)
            .map(|i| synthetic_tokens(cfg.seq_len + 1, cfg.vocab, self.seed + 1000 + i as u64))
            .collect()
    }

    fn as_args(&self) -> Vec<String> {
        vec![
            "--stages".into(),
            self.stages.to_string(),
            "--micro-batches".into(),
            self.micro_batches.to_string(),
            "--slices".into(),
            self.slices.to_string(),
            "--seq-len".into(),
            self.seq_len.to_string(),
            "--layers".into(),
            self.layers.to_string(),
            "--seed".into(),
            self.seed.to_string(),
            "--mode".into(),
            match self.mode {
                WgradMode::Immediate => "immediate".into(),
                WgradMode::AtWeightOp => "at-weight-op".into(),
                WgradMode::DrainOnWait => "drain".into(),
            },
        ]
    }
}

struct Args {
    scenario: Scenario,
    stage: Option<usize>,
    dir: PathBuf,
}

fn parse_args(rest: &[String]) -> Args {
    let mut scenario = Scenario {
        stages: 4,
        micro_batches: 4,
        slices: 4,
        seq_len: 32,
        layers: 4,
        seed: 7,
        mode: WgradMode::DrainOnWait,
    };
    let mut stage = None;
    let mut dir = std::env::temp_dir().join(format!("mepipe-mesh-{}", std::process::id()));
    let mut it = rest.iter();
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .unwrap_or_else(|| panic!("missing value for {flag}"))
                .clone()
        };
        match flag.as_str() {
            "--stage" => stage = Some(value().parse().expect("--stage")),
            "--stages" => scenario.stages = value().parse().expect("--stages"),
            "--micro-batches" => scenario.micro_batches = value().parse().expect("--micro-batches"),
            "--slices" => scenario.slices = value().parse().expect("--slices"),
            "--seq-len" => scenario.seq_len = value().parse().expect("--seq-len"),
            "--layers" => scenario.layers = value().parse().expect("--layers"),
            "--seed" => scenario.seed = value().parse().expect("--seed"),
            "--dir" => dir = PathBuf::from(value()),
            "--mode" => {
                scenario.mode = match value().as_str() {
                    "immediate" => WgradMode::Immediate,
                    "at-weight-op" => WgradMode::AtWeightOp,
                    "drain" => WgradMode::DrainOnWait,
                    m => panic!("unknown --mode {m}"),
                }
            }
            f => panic!("unknown flag {f}"),
        }
    }
    Args {
        scenario,
        stage,
        dir,
    }
}

/// `worker`: one stage of the pipeline as this whole process.
fn run_worker(args: &Args) {
    let stage = args.stage.expect("worker needs --stage");
    let sc = &args.scenario;
    let rt = sc.runtime();
    let schedule = sc.schedule();
    let batch = sc.batch();
    let transport = SocketTransport::new(SocketMode::Uds(args.dir.clone()), sc.stages);
    let ep = transport.endpoint(stage).expect("claim stage endpoint");
    let out = rt
        .run_stage(&schedule, stage, &batch, sc.mode, None, ep)
        .expect("stage run");
    let t = out.comm.total();
    // The launcher parses this line; keep it stable.
    println!(
        "RESULT stage={stage} loss_bits={} drained={} tx_msgs={} rx_msgs={} tx_bytes={}",
        out.loss_sum.to_bits(),
        out.drained,
        t.tx_messages,
        t.rx_messages,
        t.tx_bytes,
    );
}

/// `launch`: the multi-process mesh, verified against in-process.
fn run_launch(args: &Args) {
    let sc = &args.scenario;
    let exe = std::env::current_exe().expect("current exe");
    std::fs::create_dir_all(&args.dir).expect("mesh dir");
    let children: Vec<_> = (0..sc.stages)
        .map(|stage| {
            let mut cmd = Command::new(&exe);
            cmd.arg("worker")
                .arg("--stage")
                .arg(stage.to_string())
                .arg("--dir")
                .arg(&args.dir)
                .args(sc.as_args())
                .stdout(Stdio::piped());
            (stage, cmd.spawn().expect("spawn worker"))
        })
        .collect();

    // Workers' loss shares, combined in stage order — the same addition
    // order as the in-process merge, so f64 bits match exactly.
    let mut loss = 0.0f64;
    for (stage, child) in children {
        let out = child.wait_with_output().expect("worker exit");
        assert!(
            out.status.success(),
            "worker {stage} failed with {}",
            out.status
        );
        let stdout = String::from_utf8_lossy(&out.stdout);
        let bits_field = stdout
            .lines()
            .find_map(|l| l.strip_prefix(&format!("RESULT stage={stage} loss_bits=")))
            .unwrap_or_else(|| panic!("worker {stage} printed no RESULT line: {stdout}"));
        let bits: u64 = bits_field
            .split_whitespace()
            .next()
            .expect("loss bits field")
            .parse()
            .expect("loss bits u64");
        loss += f64::from_bits(bits);
    }
    let _ = std::fs::remove_dir_all(&args.dir);

    let reference = sc
        .runtime()
        .run_iteration(&sc.schedule(), &sc.batch(), sc.mode, None)
        .expect("in-process reference run");
    println!(
        "multi-process loss {loss:.6} ({} workers over uds), in-process loss {:.6}",
        sc.stages, reference.loss
    );
    assert_eq!(
        loss.to_bits(),
        reference.loss.to_bits(),
        "multi-process loss is not bit-identical to in-process"
    );
    println!("OK: losses bit-identical across process boundaries");
}

/// `selftest-faults`: fault injection recovers to a bit-identical loss.
fn run_selftest_faults(args: &Args) {
    let sc = &args.scenario;
    let schedule = sc.schedule();
    let batch = sc.batch();

    let clean = sc
        .runtime()
        .run_iteration(&schedule, &batch, sc.mode, None)
        .expect("clean run");

    let faults = FaultSpec {
        drop_first_n: 1, // every endpoint's first frame is lost
        delay_permille: 200,
        delay_us: 500,
        corrupt_permille: 50,
        seed: sc.seed,
        ..FaultSpec::default()
    };
    let rt = sc
        .runtime()
        .with_transport(TransportConfig::in_proc().with_faults(faults));
    let faulted = rt
        .run_iteration(&schedule, &batch, sc.mode, None)
        .expect("faulted run completes via retransmission");

    let totals = faulted
        .comm
        .iter()
        .map(|c| c.total())
        .fold(mepipe_comm::LinkStats::default(), |a, l| a.merged(&l));
    println!(
        "faulted run: loss {:.6}, drops {} corrupts {} delays {} retries {} checksum rejects {}",
        faulted.loss,
        totals.injected_drops,
        totals.injected_corrupts,
        totals.injected_delays,
        totals.retries,
        totals.rejected_checksums,
    );
    assert!(totals.injected_drops >= 1, "no drop was injected");
    assert!(totals.retries >= 1, "no retransmission happened");
    assert_eq!(
        clean.loss.to_bits(),
        faulted.loss.to_bits(),
        "faulted loss is not bit-identical to the clean run"
    );
    println!("OK: dropped/corrupted frames recovered, loss bit-identical");
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let (mode, rest) = argv
        .split_first()
        .expect("usage: mepipe-worker <worker|launch|selftest-faults> [flags]");
    let args = parse_args(rest);
    match mode.as_str() {
        "worker" => run_worker(&args),
        "launch" => run_launch(&args),
        "selftest-faults" => run_selftest_faults(&args),
        m => panic!("unknown mode {m} (expected worker|launch|selftest-faults)"),
    }
}
