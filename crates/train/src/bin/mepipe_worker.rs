//! `mepipe-worker`: run pipeline stages as separate OS processes.
//!
//! Each worker process initialises the same model and batch from shared
//! seeds, claims its stage's endpoint on a Unix-domain-socket mesh, and
//! executes exactly its rows of the schedule; boundary tensors cross
//! process boundaries as checksummed wire frames. Because every byte a
//! stage consumes is identical to what the in-process runtime would have
//! handed it, the final loss is bit-identical to a single-process run —
//! which `launch` verifies, and `scripts/check.sh` smokes.
//!
//! Modes:
//!
//! * `worker --stage I --stages P --dir D [opts]` — run one stage,
//!   print its loss share as f64 bits. With `--trace-out F` the stage
//!   records measured spans and dumps them to `F` as a line-oriented
//!   text file (epoch-stamped, so a launcher can merge processes).
//! * `job --stage I --stages P --dir D --iters T [opts]` — run one
//!   stage for many iterations under a supervisor (`mepipe-ctl`): a
//!   fresh UDS mesh per iteration under `D/iter-K`, an SGD step after
//!   every iteration, an appended `--progress` line per iteration (the
//!   supervisor's heartbeat and loss feed), an atomic per-stage
//!   checkpoint every `--ckpt-interval` iterations into `--ckpt-dir`,
//!   `--restore-from F` to resume a checkpointed model at
//!   `--start-iter K`, and `--kill-at-iter M` to abort the process at
//!   the start of iteration M — the chaos knob the control plane's
//!   fault-injection layer drives.
//! * `launch --stages P [opts]` — spawn P workers over a fresh UDS
//!   mesh, combine their loss shares in stage order, and compare
//!   bit-for-bit against an in-process run of the same iteration. With
//!   `--trace-out F` every worker traces; the launcher merges the
//!   per-process dumps onto one time axis (clock-anchor epochs) and
//!   writes a single Chrome/Perfetto JSON to `F`, validated to hold one
//!   compute track per stage. `--metrics-out F` writes the reference
//!   run's metrics registry (`.prom` extension selects Prometheus text,
//!   anything else JSON). `--codec {f32,bf16,lossy}` selects the wire
//!   codec on every link; the in-process reference applies the same
//!   codec, so the bit-identity check holds for lossy codecs too.
//!   `--schedule {mepipe,dualpipe,blocks,synth}` picks the schedule
//!   family every process regenerates from flags — `dualpipe` runs the
//!   bidirectional two-stream schedule (stage 0 and stage P−1 both act
//!   as entry and loss stages), `synth` the per-worker order solver.
//! * `autotune --rounds R --calibrate-iters N [opts]` — the closed
//!   calibration loop: R fit cycles of N traced mesh iterations each,
//!   merging every round's per-process span dumps, scoring the model in
//!   force against the measurement, and refitting from the pooled
//!   samples. Asserts the round-by-round mean relative error strictly
//!   decreases, then re-searches the hot-swap-compatible schedule space
//!   under the fitted costs and — when a different shape wins — runs one
//!   mesh iteration under the swapped schedule (regenerated from
//!   `--slices/--warmup/--reschedule` flags by every worker) and checks
//!   its loss bit-identical to in-process.
//! * `trace-report [opts]` — the full measured-vs-modeled loop in one
//!   command: run one traced iteration in-process, profile the same
//!   model, simulate the same schedule, and write measured trace,
//!   simulated trace, bubble-attribution report, measured-vs-modeled
//!   bubblecheck, and metrics (JSON + Prometheus) into `--out DIR`.
//!   Asserts the traced loss is bit-identical to an untraced run and
//!   that the trace's busy time reconciles with the runtime's busy/idle
//!   counters.
//! * `selftest-faults [opts]` — run one iteration on the emulated
//!   transport with seeded fault injection (first frame of every
//!   endpoint dropped, plus random delays) and verify the loss is
//!   bit-identical to the clean run, with retransmissions actually
//!   observed and no panic anywhere.
//! * `memcheck [opts]` — measured-vs-modeled activation memory: a
//!   1-micro-batch probe run prices one in-flight unit per stage, then
//!   the full schedule runs on live tensors and the per-stage peaks are
//!   reconciled against `peak_in_flight × unit` — the paper's linear
//!   in-flight scaling claim, asserted to land inside the warning band.
//!   Also lints every exported metric name against the Prometheus
//!   grammar.
//! * `http-get ADDR [PATH]` — dependency-free scrape client for the
//!   observability endpoints (`mepipe-ctl serve --http`, `job --http`):
//!   prints the response body, exits 0 only on HTTP 200.
//!
//! `job` grows two observability flags: `--http ADDR` mounts a
//! per-stage HTTP exporter (`/metrics` with iteration-latency
//! histograms, `/status` with p50/p99, `/healthz`), and
//! `--postmortem F` arms the flight recorder — on a chaos abort or a
//! stage-run failure the last events, open spans and a metrics snapshot
//! land in `F` before the process dies.

use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};

use mepipe_comm::{
    CodecId, CommConfig, FaultSpec, SocketMode, SocketTransport, Transport, TransportConfig,
};
use mepipe_core::reschedule::reschedule_backwards;
use mepipe_core::svpp::Mepipe;
use mepipe_core::Synth;
use mepipe_model::config::TransformerConfig;
use mepipe_schedule::generator::{Dims, ScheduleGenerator};
use mepipe_schedule::ir::Schedule;
use mepipe_schedule::validate::peak_in_flight;
use mepipe_schedule::{Blocks, DualPipe};
use mepipe_sim::engine::{simulate, SimConfig};
use mepipe_sim::memcheck::{vm_hwm_bytes, MemCheckReport, StageMemCheck};
use mepipe_sim::{to_chrome_trace, BubbleCheckReport};
use mepipe_tensor::init::synthetic_tokens;
use mepipe_trace::{
    bubble, chrome::traces_to_chrome, dump, http_get, EventLog, HttpExporter, IterationTrace,
    Level, MetricsRegistry, PidKey,
};
use mepipe_train::{
    calibrate::Calibrator, checkpoint, data::batch_for_iter, metrics::run_metrics, optim::Sgd,
    params::ModelParams, profiler::profile_chunk, PipelineRuntime, WgradMode,
};

/// Which schedule family the scenario regenerates from flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ScheduleKind {
    /// Hand-written SVPP with split backward (the default).
    Mepipe,
    /// Bidirectional two-stream scheduling (`--schedule dualpipe`).
    DualPipe,
    /// Controllable-memory building blocks (`--schedule blocks`).
    Blocks,
    /// The per-worker order solver (`--schedule synth`).
    Synth,
}

impl ScheduleKind {
    fn name(self) -> &'static str {
        match self {
            ScheduleKind::Mepipe => "mepipe",
            ScheduleKind::DualPipe => "dualpipe",
            ScheduleKind::Blocks => "blocks",
            ScheduleKind::Synth => "synth",
        }
    }

    fn parse(s: &str) -> Option<Self> {
        match s {
            "mepipe" => Some(Self::Mepipe),
            "dualpipe" => Some(Self::DualPipe),
            "blocks" => Some(Self::Blocks),
            "synth" => Some(Self::Synth),
            _ => None,
        }
    }
}

/// The deterministic scenario every process reconstructs from flags.
#[derive(Debug, Clone)]
struct Scenario {
    stages: usize,
    micro_batches: usize,
    slices: usize,
    seq_len: usize,
    layers: usize,
    seed: u64,
    mode: WgradMode,
    codec: CodecId,
    /// Schedule family to regenerate (`--schedule`).
    schedule: ScheduleKind,
    /// The family's memory knob (`None` = generator default): SVPP/
    /// DualPipe warmup cap, Blocks lifespan, solver unit cap. Set by the
    /// autotuner so spawned workers regenerate its chosen schedule.
    warmup: Option<usize>,
    /// Apply the backward-rescheduling polish after generation
    /// (deterministic, so every process computes the same schedule).
    reschedule: bool,
}

impl Scenario {
    fn schedule(&self) -> Schedule {
        let dims = Dims::new(self.stages, self.micro_batches).slices(self.slices);
        let sch = match self.schedule {
            ScheduleKind::Mepipe => {
                let mut gen = Mepipe::new();
                if let Some(f) = self.warmup {
                    gen = gen.warmup_cap(f);
                }
                gen.generate(&dims)
            }
            ScheduleKind::DualPipe => {
                let mut gen = DualPipe::new();
                if let Some(f) = self.warmup {
                    gen = gen.warmup_cap(f);
                }
                gen.generate(&dims.virtual_chunks(2))
            }
            ScheduleKind::Blocks => {
                let mut gen = Blocks::uniform();
                if let Some(k) = self.warmup {
                    gen = gen.lifespan(k);
                }
                gen.generate(&dims)
            }
            // The solver prices with its default deterministic costs, so
            // every process derives the identical op order from flags.
            ScheduleKind::Synth => {
                let mut gen = Synth::new();
                if let Some(c) = self.warmup {
                    gen = gen.cap(c);
                }
                gen.generate(&dims)
            }
        }
        .expect("schedule generation");
        if self.reschedule {
            assert_ne!(
                self.schedule,
                ScheduleKind::DualPipe,
                "--reschedule is not defined for bidirectional schedules"
            );
            reschedule_backwards(&sch).expect("backward rescheduling")
        } else {
            sch
        }
    }

    fn config(&self) -> TransformerConfig {
        TransformerConfig {
            seq_len: self.seq_len,
            ..TransformerConfig::tiny(self.layers)
        }
    }

    fn virtual_chunks(&self) -> usize {
        if self.schedule == ScheduleKind::DualPipe {
            2
        } else {
            1
        }
    }

    fn runtime(&self) -> PipelineRuntime {
        self.runtime_from(ModelParams::init(self.config(), self.seed))
    }

    /// A runtime around an existing model (a restored checkpoint) with
    /// this scenario's pipeline shape.
    fn runtime_from(&self, model: ModelParams) -> PipelineRuntime {
        PipelineRuntime::new(model, self.stages, self.virtual_chunks())
    }

    fn batch(&self) -> Vec<Vec<usize>> {
        let cfg = self.config();
        (0..self.micro_batches)
            .map(|i| synthetic_tokens(cfg.seq_len + 1, cfg.vocab, self.seed + 1000 + i as u64))
            .collect()
    }

    fn as_args(&self) -> Vec<String> {
        let mut args = vec![
            "--stages".into(),
            self.stages.to_string(),
            "--micro-batches".into(),
            self.micro_batches.to_string(),
            "--slices".into(),
            self.slices.to_string(),
            "--seq-len".into(),
            self.seq_len.to_string(),
            "--layers".into(),
            self.layers.to_string(),
            "--seed".into(),
            self.seed.to_string(),
            "--mode".into(),
            match self.mode {
                WgradMode::Immediate => "immediate".into(),
                WgradMode::AtWeightOp => "at-weight-op".into(),
                WgradMode::DrainOnWait => "drain".into(),
            },
            "--codec".into(),
            self.codec.name().into(),
            "--schedule".into(),
            self.schedule.name().into(),
        ];
        if let Some(f) = self.warmup {
            args.push("--warmup".into());
            args.push(f.to_string());
        }
        if self.reschedule {
            args.push("--reschedule".into());
        }
        args
    }
}

struct Args {
    scenario: Scenario,
    stage: Option<usize>,
    dir: PathBuf,
    trace_out: Option<PathBuf>,
    metrics_out: Option<PathBuf>,
    out: PathBuf,
    /// Calibration fit cycles for `autotune`.
    rounds: usize,
    /// Traced mesh iterations per calibration round.
    calibrate_iters: usize,
    /// `job`: target iteration count (exclusive upper bound).
    iters: usize,
    /// `job`: first iteration to run (the restore point).
    start_iter: usize,
    /// `job`: checkpoint every this many completed iterations (0 = never).
    ckpt_interval: usize,
    /// `job`: directory receiving `stage-I/iter-N.bin` checkpoints.
    ckpt_dir: Option<PathBuf>,
    /// `job`: file receiving one appended line per completed iteration.
    progress: Option<PathBuf>,
    /// `job`: checkpoint file to restore the model from before running.
    restore_from: Option<PathBuf>,
    /// `job`: abort the process at the start of this iteration (chaos).
    kill_at_iter: Option<usize>,
    /// `job`: SGD learning rate.
    lr: f32,
    /// `launch`: spawn this stage with `--kill-at-iter 0` so it aborts
    /// immediately — a deterministic straggler for testing that the
    /// launcher reaps a broken gang instead of hanging.
    chaos_stage: Option<usize>,
    /// `job`: TCP address for the per-stage HTTP observability endpoint.
    http: Option<String>,
    /// `job`: flight-recorder postmortem file, written on abort/failure.
    postmortem: Option<PathBuf>,
}

fn parse_args(rest: &[String]) -> Args {
    let mut scenario = Scenario {
        stages: 4,
        micro_batches: 4,
        slices: 4,
        seq_len: 32,
        layers: 4,
        seed: 7,
        mode: WgradMode::DrainOnWait,
        codec: CodecId::F32,
        schedule: ScheduleKind::Mepipe,
        warmup: None,
        reschedule: false,
    };
    let mut stage = None;
    let mut dir = std::env::temp_dir().join(format!("mepipe-mesh-{}", std::process::id()));
    let mut trace_out = None;
    let mut metrics_out = None;
    let mut out = PathBuf::from("target/trace-report");
    let mut rounds = 2usize;
    let mut calibrate_iters = 1usize;
    let mut iters = 1usize;
    let mut start_iter = 0usize;
    let mut ckpt_interval = 0usize;
    let mut ckpt_dir = None;
    let mut progress = None;
    let mut restore_from = None;
    let mut kill_at_iter = None;
    let mut lr = 0.1f32;
    let mut chaos_stage = None;
    let mut http = None;
    let mut postmortem = None;
    let mut it = rest.iter();
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .unwrap_or_else(|| panic!("missing value for {flag}"))
                .clone()
        };
        match flag.as_str() {
            "--stage" => stage = Some(value().parse().expect("--stage")),
            "--stages" => scenario.stages = value().parse().expect("--stages"),
            "--micro-batches" => scenario.micro_batches = value().parse().expect("--micro-batches"),
            "--slices" => scenario.slices = value().parse().expect("--slices"),
            "--seq-len" => scenario.seq_len = value().parse().expect("--seq-len"),
            "--layers" => scenario.layers = value().parse().expect("--layers"),
            "--seed" => scenario.seed = value().parse().expect("--seed"),
            "--warmup" => scenario.warmup = Some(value().parse().expect("--warmup")),
            "--reschedule" => scenario.reschedule = true,
            "--rounds" => rounds = value().parse().expect("--rounds"),
            "--calibrate-iters" => calibrate_iters = value().parse().expect("--calibrate-iters"),
            "--iters" => iters = value().parse().expect("--iters"),
            "--start-iter" => start_iter = value().parse().expect("--start-iter"),
            "--ckpt-interval" => ckpt_interval = value().parse().expect("--ckpt-interval"),
            "--ckpt-dir" => ckpt_dir = Some(PathBuf::from(value())),
            "--progress" => progress = Some(PathBuf::from(value())),
            "--restore-from" => restore_from = Some(PathBuf::from(value())),
            "--kill-at-iter" => kill_at_iter = Some(value().parse().expect("--kill-at-iter")),
            "--lr" => lr = value().parse().expect("--lr"),
            "--chaos-stage" => chaos_stage = Some(value().parse().expect("--chaos-stage")),
            "--http" => http = Some(value()),
            "--postmortem" => postmortem = Some(PathBuf::from(value())),
            "--dir" => dir = PathBuf::from(value()),
            "--trace-out" => trace_out = Some(PathBuf::from(value())),
            "--metrics-out" => metrics_out = Some(PathBuf::from(value())),
            "--out" => out = PathBuf::from(value()),
            "--mode" => {
                scenario.mode = match value().as_str() {
                    "immediate" => WgradMode::Immediate,
                    "at-weight-op" => WgradMode::AtWeightOp,
                    "drain" => WgradMode::DrainOnWait,
                    m => panic!("unknown --mode {m}"),
                }
            }
            "--codec" => {
                let v = value();
                scenario.codec = CodecId::parse(&v)
                    .unwrap_or_else(|| panic!("unknown --codec {v} (expected f32|bf16|lossy)"));
            }
            "--schedule" => {
                let v = value();
                scenario.schedule = ScheduleKind::parse(&v).unwrap_or_else(|| {
                    panic!("unknown --schedule {v} (expected mepipe|dualpipe|blocks|synth)")
                });
            }
            f => panic!("unknown flag {f}"),
        }
    }
    Args {
        scenario,
        stage,
        dir,
        trace_out,
        metrics_out,
        out,
        rounds,
        calibrate_iters,
        iters,
        start_iter,
        ckpt_interval,
        ckpt_dir,
        progress,
        restore_from,
        kill_at_iter,
        lr,
        chaos_stage,
        http,
        postmortem,
    }
}

/// Writes a metrics registry to `path`: Prometheus text exposition when
/// the extension is `.prom`, JSON otherwise. Every write lints the
/// registry's metric names first, so a malformed name fails the smoke
/// that produced it instead of a scrape downstream.
fn write_metrics(path: &Path, reg: &MetricsRegistry) {
    let violations = reg.lint_names();
    assert!(violations.is_empty(), "metric name lint: {violations:?}");
    let body = if path.extension().is_some_and(|e| e == "prom") {
        reg.to_prometheus_text()
    } else {
        reg.to_json()
    };
    if let Some(parent) = path.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    std::fs::write(path, body).expect("write metrics");
}

/// Parses a serialised Chrome trace and asserts it holds exactly one
/// compute track (pid, tid < 1000) per stage. Returns the complete-event
/// count.
fn validate_chrome_trace(json: &str, stages: usize) -> usize {
    let v: serde_json::Value = serde_json::from_str(json).expect("trace JSON parses");
    let events = v.as_array().expect("trace is a JSON array");
    let mut tracks: Vec<(u64, u64)> = Vec::new();
    let mut complete = 0usize;
    for e in events {
        if e["ph"].as_str() != Some("X") {
            continue;
        }
        complete += 1;
        let pid = e["pid"].as_u64().expect("pid");
        let tid = e["tid"].as_u64().expect("tid");
        if tid < 1000 && !tracks.contains(&(pid, tid)) {
            tracks.push((pid, tid));
        }
    }
    assert!(complete > 0, "trace holds no complete events");
    assert_eq!(
        tracks.len(),
        stages,
        "expected one compute track per stage, got {tracks:?}"
    );
    complete
}

/// `worker`: one stage of the pipeline as this whole process.
fn run_worker(args: &Args) {
    let stage = args.stage.expect("worker needs --stage");
    if args.kill_at_iter.is_some() {
        // A single-iteration worker has only one place to die: before it.
        let mut events = EventLog::stderr("worker");
        events.event(
            Level::Error,
            None,
            Some(stage),
            format!("chaos: stage {stage} aborting before its iteration"),
            &[],
        );
        std::process::abort();
    }
    let sc = &args.scenario;
    let rt = sc.runtime().with_tracing(args.trace_out.is_some());
    let schedule = sc.schedule();
    let batch = sc.batch();
    let transport = SocketTransport::with_config(
        SocketMode::Uds(args.dir.clone()),
        sc.stages,
        CommConfig::new().with_codec(sc.codec),
    );
    let ep = transport.endpoint(stage).expect("claim stage endpoint");
    let out = rt
        .run_stage(&schedule, stage, &batch, sc.mode, None, ep)
        .expect("stage run");
    if let (Some(path), Some(trace)) = (&args.trace_out, &out.trace) {
        dump::write_stage_trace(path, trace).expect("write stage trace dump");
    }
    let t = out.comm.total();
    // The launcher parses this line; keep it stable (appending fields is
    // fine, the parse is prefix + first whitespace-separated token).
    println!(
        "RESULT stage={stage} loss_bits={} drained={} tx_msgs={} rx_msgs={} tx_bytes={} busy_ns={}",
        out.loss_sum.to_bits(),
        out.drained,
        t.tx_messages,
        t.rx_messages,
        t.tx_bytes,
        (out.busy_seconds * 1e9) as u64,
    );
}

/// Spawns one multi-process mesh iteration under `dir` and returns the
/// stage-order loss sum plus the merged per-process trace (when
/// `traced`). The mesh directory is removed afterwards, so callers can
/// run many iterations back to back with distinct dirs.
///
/// Children are polled rather than awaited in stage order: a stage that
/// dies mid-iteration leaves its peers blocked in transport waits, so
/// the first failure kills and reaps the whole gang and the error names
/// the stage that started it.
fn mesh_iteration(
    sc: &Scenario,
    dir: &Path,
    traced: bool,
    chaos_stage: Option<usize>,
) -> Result<(f64, Option<IterationTrace>), String> {
    let exe = std::env::current_exe().expect("current exe");
    std::fs::create_dir_all(dir).expect("mesh dir");
    let stage_trace_path = |stage: usize| dir.join(format!("trace-stage-{stage}.txt"));
    let mut children: Vec<_> = (0..sc.stages)
        .map(|stage| {
            let mut cmd = Command::new(&exe);
            cmd.arg("worker")
                .arg("--stage")
                .arg(stage.to_string())
                .arg("--dir")
                .arg(dir)
                .args(sc.as_args())
                .stdout(Stdio::piped());
            if traced {
                cmd.arg("--trace-out").arg(stage_trace_path(stage));
            }
            if chaos_stage == Some(stage) {
                cmd.arg("--kill-at-iter").arg("0");
            }
            let mut child = cmd.spawn().expect("spawn worker");
            // Drain stdout on a thread so a chatty worker can't dead-
            // lock against a full pipe while we poll exit statuses.
            let mut stdout = child.stdout.take().expect("piped stdout");
            let reader = std::thread::spawn(move || {
                use std::io::Read;
                let mut buf = String::new();
                let _ = stdout.read_to_string(&mut buf);
                buf
            });
            (stage, Some(child), Some(reader))
        })
        .collect();

    let mut outputs: Vec<Option<String>> = (0..sc.stages).map(|_| None).collect();
    let mut first_failure: Option<(usize, std::process::ExitStatus)> = None;
    let mut live = sc.stages;
    while live > 0 && first_failure.is_none() {
        let mut progressed = false;
        for (stage, child, reader) in children.iter_mut() {
            let Some(c) = child.as_mut() else { continue };
            if let Some(status) = c.try_wait().expect("poll worker") {
                progressed = true;
                live -= 1;
                child.take();
                let text = reader
                    .take()
                    .expect("reader thread")
                    .join()
                    .expect("join stdout reader");
                if status.success() {
                    outputs[*stage] = Some(text);
                } else {
                    first_failure.get_or_insert((*stage, status));
                }
            }
        }
        if !progressed {
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
    }
    if let Some((stage, status)) = first_failure {
        // Reap the stragglers: their transport waits will never finish.
        for (_, child, reader) in children.iter_mut() {
            if let Some(mut c) = child.take() {
                let _ = c.kill();
                let _ = c.wait();
            }
            if let Some(r) = reader.take() {
                let _ = r.join();
            }
        }
        let _ = std::fs::remove_dir_all(dir);
        return Err(format!(
            "stage {stage} exited with {status}; remaining workers killed"
        ));
    }

    // Workers' loss shares, combined in stage order — the same addition
    // order as the in-process merge, so f64 bits match exactly.
    let mut loss = 0.0f64;
    for (stage, text) in outputs.iter().enumerate() {
        let stdout = text.as_ref().expect("every worker exited cleanly");
        let bits_field = stdout
            .lines()
            .find_map(|l| l.strip_prefix(&format!("RESULT stage={stage} loss_bits=")))
            .ok_or_else(|| format!("worker {stage} printed no RESULT line: {stdout}"))?;
        let bits: u64 = bits_field
            .split_whitespace()
            .next()
            .expect("loss bits field")
            .parse()
            .expect("loss bits u64");
        loss += f64::from_bits(bits);
    }

    // Merge the per-process span dumps onto one time axis: each worker
    // recorded offsets from its own clock anchor, whose epoch position
    // lets the traces line up across processes.
    let merged = if traced {
        Some(IterationTrace {
            stages: (0..sc.stages)
                .map(|stage| {
                    dump::read_stage_trace(&stage_trace_path(stage)).expect("merge stage trace")
                })
                .collect(),
        })
    } else {
        None
    };
    let _ = std::fs::remove_dir_all(dir);
    Ok((loss, merged))
}

/// `launch`: the multi-process mesh, verified against in-process.
fn run_launch(args: &Args) {
    let sc = &args.scenario;
    let (loss, merged) = mesh_iteration(sc, &args.dir, args.trace_out.is_some(), args.chaos_stage)
        .unwrap_or_else(|e| {
            eprintln!("launch failed: {e}");
            std::process::exit(1);
        });

    if let (Some(trace_out), Some(merged)) = (&args.trace_out, &merged) {
        let json = traces_to_chrome(merged, PidKey::Stage);
        let complete = validate_chrome_trace(&json, sc.stages);
        if let Some(parent) = trace_out.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        std::fs::write(trace_out, &json).expect("write merged trace");
        println!(
            "merged {} spans from {} worker processes into {}",
            complete,
            sc.stages,
            trace_out.display()
        );
        print!("{}", bubble::attribute(merged).render());
    }

    // The reference runs in-process under the *same* codec: the
    // in-process backend applies lossy codecs as an encode/decode round
    // trip, so losses stay bit-identical even when the wire is bf16.
    let reference = sc
        .runtime()
        .with_transport(TransportConfig::in_proc().with_codec(sc.codec))
        .run_iteration(&sc.schedule(), &sc.batch(), sc.mode, None)
        .expect("in-process reference run");
    if let Some(metrics_out) = &args.metrics_out {
        write_metrics(metrics_out, &run_metrics(&reference));
        println!("wrote reference-run metrics to {}", metrics_out.display());
    }
    println!(
        "multi-process loss {loss:.6} ({} workers over uds, {} codec), in-process loss {:.6}",
        sc.stages,
        sc.codec.name(),
        reference.loss
    );
    assert_eq!(
        loss.to_bits(),
        reference.loss.to_bits(),
        "multi-process loss is not bit-identical to in-process"
    );
    println!("OK: losses bit-identical across process boundaries");
}

/// `job`: one stage of a supervised multi-iteration training job.
///
/// Every iteration runs on a fresh UDS mesh under `--dir/iter-K` (all
/// gang members derive the same directory name, so rendezvous needs no
/// coordinator), steps the model with SGD over this stage's own-layer
/// gradients (peer layers' grads are zero, and SGD with a zero grad is
/// a bitwise no-op, so per-stage stepping equals full-model stepping),
/// appends a `iter K loss_bits B` heartbeat line, and checkpoints its
/// model shard atomically every `--ckpt-interval` completed iterations.
/// `--kill-at-iter M` aborts the whole process at the start of
/// iteration M — the control plane's chaos knob.
fn run_job(args: &Args) {
    let stage = args.stage.expect("job needs --stage");
    let sc = &args.scenario;
    let cfg = sc.config();
    let mut events = EventLog::stderr("worker");
    let exporter = args.http.as_deref().map(|addr| {
        let exp = HttpExporter::spawn(addr)
            .unwrap_or_else(|e| panic!("bind http observability endpoint {addr}: {e}"));
        // The supervisor (or a curious human) learns the bound address
        // from this line — `--http 127.0.0.1:0` picks a free port.
        println!("HTTP stage={stage} addr={}", exp.addr());
        exp
    });
    // Accumulated across iterations: the latency histogram is what
    // `/status` derives its p50/p99 from.
    let mut reg = MetricsRegistry::new();
    let latency_labels: [(&str, String); 1] = [("stage", stage.to_string())];
    let mut rt = match &args.restore_from {
        Some(path) => {
            let bytes = std::fs::read(path)
                .unwrap_or_else(|e| panic!("read checkpoint {}: {e}", path.display()));
            let model = checkpoint::restore(&bytes)
                .unwrap_or_else(|e| panic!("restore checkpoint {}: {e}", path.display()));
            sc.runtime_from(model)
        }
        None => sc.runtime(),
    }
    .with_tracing(args.trace_out.is_some());
    let schedule = sc.schedule();
    let progress = |line: String| {
        if let Some(path) = &args.progress {
            use std::io::Write;
            let mut f = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
                .unwrap_or_else(|e| panic!("open progress {}: {e}", path.display()));
            writeln!(f, "{line}").expect("append progress line");
        }
    };
    let mut last_bits = f64::NAN.to_bits();
    for k in args.start_iter..args.iters {
        if args.kill_at_iter == Some(k) {
            let why = format!("chaos: stage {stage} aborting at the start of iteration {k}");
            events.event(Level::Error, None, Some(stage), &why, &[]);
            if let Some(path) = &args.postmortem {
                let _ = events.dump_postmortem(path, &why, Some(&reg));
            }
            std::process::abort();
        }
        // Old mesh dirs only hold socket files nobody will connect to
        // again (starting iteration k means every peer finished k-1);
        // stage 0 prunes with one iteration of slack.
        if stage == 0 && k >= args.start_iter + 2 {
            let _ = std::fs::remove_dir_all(args.dir.join(format!("iter-{}", k - 2)));
        }
        let mesh = args.dir.join(format!("iter-{k}"));
        std::fs::create_dir_all(&mesh).expect("mesh dir");
        let transport = SocketTransport::with_config(
            SocketMode::Uds(mesh),
            sc.stages,
            CommConfig::new().with_codec(sc.codec),
        );
        let ep = transport.endpoint(stage).expect("claim stage endpoint");
        let batch = batch_for_iter(&cfg, sc.micro_batches, sc.seed, k);
        let t0 = std::time::Instant::now();
        let out = rt
            .run_stage(&schedule, stage, &batch, sc.mode, None, ep)
            .unwrap_or_else(|e| {
                // Transport errors (a dead peer, a poisoned frame) land
                // here: record the failure, dump the flight recorder,
                // then die loudly for the supervisor.
                let why = format!("stage {stage} iteration {k}: {e}");
                events.event(Level::Error, None, Some(stage), &why, &[]);
                if let Some(path) = &args.postmortem {
                    let _ = events.dump_postmortem(path, &why, Some(&reg));
                }
                panic!("{why}");
            });
        observe_iteration(&mut reg, &latency_labels, t0.elapsed().as_secs_f64(), k + 1);
        if let Some(exp) = &exporter {
            exp.publish_metrics(reg.to_prometheus_text());
            exp.publish_status(job_status_json(
                &reg,
                &latency_labels,
                stage,
                k + 1,
                args.iters,
            ));
        }
        Sgd { lr: args.lr }.step_model(&mut rt.model, &out.grads);
        last_bits = out.loss_sum.to_bits();
        // Dump the latest iteration's spans on every lap so whatever
        // iteration turns out to be the last leaves a merged-trace part.
        if let (Some(path), Some(trace)) = (&args.trace_out, &out.trace) {
            dump::write_stage_trace(path, trace).expect("write stage trace dump");
        }
        progress(format!("iter {k} loss_bits {last_bits}"));
        let completed = k + 1;
        if args.ckpt_interval > 0 && completed.is_multiple_of(args.ckpt_interval) {
            let dir = args
                .ckpt_dir
                .clone()
                .expect("--ckpt-interval needs --ckpt-dir")
                .join(format!("stage-{stage}"));
            std::fs::create_dir_all(&dir).expect("checkpoint dir");
            let path = dir.join(format!("iter-{completed}.bin"));
            let tmp = dir.join(format!("iter-{completed}.tmp"));
            std::fs::write(&tmp, checkpoint::save(&rt.model)).expect("write checkpoint");
            std::fs::rename(&tmp, &path).expect("publish checkpoint");
            progress(format!("ckpt {completed}"));
            events.event(
                Level::Info,
                None,
                Some(stage),
                format!("checkpointed at iteration {completed}"),
                &[],
            );
        }
    }
    events.event(
        Level::Info,
        None,
        Some(stage),
        format!("completed iterations {}..{}", args.start_iter, args.iters),
        &[],
    );
    // The supervisor parses this line; keep it stable.
    println!(
        "RESULT stage={stage} loss_bits={last_bits} start={} end={}",
        args.start_iter, args.iters
    );
}

/// Records one iteration's wall time and progress into the job's
/// registry (the exporter's `/metrics` content).
fn observe_iteration(
    reg: &mut MetricsRegistry,
    labels: &[(&str, String)],
    seconds: f64,
    completed: usize,
) {
    reg.observe(
        "mepipe_worker_iteration_seconds",
        "Wall-clock time of one pipeline-stage iteration",
        labels,
        &mepipe_trace::metrics::ITERATION_BUCKETS,
        seconds,
    );
    reg.counter(
        "mepipe_worker_iterations_total",
        "Iterations this stage process has completed",
        labels,
        1.0,
    );
    reg.gauge(
        "mepipe_worker_completed_iterations",
        "Iterations this stage process has completed, as a level",
        labels,
        completed as f64,
    );
}

/// The job exporter's `/status` document: progress plus the span-derived
/// latency quantiles the straggler analysis keys off.
fn job_status_json(
    reg: &MetricsRegistry,
    labels: &[(&str, String)],
    stage: usize,
    completed: usize,
    target: usize,
) -> String {
    let q = |q: f64| {
        reg.quantile("mepipe_worker_iteration_seconds", labels, q)
            .map_or("null".to_string(), |v| format!("{v:.6}"))
    };
    format!(
        "{{\"stage\":{stage},\"completed\":{completed},\"target\":{target},\
         \"iteration_p50_seconds\":{},\"iteration_p99_seconds\":{}}}",
        q(0.5),
        q(0.99),
    )
}

/// `trace-report`: one traced iteration, profiled + simulated, with
/// every observability artifact written to `--out`.
fn run_trace_report(args: &Args) {
    let sc = &args.scenario;
    let schedule = sc.schedule();
    let batch = sc.batch();

    // Traced vs untraced: tracing is an observer, the loss bits agree.
    let plain = sc
        .runtime()
        .run_iteration(&schedule, &batch, sc.mode, None)
        .expect("untraced run");
    let traced = sc
        .runtime()
        .with_tracing(true)
        .run_iteration(&schedule, &batch, sc.mode, None)
        .expect("traced run");
    assert_eq!(
        plain.loss.to_bits(),
        traced.loss.to_bits(),
        "tracing changed the loss bits"
    );
    let trace = traced.trace.as_ref().expect("traced run carries a trace");

    // The spans and the runtime's busy counters come from the same clock
    // and the same intervals; they must agree per stage.
    for st in &trace.stages {
        let span_busy = st.busy_ns() as f64 * 1e-9;
        let counted = traced.busy_seconds[st.stage];
        assert!(
            (span_busy - counted).abs() < 1e-6,
            "stage {}: trace says {span_busy} s busy, runtime counted {counted} s",
            st.stage
        );
    }
    let report = bubble::attribute(trace);
    for b in &report.stages {
        assert!(
            (b.busy_s + b.idle.total() - report.makespan_s).abs() < 1e-9,
            "stage {} busy+idle does not reconcile with the window",
            b.stage
        );
    }

    // Profile this machine, simulate the same schedule, diff the two.
    let cfg = TransformerConfig {
        seq_len: sc.seq_len,
        ..TransformerConfig::tiny(sc.layers)
    };
    let profiled = profile_chunk(
        &ModelParams::init(cfg, sc.seed),
        sc.layers / sc.stages,
        sc.slices,
        2,
    );
    let prediction = simulate(
        &schedule,
        &profiled,
        &SimConfig {
            dynamic_wgrad: true,
            include_dp_sync: false,
            include_optimizer: false,
            ..Default::default()
        },
    )
    .expect("simulation of the measured schedule");
    let check = BubbleCheckReport::from_run(trace, &prediction);

    let out = &args.out;
    std::fs::create_dir_all(out).expect("report dir");
    let measured_json = traces_to_chrome(trace, PidKey::Replica);
    validate_chrome_trace(&measured_json, sc.stages);
    let trace_path = args
        .trace_out
        .clone()
        .unwrap_or_else(|| out.join("measured.trace.json"));
    std::fs::write(&trace_path, &measured_json).expect("write measured trace");
    std::fs::write(
        out.join("sim.trace.json"),
        to_chrome_trace(&prediction.segments),
    )
    .expect("write simulated trace");
    std::fs::write(out.join("bubble.txt"), report.render()).expect("write bubble report");
    std::fs::write(out.join("bubblecheck.txt"), check.render()).expect("write bubblecheck");
    let reg = run_metrics(&traced);
    let metrics_path = args
        .metrics_out
        .clone()
        .unwrap_or_else(|| out.join("metrics.json"));
    write_metrics(&metrics_path, &reg);
    write_metrics(&out.join("metrics.prom"), &reg);

    print!("{}", report.render());
    print!("{}", check.render());
    println!(
        "wrote measured trace ({}), simulated trace, bubble reports and metrics to {}",
        trace_path.display(),
        out.display()
    );
    println!("OK: traced loss bit-identical to untraced; busy/idle reconciled per stage");
}

/// `autotune`: the closed calibration loop over the multi-process mesh.
///
/// Runs `--rounds` fit cycles of `--calibrate-iters` traced mesh
/// iterations each; every round scores the model in force against the
/// measurement, pools the samples and refits. The error trajectory must
/// strictly decrease (asserted — `scripts/check.sh` relies on it). The
/// fitted model then re-searches the hot-swap-compatible schedule space;
/// when it proposes a different shape, one mesh iteration runs under the
/// swapped schedule — regenerated purely from flags by every worker
/// process — and its loss is verified bit-identical to an in-process run.
fn run_autotune(args: &Args) {
    let sc = &args.scenario;
    let cfg = TransformerConfig {
        seq_len: sc.seq_len,
        ..TransformerConfig::tiny(sc.layers)
    };
    let prior = Calibrator::prior_for(&cfg, sc.stages, sc.slices, sc.micro_batches)
        .expect("prior cost model");
    let mut cal = Calibrator::new(prior);
    let schedule = sc.schedule();
    let mut first_makespan = None;
    for round in 0..args.rounds.max(1) {
        let mut last = None;
        for iter in 0..args.calibrate_iters.max(1) {
            let dir = args.dir.join(format!("round-{round}-iter-{iter}"));
            let (_, trace) =
                mesh_iteration(sc, &dir, true, None).expect("calibration mesh iteration");
            let trace = trace.expect("traced mesh run");
            cal.absorb(&trace);
            last = Some(trace);
        }
        let trace = last.expect("at least one iteration per round");
        if first_makespan.is_none() {
            first_makespan = Some(bubble::attribute(&trace).makespan_s);
        }
        let err = cal.record_round(&schedule, &trace).expect("round scoring");
        println!("round {round}: mean relative error {err:.4}");
        cal.refit();
    }
    print!("{}", cal.report().render());
    assert!(
        cal.report().is_strictly_decreasing(),
        "calibration error did not strictly decrease:\n{}",
        cal.report().render()
    );
    let Some(p) = cal.propose(None).expect("calibrated re-search") else {
        println!("no swap candidate generated; keeping the running schedule");
        return;
    };
    println!(
        "fitted search proposes slices={} warmup={} (predicted {:.3} ms/iter{})",
        p.slices,
        p.warmup,
        p.predicted_s * 1e3,
        if p.rescheduled {
            ", backward-rescheduled"
        } else {
            ""
        },
    );
    if p.schedule.workers == schedule.workers {
        println!("OK: calibration error strictly decreased; running schedule already optimal under the fitted model");
        return;
    }
    // Regenerate the chosen schedule purely from flags, exactly as every
    // worker process will, and check that reproduces the proposal. A
    // synthesized winner regenerates through the solver (deterministic
    // from its default costs), a template winner through SVPP.
    let swapped = Scenario {
        slices: p.slices,
        warmup: Some(p.warmup),
        reschedule: p.rescheduled,
        schedule: if p.synthesized {
            ScheduleKind::Synth
        } else {
            ScheduleKind::Mepipe
        },
        ..sc.clone()
    };
    assert_eq!(
        swapped.schedule().workers,
        p.schedule.workers,
        "flag-regenerated schedule does not reproduce the proposal"
    );
    let (loss, trace) = mesh_iteration(&swapped, &args.dir.join("swapped"), true, None)
        .expect("swapped mesh iteration");
    let reference = swapped
        .runtime()
        .with_transport(TransportConfig::in_proc().with_codec(sc.codec))
        .run_iteration(&swapped.schedule(), &swapped.batch(), sc.mode, None)
        .expect("in-process reference of the swapped schedule");
    assert_eq!(
        loss.to_bits(),
        reference.loss.to_bits(),
        "swapped-schedule mesh loss is not bit-identical to in-process"
    );
    let after = bubble::attribute(&trace.expect("traced swapped run")).makespan_s;
    println!(
        "measured makespan {:.3} ms under {} slices -> {:.3} ms under {} slices",
        first_makespan.unwrap_or(f64::NAN) * 1e3,
        sc.slices,
        after * 1e3,
        p.slices,
    );
    println!(
        "OK: calibration error strictly decreased; swapped schedule bit-identical across processes"
    );
}

/// `selftest-faults`: fault injection recovers to a bit-identical loss.
fn run_selftest_faults(args: &Args) {
    let sc = &args.scenario;
    let schedule = sc.schedule();
    let batch = sc.batch();

    let clean = sc
        .runtime()
        .run_iteration(&schedule, &batch, sc.mode, None)
        .expect("clean run");

    let faults = FaultSpec {
        drop_first_n: 1, // every endpoint's first frame is lost
        delay_permille: 200,
        delay_us: 500,
        corrupt_permille: 50,
        seed: sc.seed,
        ..FaultSpec::default()
    };
    let rt = sc
        .runtime()
        .with_transport(TransportConfig::in_proc().with_faults(faults));
    let faulted = rt
        .run_iteration(&schedule, &batch, sc.mode, None)
        .expect("faulted run completes via retransmission");

    let totals = faulted
        .comm
        .iter()
        .map(|c| c.total())
        .fold(mepipe_comm::LinkStats::default(), |a, l| a.merged(&l));
    println!(
        "faulted run: loss {:.6}, drops {} corrupts {} delays {} retries {} checksum rejects {}",
        faulted.loss,
        totals.injected_drops,
        totals.injected_corrupts,
        totals.injected_delays,
        totals.retries,
        totals.rejected_checksums,
    );
    assert!(totals.injected_drops >= 1, "no drop was injected");
    assert!(totals.retries >= 1, "no retransmission happened");
    assert_eq!(
        clean.loss.to_bits(),
        faulted.loss.to_bits(),
        "faulted loss is not bit-identical to the clean run"
    );
    println!("OK: dropped/corrupted frames recovered, loss bit-identical");
}

/// `memcheck`: the measured-vs-modeled memory reconciliation.
///
/// A one-micro-batch probe run prices each stage's in-flight unit (its
/// measured peak divided by its scheduled peak units), then the full
/// schedule runs and the per-stage measured peaks are compared against
/// `peak_in_flight × unit` — testing exactly the paper's claim that
/// peak activation memory scales linearly with the *scheduled* in-flight
/// count. Exits nonzero when any stage leaves the warning band.
fn run_memcheck(args: &Args) {
    // Fused backward only: the in-flight model charges a unit at forward
    // and credits it at backward, which is exactly when the fused-B
    // runtime frees its saves. Deferred-W modes retain operands past the
    // credit point — real memory the model deliberately does not price,
    // and precisely what the warning band exists to flag.
    let sc = Scenario {
        mode: WgradMode::Immediate,
        ..args.scenario.clone()
    };
    let probe_sc = Scenario {
        micro_batches: 1,
        ..sc.clone()
    };
    let probe_schedule = probe_sc.schedule();
    let probe_units = peak_in_flight(&probe_schedule);
    let probe = probe_sc
        .runtime()
        .run_iteration(&probe_schedule, &probe_sc.batch(), sc.mode, None)
        .expect("probe run");

    let schedule = sc.schedule();
    let units = peak_in_flight(&schedule);
    let run = sc
        .runtime()
        .run_iteration(&schedule, &sc.batch(), sc.mode, None)
        .expect("full run");

    // Per-stage unit prices from the probe: sharper than one global
    // price, since entry/loss stages hold different tensors per unit.
    let unit_prices: Vec<f64> = probe
        .peak_bytes
        .iter()
        .zip(&probe_units)
        .map(|(&bytes, &u)| bytes as f64 / u.max(1) as f64)
        .collect();
    let mean_unit = unit_prices.iter().sum::<f64>() / unit_prices.len().max(1) as f64;
    let stages: Vec<StageMemCheck> = run
        .peak_bytes
        .iter()
        .zip(&units)
        .zip(&unit_prices)
        .enumerate()
        .map(|(stage, ((&measured, &peak_units), &unit))| StageMemCheck {
            stage,
            peak_units,
            measured_bytes: measured as f64,
            modeled_bytes: peak_units as f64 * unit,
        })
        .collect();
    let report = MemCheckReport {
        unit_bytes: mean_unit,
        stages,
        process_hwm_bytes: vm_hwm_bytes(),
    };
    print!("{}", report.render());

    // The metrics the run exports must also survive the naming lint —
    // the same gate `/metrics` consumers rely on.
    let violations = run_metrics(&run).lint_names();
    assert!(violations.is_empty(), "metric name lint: {violations:?}");

    if !report.in_band() {
        eprintln!("memcheck: measured/modeled outside the warning band");
        std::process::exit(1);
    }
    println!(
        "OK: measured/modeled = {:.2} per-stage within [{}, {}]; metric names lint clean",
        report.ratio(),
        mepipe_sim::memcheck::MEM_RATIO_WARN_LO,
        mepipe_sim::memcheck::MEM_RATIO_WARN_HI,
    );
}

/// `http-get`: scrape an observability endpoint with the exporter's own
/// client — no curl in the loop, so `scripts/check.sh` stays
/// dependency-free. Prints the body; exit 0 only on HTTP 200.
fn run_http_get(rest: &[String]) {
    let addr = rest
        .first()
        .expect("usage: mepipe-worker http-get ADDR [PATH]");
    let path = rest.get(1).map_or("/metrics", String::as_str);
    match http_get(addr, path, std::time::Duration::from_secs(5)) {
        Ok((200, body)) => print!("{body}"),
        Ok((status, body)) => {
            eprintln!("http-get {addr}{path}: HTTP {status}");
            print!("{body}");
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("http-get {addr}{path}: {e}");
            std::process::exit(1);
        }
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let (mode, rest) = argv.split_first().expect(
        "usage: mepipe-worker <worker|job|launch|autotune|trace-report|selftest-faults|memcheck|http-get> [flags]",
    );
    if mode == "http-get" {
        run_http_get(rest);
        return;
    }
    let args = parse_args(rest);
    match mode.as_str() {
        "worker" => run_worker(&args),
        "job" => run_job(&args),
        "launch" => run_launch(&args),
        "autotune" => run_autotune(&args),
        "trace-report" => run_trace_report(&args),
        "selftest-faults" => run_selftest_faults(&args),
        "memcheck" => run_memcheck(&args),
        m => panic!(
            "unknown mode {m} (expected worker|job|launch|autotune|trace-report|selftest-faults|memcheck|http-get)"
        ),
    }
}
