//! Model parameters, gradients and their partitioning into chunks.

use mepipe_model::config::TransformerConfig;
use mepipe_tensor::{init, Tensor};
use rand::rngs::StdRng;

/// Weights of one decoder layer.
#[derive(Debug, Clone)]
pub struct LayerParams {
    /// Query projection `[h, h]`.
    pub wq: Tensor,
    /// Key projection `[h, h]`.
    pub wk: Tensor,
    /// Value projection `[h, h]`.
    pub wv: Tensor,
    /// Output projection `[h, h]`.
    pub wo: Tensor,
    /// SwiGLU gate `[h, ffn]`.
    pub wg: Tensor,
    /// SwiGLU up `[h, ffn]`.
    pub wu: Tensor,
    /// SwiGLU down `[ffn, h]`.
    pub wd: Tensor,
    /// Pre-attention RMSNorm weight `[1, h]`.
    pub norm1: Tensor,
    /// Pre-MLP RMSNorm weight `[1, h]`.
    pub norm2: Tensor,
}

impl LayerParams {
    /// Xavier-initialised layer.
    pub fn init(cfg: &TransformerConfig, rng: &mut StdRng) -> Self {
        let h = cfg.hidden;
        let f = cfg.ffn_hidden;
        Self {
            wq: init::xavier(h, h, rng),
            wk: init::xavier(h, h, rng),
            wv: init::xavier(h, h, rng),
            wo: init::xavier(h, h, rng),
            wg: init::xavier(h, f, rng),
            wu: init::xavier(h, f, rng),
            wd: init::xavier(f, h, rng),
            norm1: Tensor::from_vec(1, h, vec![1.0; h]),
            norm2: Tensor::from_vec(1, h, vec![1.0; h]),
        }
    }

    /// Zeroed gradients of the same shapes.
    pub fn zero_grads(&self) -> LayerParams {
        LayerParams {
            wq: Tensor::zeros(self.wq.rows(), self.wq.cols()),
            wk: Tensor::zeros(self.wk.rows(), self.wk.cols()),
            wv: Tensor::zeros(self.wv.rows(), self.wv.cols()),
            wo: Tensor::zeros(self.wo.rows(), self.wo.cols()),
            wg: Tensor::zeros(self.wg.rows(), self.wg.cols()),
            wu: Tensor::zeros(self.wu.rows(), self.wu.cols()),
            wd: Tensor::zeros(self.wd.rows(), self.wd.cols()),
            norm1: Tensor::zeros(1, self.norm1.cols()),
            norm2: Tensor::zeros(1, self.norm2.cols()),
        }
    }

    /// Applies `f` to every weight tensor.
    pub fn for_each(&mut self, mut f: impl FnMut(&mut Tensor)) {
        f(&mut self.wq);
        f(&mut self.wk);
        f(&mut self.wv);
        f(&mut self.wo);
        f(&mut self.wg);
        f(&mut self.wu);
        f(&mut self.wd);
        f(&mut self.norm1);
        f(&mut self.norm2);
    }

    /// Applies `f` to every (weight, gradient) pair.
    pub fn for_each_with(&mut self, grads: &LayerParams, mut f: impl FnMut(&mut Tensor, &Tensor)) {
        f(&mut self.wq, &grads.wq);
        f(&mut self.wk, &grads.wk);
        f(&mut self.wv, &grads.wv);
        f(&mut self.wo, &grads.wo);
        f(&mut self.wg, &grads.wg);
        f(&mut self.wu, &grads.wu);
        f(&mut self.wd, &grads.wd);
        f(&mut self.norm1, &grads.norm1);
        f(&mut self.norm2, &grads.norm2);
    }

    /// Maximum absolute difference across all weights.
    pub fn max_abs_diff(&self, other: &LayerParams) -> f32 {
        [
            self.wq.max_abs_diff(&other.wq),
            self.wk.max_abs_diff(&other.wk),
            self.wv.max_abs_diff(&other.wv),
            self.wo.max_abs_diff(&other.wo),
            self.wg.max_abs_diff(&other.wg),
            self.wu.max_abs_diff(&other.wu),
            self.wd.max_abs_diff(&other.wd),
            self.norm1.max_abs_diff(&other.norm1),
            self.norm2.max_abs_diff(&other.norm2),
        ]
        .into_iter()
        .fold(0.0, f32::max)
    }
}

/// The full model: embedding, decoder layers, final norm, output head.
#[derive(Debug, Clone)]
pub struct ModelParams {
    /// Architecture.
    pub cfg: TransformerConfig,
    /// Token embedding `[vocab, h]`.
    pub embedding: Tensor,
    /// Decoder layers.
    pub layers: Vec<LayerParams>,
    /// Final RMSNorm `[1, h]`.
    pub final_norm: Tensor,
    /// Output head `[h, vocab]`.
    pub head: Tensor,
}

impl ModelParams {
    /// Deterministically initialised model.
    pub fn init(cfg: TransformerConfig, seed: u64) -> Self {
        let mut rng = init::rng(seed);
        let layers = (0..cfg.layers)
            .map(|_| LayerParams::init(&cfg, &mut rng))
            .collect();
        Self {
            embedding: init::uniform(cfg.vocab, cfg.hidden, 0.05, &mut rng),
            layers,
            final_norm: Tensor::from_vec(1, cfg.hidden, vec![1.0; cfg.hidden]),
            head: init::xavier(cfg.hidden, cfg.vocab, &mut rng),
            cfg,
        }
    }

    /// Layer index range `[start, end)` of global chunk `g` when the model
    /// is split into `total_chunks` equal chunks.
    ///
    /// # Panics
    ///
    /// Panics if layers don't divide evenly.
    pub fn chunk_layer_range(&self, g: usize, total_chunks: usize) -> (usize, usize) {
        assert_eq!(
            self.cfg.layers % total_chunks,
            0,
            "{} layers not divisible into {total_chunks} chunks",
            self.cfg.layers
        );
        let per = self.cfg.layers / total_chunks;
        (g * per, (g + 1) * per)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn init_is_deterministic() {
        let cfg = TransformerConfig::tiny(4);
        let a = ModelParams::init(cfg, 9);
        let b = ModelParams::init(cfg, 9);
        assert_eq!(a.embedding, b.embedding);
        assert_eq!(a.layers[3].wd, b.layers[3].wd);
        let c = ModelParams::init(cfg, 10);
        assert!(a.embedding.max_abs_diff(&c.embedding) > 0.0);
    }

    #[test]
    fn chunk_ranges_tile_the_model() {
        let m = ModelParams::init(TransformerConfig::tiny(8), 1);
        let mut covered = [false; 8];
        for g in 0..4 {
            let (a, b) = m.chunk_layer_range(g, 4);
            for slot in covered.iter_mut().take(b).skip(a) {
                assert!(!*slot);
                *slot = true;
            }
        }
        assert!(covered.iter().all(|&x| x));
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn uneven_chunks_panic() {
        let m = ModelParams::init(TransformerConfig::tiny(6), 1);
        m.chunk_layer_range(0, 4);
    }

    #[test]
    fn grad_buffers_match_shapes() {
        let cfg = TransformerConfig::tiny(2);
        let m = ModelParams::init(cfg, 1);
        let g = m.layers[0].zero_grads();
        assert_eq!(g.wq.rows(), cfg.hidden);
        assert_eq!(g.wd.rows(), cfg.ffn_hidden);
        assert_eq!(g.norm1.cols(), cfg.hidden);
    }
}
