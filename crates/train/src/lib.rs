//! Real pipeline-parallel training runtime on a mini-Llama.
//!
//! This crate is the executable counterpart of the simulator: it runs the
//! *same schedule IR* on real tensors across real OS threads, one thread
//! per pipeline stage, with a pluggable `mepipe-comm` transport standing
//! in for the interconnect (bounded in-process queues, sockets for
//! multi-process runs, or an emulated link with fault injection). It
//! demonstrates that SVPP's dependency structure is correct:
//!
//! * slice-wise forward with per-layer KV caches equals full-sequence
//!   forward;
//! * backward with reverse-slice dKV accumulation equals full-sequence
//!   backward;
//! * splitting weight-gradient GEMMs out of the backward pass and draining
//!   them later yields identical gradients;
//! * the peak activation bytes a stage holds under SVPP are a fraction of
//!   what 1F1B holds, measured on live tensors, not a model.
//!
//! Modules: [`params`] (weights/grads/optimizer state), [`layer`]
//! (slice-wise decoder layer with explicit backward), [`mod@reference`]
//! (single-device baseline), [`pipeline`] (the threaded runtime),
//! [`optim`] (SGD/Adam), [`memtrack`] (live activation accounting),
//! [`profiler`] (measures real per-slice op times and feeds them to the
//! simulator — the paper's profiler → scheduler → engine pipeline),
//! [`metrics`] (bridges run statistics into a `mepipe-trace` metrics
//! registry for JSON / Prometheus exposition), [`calibrate`] (the online
//! loop that fits the cost model to measured spans, re-searches the
//! schedule space under the fitted costs, and hot-swaps the winner into
//! the running job).
#![warn(missing_docs)]

pub mod calibrate;
pub mod checkpoint;
pub mod cp;
pub mod data;
pub mod layer;
pub mod memtrack;
pub mod metrics;
pub mod optim;
pub mod params;
pub mod pipeline;
pub mod profiler;
pub mod reference;
pub mod tp;

pub use memtrack::{MemError, MemTracker};
pub use pipeline::{PipelineRuntime, RunStats, StageRunStats, WgradMode};
