//! In-memory checkpointing for fault tolerance (Section 9).
//!
//! The paper estimates hardware failures cost under 5% of a thousand-GPU
//! 4090 cluster's time, assuming memory-based checkpointing (MegaScale,
//! GEMINI) brings recovery down to minutes. This module supplies the
//! substrate: serialise the full model to a flat byte buffer (an
//! "in-memory checkpoint"), restore it bit-exactly, and verify that
//! training resumes on the identical trajectory.
//!
//! The format is deliberately trivial — a header of shape metadata plus
//! little-endian `f32`s — because the interesting questions (how often to
//! checkpoint, what failures cost) live in [`failure_overhead`], not in
//! the encoding.

use mepipe_model::config::TransformerConfig;
use mepipe_tensor::Tensor;

use crate::params::{LayerParams, ModelParams};

/// Serialises a model to an in-memory checkpoint.
///
/// # Examples
///
/// ```
/// use mepipe_model::config::TransformerConfig;
/// use mepipe_train::{checkpoint, params::ModelParams};
///
/// let model = ModelParams::init(TransformerConfig::tiny(2), 7);
/// let bytes = checkpoint::save(&model);
/// let restored = checkpoint::restore(&bytes).unwrap();
/// assert_eq!(restored.embedding, model.embedding);
/// ```
pub fn save(model: &ModelParams) -> Vec<u8> {
    let mut out = Vec::new();
    let push_usize = |out: &mut Vec<u8>, v: usize| out.extend((v as u64).to_le_bytes());
    push_usize(&mut out, model.cfg.hidden);
    push_usize(&mut out, model.cfg.layers);
    push_usize(&mut out, model.cfg.ffn_hidden);
    push_usize(&mut out, model.cfg.heads);
    push_usize(&mut out, model.cfg.kv_heads);
    push_usize(&mut out, model.cfg.vocab);
    push_usize(&mut out, model.cfg.seq_len);
    let push_tensor = |out: &mut Vec<u8>, t: &Tensor| {
        out.extend((t.rows() as u64).to_le_bytes());
        out.extend((t.cols() as u64).to_le_bytes());
        for &v in t.data() {
            out.extend(v.to_le_bytes());
        }
    };
    push_tensor(&mut out, &model.embedding);
    for l in &model.layers {
        for t in [
            &l.wq, &l.wk, &l.wv, &l.wo, &l.wg, &l.wu, &l.wd, &l.norm1, &l.norm2,
        ] {
            push_tensor(&mut out, t);
        }
    }
    push_tensor(&mut out, &model.final_norm);
    push_tensor(&mut out, &model.head);
    out
}

/// Restores a model from a checkpoint produced by [`save`].
///
/// Returns `Err` on truncated or malformed input.
pub fn restore(bytes: &[u8]) -> Result<ModelParams, String> {
    let mut pos = 0usize;
    let mut read_u64 = |bytes: &[u8]| -> Result<usize, String> {
        let end = pos + 8;
        let chunk: [u8; 8] = bytes
            .get(pos..end)
            .ok_or("truncated checkpoint header")?
            .try_into()
            .map_err(|_| "bad header chunk".to_string())?;
        pos = end;
        Ok(u64::from_le_bytes(chunk) as usize)
    };
    let hidden = read_u64(bytes)?;
    let layers = read_u64(bytes)?;
    let ffn_hidden = read_u64(bytes)?;
    let heads = read_u64(bytes)?;
    let kv_heads = read_u64(bytes)?;
    let vocab = read_u64(bytes)?;
    let seq_len = read_u64(bytes)?;
    let cfg = TransformerConfig {
        hidden,
        layers,
        ffn_hidden,
        heads,
        kv_heads,
        vocab,
        seq_len,
    };

    let read_tensor = |bytes: &[u8], pos: &mut usize| -> Result<Tensor, String> {
        let rows = u64::from_le_bytes(
            bytes
                .get(*pos..*pos + 8)
                .ok_or("truncated tensor header")?
                .try_into()
                .unwrap(),
        ) as usize;
        *pos += 8;
        let cols = u64::from_le_bytes(
            bytes
                .get(*pos..*pos + 8)
                .ok_or("truncated tensor header")?
                .try_into()
                .unwrap(),
        ) as usize;
        *pos += 8;
        let mut data = Vec::with_capacity(rows * cols);
        for _ in 0..rows * cols {
            let v = f32::from_le_bytes(
                bytes
                    .get(*pos..*pos + 4)
                    .ok_or("truncated tensor data")?
                    .try_into()
                    .unwrap(),
            );
            *pos += 4;
            data.push(v);
        }
        Ok(Tensor::from_vec(rows, cols, data))
    };

    let embedding = read_tensor(bytes, &mut pos)?;
    let mut layer_params = Vec::with_capacity(layers);
    for _ in 0..layers {
        let wq = read_tensor(bytes, &mut pos)?;
        let wk = read_tensor(bytes, &mut pos)?;
        let wv = read_tensor(bytes, &mut pos)?;
        let wo = read_tensor(bytes, &mut pos)?;
        let wg = read_tensor(bytes, &mut pos)?;
        let wu = read_tensor(bytes, &mut pos)?;
        let wd = read_tensor(bytes, &mut pos)?;
        let norm1 = read_tensor(bytes, &mut pos)?;
        let norm2 = read_tensor(bytes, &mut pos)?;
        layer_params.push(LayerParams {
            wq,
            wk,
            wv,
            wo,
            wg,
            wu,
            wd,
            norm1,
            norm2,
        });
    }
    let final_norm = read_tensor(bytes, &mut pos)?;
    let head = read_tensor(bytes, &mut pos)?;
    if pos != bytes.len() {
        return Err(format!(
            "{} trailing bytes in checkpoint",
            bytes.len() - pos
        ));
    }
    Ok(ModelParams {
        cfg,
        embedding,
        layers: layer_params,
        final_norm,
        head,
    })
}

/// Expected fraction of cluster time lost to failures under periodic
/// checkpointing (first-order Young/Daly accounting):
///
/// * checkpoint overhead: `checkpoint_cost / interval`;
/// * per failure, half an interval of lost work plus the recovery time,
///   at a failure rate of `1 / mtbf`.
pub fn failure_overhead(
    mtbf_secs: f64,
    checkpoint_cost_secs: f64,
    recovery_secs: f64,
    interval_secs: f64,
) -> f64 {
    checkpoint_cost_secs / interval_secs + (interval_secs / 2.0 + recovery_secs) / mtbf_secs
}

/// Young's optimal checkpoint interval: `sqrt(2 · cost · MTBF)`.
pub fn optimal_interval(mtbf_secs: f64, checkpoint_cost_secs: f64) -> f64 {
    (2.0 * checkpoint_cost_secs * mtbf_secs).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::Sgd;
    use crate::reference::forward_backward;
    use mepipe_tensor::init::synthetic_tokens;

    #[test]
    fn checkpoint_round_trips_bit_exactly() {
        let cfg = TransformerConfig::tiny(2);
        let model = ModelParams::init(cfg, 31);
        let bytes = save(&model);
        let back = restore(&bytes).unwrap();
        assert_eq!(back.cfg, model.cfg);
        assert_eq!(back.embedding, model.embedding);
        assert_eq!(back.layers[1].wd, model.layers[1].wd);
        assert_eq!(back.head, model.head);
    }

    #[test]
    fn truncated_checkpoint_is_rejected() {
        let model = ModelParams::init(TransformerConfig::tiny(1), 1);
        let bytes = save(&model);
        assert!(restore(&bytes[..bytes.len() - 3]).is_err());
        assert!(restore(&bytes[..10]).is_err());
        let mut extra = bytes.clone();
        extra.push(0);
        assert!(restore(&extra).is_err());
    }

    #[test]
    fn training_resumes_on_the_same_trajectory() {
        // Train 2 steps, checkpoint, train 2 more; versus restore at the
        // checkpoint and replay the last 2 — identical weights.
        let cfg = TransformerConfig::tiny(2);
        let mut a = ModelParams::init(cfg, 77);
        let step = |m: &mut ModelParams, seed: u64| {
            let toks = synthetic_tokens(cfg.seq_len + 1, cfg.vocab, seed);
            let out = forward_backward(m, &toks);
            Sgd { lr: 0.1 }.step_model(m, &out.grads);
        };
        step(&mut a, 1);
        step(&mut a, 2);
        let ckpt = save(&a);
        step(&mut a, 3);
        step(&mut a, 4);

        let mut b = restore(&ckpt).unwrap();
        step(&mut b, 3);
        step(&mut b, 4);
        assert_eq!(a.embedding, b.embedding);
        assert_eq!(a.layers[0].wq, b.layers[0].wq);
        assert_eq!(a.head, b.head);
    }

    #[test]
    fn paper_failure_estimate_holds() {
        // Section 9: MTBF ~12h for 1000 A100s; a 1000-GPU 4090 cluster at
        // similar rates with minute-scale in-memory recovery should lose
        // <5%. Checkpoint cost ~10s (in-memory copy), recovery ~3 min.
        let mtbf = 12.0 * 3600.0;
        let ckpt_cost = 10.0;
        let recovery = 180.0;
        let interval = optimal_interval(mtbf, ckpt_cost);
        let overhead = failure_overhead(mtbf, ckpt_cost, recovery, interval);
        assert!(overhead < 0.05, "overhead {overhead}");
        assert!(overhead > 0.001, "suspiciously free: {overhead}");
    }

    #[test]
    fn optimal_interval_minimises_overhead() {
        let mtbf = 12.0 * 3600.0;
        let cost = 10.0;
        let best = optimal_interval(mtbf, cost);
        let at = |i: f64| failure_overhead(mtbf, cost, 180.0, i);
        assert!(at(best) <= at(best * 2.0));
        assert!(at(best) <= at(best / 2.0));
    }
}
