//! In-memory checkpointing for fault tolerance (Section 9).
//!
//! The paper estimates hardware failures cost under 5% of a thousand-GPU
//! 4090 cluster's time, assuming memory-based checkpointing (MegaScale,
//! GEMINI) brings recovery down to minutes. This module supplies the
//! substrate: serialise the full model to a flat byte buffer (an
//! "in-memory checkpoint"), restore it bit-exactly, and verify that
//! training resumes on the identical trajectory.
//!
//! The format is a versioned magic header, the shape metadata plus
//! little-endian `f32` payload, and a trailing FNV-1a checksum over
//! everything before it. [`restore`] rejects corruption with a typed
//! [`CheckpointError`] *before* any tensor is built: a truncated or
//! bit-flipped buffer can never partially deserialize into a model. The
//! interesting policy questions (how often to checkpoint, what failures
//! cost) live in [`failure_overhead`] and [`optimal_interval`]; the
//! control plane (`mepipe-ctl`) composes both with [`merge_stage_parts`]
//! to rebuild one canonical model out of per-stage checkpoints when it
//! re-shards a job across a different stage count.

use mepipe_comm::frame::checksum;
use mepipe_model::config::TransformerConfig;
use mepipe_tensor::Tensor;

use crate::params::{LayerParams, ModelParams};

/// Leading magic of every checkpoint: identifies the file type and pins
/// the format version (bump the trailing digit on layout changes).
pub const MAGIC: &[u8; 8] = b"MEPCKPT2";

/// Why a checkpoint buffer was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// The buffer does not start with [`MAGIC`] — not a checkpoint, or a
    /// version this build does not read.
    BadMagic,
    /// The buffer ends before the named section is complete.
    Truncated(&'static str),
    /// The trailing FNV checksum does not match the bytes before it —
    /// the payload was corrupted in memory or on the wire.
    Corrupt {
        /// Checksum stored in the trailer.
        stored: u64,
        /// Checksum recomputed over the received bytes.
        computed: u64,
    },
    /// Framing is intact but the contents are inconsistent (trailing
    /// bytes, impossible shapes).
    Malformed(String),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::BadMagic => write!(f, "bad checkpoint magic"),
            CheckpointError::Truncated(what) => write!(f, "truncated checkpoint: {what}"),
            CheckpointError::Corrupt { stored, computed } => write!(
                f,
                "checkpoint checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
            ),
            CheckpointError::Malformed(why) => write!(f, "malformed checkpoint: {why}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// Serialises a model to an in-memory checkpoint.
///
/// # Examples
///
/// ```
/// use mepipe_model::config::TransformerConfig;
/// use mepipe_train::{checkpoint, params::ModelParams};
///
/// let model = ModelParams::init(TransformerConfig::tiny(2), 7);
/// let bytes = checkpoint::save(&model);
/// let restored = checkpoint::restore(&bytes).unwrap();
/// assert_eq!(restored.embedding, model.embedding);
/// ```
pub fn save(model: &ModelParams) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    let push_usize = |out: &mut Vec<u8>, v: usize| out.extend((v as u64).to_le_bytes());
    push_usize(&mut out, model.cfg.hidden);
    push_usize(&mut out, model.cfg.layers);
    push_usize(&mut out, model.cfg.ffn_hidden);
    push_usize(&mut out, model.cfg.heads);
    push_usize(&mut out, model.cfg.kv_heads);
    push_usize(&mut out, model.cfg.vocab);
    push_usize(&mut out, model.cfg.seq_len);
    let push_tensor = |out: &mut Vec<u8>, t: &Tensor| {
        out.extend((t.rows() as u64).to_le_bytes());
        out.extend((t.cols() as u64).to_le_bytes());
        for &v in t.data() {
            out.extend(v.to_le_bytes());
        }
    };
    push_tensor(&mut out, &model.embedding);
    for l in &model.layers {
        for t in [
            &l.wq, &l.wk, &l.wv, &l.wo, &l.wg, &l.wu, &l.wd, &l.norm1, &l.norm2,
        ] {
            push_tensor(&mut out, t);
        }
    }
    push_tensor(&mut out, &model.final_norm);
    push_tensor(&mut out, &model.head);
    let sum = checksum(&out);
    out.extend(sum.to_le_bytes());
    out
}

/// Restores a model from a checkpoint produced by [`save`].
///
/// The magic header and trailing checksum are verified before any
/// payload byte is interpreted, so corrupt or truncated buffers are
/// rejected whole — never partially deserialized.
///
/// # Errors
///
/// Returns a [`CheckpointError`] naming what was wrong with the buffer.
pub fn restore(bytes: &[u8]) -> Result<ModelParams, CheckpointError> {
    // Frame checks first: magic, then the checksum over everything
    // before the 8-byte trailer.
    let Some(head) = bytes.get(..MAGIC.len()) else {
        return Err(CheckpointError::Truncated("magic"));
    };
    if head != MAGIC {
        return Err(CheckpointError::BadMagic);
    }
    if bytes.len() < MAGIC.len() + 8 {
        return Err(CheckpointError::Truncated("checksum trailer"));
    }
    let body_end = bytes.len() - 8;
    let stored = u64::from_le_bytes(bytes[body_end..].try_into().expect("8-byte trailer"));
    let computed = checksum(&bytes[..body_end]);
    if stored != computed {
        return Err(CheckpointError::Corrupt { stored, computed });
    }
    let bytes = &bytes[..body_end];

    let mut pos = MAGIC.len();
    let mut read_u64 = |bytes: &[u8]| -> Result<usize, CheckpointError> {
        let end = pos + 8;
        let chunk: [u8; 8] = bytes
            .get(pos..end)
            .ok_or(CheckpointError::Truncated("header field"))?
            .try_into()
            .expect("8-byte slice");
        pos = end;
        Ok(u64::from_le_bytes(chunk) as usize)
    };
    let hidden = read_u64(bytes)?;
    let layers = read_u64(bytes)?;
    let ffn_hidden = read_u64(bytes)?;
    let heads = read_u64(bytes)?;
    let kv_heads = read_u64(bytes)?;
    let vocab = read_u64(bytes)?;
    let seq_len = read_u64(bytes)?;
    let cfg = TransformerConfig {
        hidden,
        layers,
        ffn_hidden,
        heads,
        kv_heads,
        vocab,
        seq_len,
    };

    let read_tensor = |bytes: &[u8], pos: &mut usize| -> Result<Tensor, CheckpointError> {
        let mut dim = || -> Result<usize, CheckpointError> {
            let chunk: [u8; 8] = bytes
                .get(*pos..*pos + 8)
                .ok_or(CheckpointError::Truncated("tensor header"))?
                .try_into()
                .expect("8-byte slice");
            *pos += 8;
            Ok(u64::from_le_bytes(chunk) as usize)
        };
        let rows = dim()?;
        let cols = dim()?;
        // Bound the element count by the bytes actually present before
        // allocating, so an absurd header can never trigger a huge
        // allocation (the checksum already makes this unreachable in
        // practice; this keeps the parser safe standalone).
        let elems = rows
            .checked_mul(cols)
            .ok_or_else(|| CheckpointError::Malformed("tensor shape overflows".into()))?;
        let need = elems
            .checked_mul(4)
            .ok_or_else(|| CheckpointError::Malformed("tensor bytes overflow".into()))?;
        let data_bytes = bytes
            .get(*pos..*pos + need)
            .ok_or(CheckpointError::Truncated("tensor data"))?;
        *pos += need;
        let data = data_bytes
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().expect("4-byte chunk")))
            .collect();
        Ok(Tensor::from_vec(rows, cols, data))
    };

    let embedding = read_tensor(bytes, &mut pos)?;
    let mut layer_params = Vec::with_capacity(layers);
    for _ in 0..layers {
        let wq = read_tensor(bytes, &mut pos)?;
        let wk = read_tensor(bytes, &mut pos)?;
        let wv = read_tensor(bytes, &mut pos)?;
        let wo = read_tensor(bytes, &mut pos)?;
        let wg = read_tensor(bytes, &mut pos)?;
        let wu = read_tensor(bytes, &mut pos)?;
        let wd = read_tensor(bytes, &mut pos)?;
        let norm1 = read_tensor(bytes, &mut pos)?;
        let norm2 = read_tensor(bytes, &mut pos)?;
        layer_params.push(LayerParams {
            wq,
            wk,
            wv,
            wo,
            wg,
            wu,
            wd,
            norm1,
            norm2,
        });
    }
    let final_norm = read_tensor(bytes, &mut pos)?;
    let head = read_tensor(bytes, &mut pos)?;
    if pos != bytes.len() {
        return Err(CheckpointError::Malformed(format!(
            "{} trailing bytes in checkpoint",
            bytes.len() - pos
        )));
    }
    Ok(ModelParams {
        cfg,
        embedding,
        layers: layer_params,
        final_norm,
        head,
    })
}

/// Rebuilds one canonical model from per-stage checkpoints.
///
/// In a multi-process gang every stage steps only the parameters it
/// owns: stage `i` of `p` updates layers `[i·L/p, (i+1)·L/p)`, stage 0
/// additionally the embedding, stage `p−1` the final norm and output
/// head — all other tensors in its checkpoint are stale. Merging takes
/// each tensor from its owner, yielding the full model state the gang
/// collectively reached, which is what a re-shard to a *different*
/// stage count must restore from.
///
/// `parts[i]` must be stage `i`'s checkpointed model (same config,
/// same iteration).
///
/// # Errors
///
/// Returns [`CheckpointError::Malformed`] when the parts disagree on
/// the config, the list is empty, or layers don't divide evenly.
pub fn merge_stage_parts(parts: &[ModelParams]) -> Result<ModelParams, CheckpointError> {
    let first = parts
        .first()
        .ok_or_else(|| CheckpointError::Malformed("no stage parts to merge".into()))?;
    let p = parts.len();
    let cfg = first.cfg;
    for (i, part) in parts.iter().enumerate() {
        if part.cfg != cfg {
            return Err(CheckpointError::Malformed(format!(
                "stage {i} config disagrees with stage 0"
            )));
        }
    }
    if cfg.layers % p != 0 {
        return Err(CheckpointError::Malformed(format!(
            "{} layers not divisible across {p} stages",
            cfg.layers
        )));
    }
    let per = cfg.layers / p;
    let layers = (0..cfg.layers)
        .map(|l| parts[l / per].layers[l].clone())
        .collect();
    Ok(ModelParams {
        cfg,
        embedding: first.embedding.clone(),
        layers,
        final_norm: parts[p - 1].final_norm.clone(),
        head: parts[p - 1].head.clone(),
    })
}

/// Expected fraction of cluster time lost to failures under periodic
/// checkpointing (first-order Young/Daly accounting):
///
/// * checkpoint overhead: `checkpoint_cost / interval`;
/// * per failure, half an interval of lost work plus the recovery time,
///   at a failure rate of `1 / mtbf`.
pub fn failure_overhead(
    mtbf_secs: f64,
    checkpoint_cost_secs: f64,
    recovery_secs: f64,
    interval_secs: f64,
) -> f64 {
    checkpoint_cost_secs / interval_secs + (interval_secs / 2.0 + recovery_secs) / mtbf_secs
}

/// Young's optimal checkpoint interval: `sqrt(2 · cost · MTBF)`.
pub fn optimal_interval(mtbf_secs: f64, checkpoint_cost_secs: f64) -> f64 {
    (2.0 * checkpoint_cost_secs * mtbf_secs).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::Sgd;
    use crate::reference::forward_backward;
    use mepipe_tensor::init::synthetic_tokens;

    #[test]
    fn checkpoint_round_trips_bit_exactly() {
        let cfg = TransformerConfig::tiny(2);
        let model = ModelParams::init(cfg, 31);
        let bytes = save(&model);
        let back = restore(&bytes).unwrap();
        assert_eq!(back.cfg, model.cfg);
        assert_eq!(back.embedding, model.embedding);
        assert_eq!(back.layers[1].wd, model.layers[1].wd);
        assert_eq!(back.head, model.head);
    }

    #[test]
    fn truncated_checkpoint_is_rejected() {
        let model = ModelParams::init(TransformerConfig::tiny(1), 1);
        let bytes = save(&model);
        assert!(restore(&bytes[..bytes.len() - 3]).is_err());
        assert!(restore(&bytes[..10]).is_err());
        assert!(restore(&bytes[..3]).is_err());
        assert!(restore(&[]).is_err());
        let mut extra = bytes.clone();
        extra.push(0);
        assert!(restore(&extra).is_err());
    }

    #[test]
    fn corruption_yields_typed_errors() {
        let model = ModelParams::init(TransformerConfig::tiny(1), 5);
        let bytes = save(&model);
        // Wrong magic: not a checkpoint at all.
        let mut wrong_magic = bytes.clone();
        wrong_magic[0] ^= 0xff;
        assert!(matches!(
            restore(&wrong_magic),
            Err(CheckpointError::BadMagic)
        ));
        // Any payload bit flip: checksum catches it before parsing.
        let mut flipped = bytes.clone();
        let mid = bytes.len() / 2;
        flipped[mid] ^= 0x10;
        assert!(matches!(
            restore(&flipped),
            Err(CheckpointError::Corrupt { .. })
        ));
        // A flipped trailer bit is also a checksum mismatch.
        let mut bad_trailer = bytes.clone();
        let last = bytes.len() - 1;
        bad_trailer[last] ^= 1;
        assert!(matches!(
            restore(&bad_trailer),
            Err(CheckpointError::Corrupt { .. })
        ));
    }

    #[test]
    fn training_resumes_on_the_same_trajectory() {
        // Train 2 steps, checkpoint, train 2 more; versus restore at the
        // checkpoint and replay the last 2 — identical weights.
        let cfg = TransformerConfig::tiny(2);
        let mut a = ModelParams::init(cfg, 77);
        let step = |m: &mut ModelParams, seed: u64| {
            let toks = synthetic_tokens(cfg.seq_len + 1, cfg.vocab, seed);
            let out = forward_backward(m, &toks);
            Sgd { lr: 0.1 }.step_model(m, &out.grads);
        };
        step(&mut a, 1);
        step(&mut a, 2);
        let ckpt = save(&a);
        step(&mut a, 3);
        step(&mut a, 4);

        let mut b = restore(&ckpt).unwrap();
        step(&mut b, 3);
        step(&mut b, 4);
        assert_eq!(a.embedding, b.embedding);
        assert_eq!(a.layers[0].wq, b.layers[0].wq);
        assert_eq!(a.head, b.head);
    }

    #[test]
    fn merge_takes_each_tensor_from_its_owner() {
        let cfg = TransformerConfig::tiny(4);
        // Every stage starts from the shared init, then perturbs exactly
        // the parameters it owns — the multi-process update pattern.
        let base = ModelParams::init(cfg, 9);
        let p = 2;
        let per = cfg.layers / p;
        let parts: Vec<ModelParams> = (0..p)
            .map(|stage| {
                let mut m = base.clone();
                for l in stage * per..(stage + 1) * per {
                    m.layers[l].wq.data_mut()[0] = 100.0 + stage as f32;
                }
                if stage == 0 {
                    m.embedding.data_mut()[0] = -7.0;
                }
                if stage == p - 1 {
                    m.head.data_mut()[0] = -9.0;
                    m.final_norm.data_mut()[0] = -11.0;
                }
                m
            })
            .collect();
        let merged = merge_stage_parts(&parts).unwrap();
        assert_eq!(merged.embedding.data()[0], -7.0);
        assert_eq!(merged.head.data()[0], -9.0);
        assert_eq!(merged.final_norm.data()[0], -11.0);
        for l in 0..cfg.layers {
            assert_eq!(merged.layers[l].wq.data()[0], 100.0 + (l / per) as f32);
        }
        // Untouched tensors come through bit-identical to the base.
        assert_eq!(merged.layers[0].wd, base.layers[0].wd);
    }

    #[test]
    fn merge_rejects_inconsistent_parts() {
        let a = ModelParams::init(TransformerConfig::tiny(2), 1);
        let b = ModelParams::init(TransformerConfig::tiny(4), 1);
        assert!(merge_stage_parts(&[]).is_err());
        assert!(merge_stage_parts(&[a.clone(), b]).is_err());
        // 2 layers across 3 stages cannot divide.
        let c = ModelParams::init(TransformerConfig::tiny(2), 2);
        let d = ModelParams::init(TransformerConfig::tiny(2), 3);
        assert!(merge_stage_parts(&[a, c, d]).is_err());
    }

    #[test]
    fn paper_failure_estimate_holds() {
        // Section 9: MTBF ~12h for 1000 A100s; a 1000-GPU 4090 cluster at
        // similar rates with minute-scale in-memory recovery should lose
        // <5%. Checkpoint cost ~10s (in-memory copy), recovery ~3 min.
        let mtbf = 12.0 * 3600.0;
        let ckpt_cost = 10.0;
        let recovery = 180.0;
        let interval = optimal_interval(mtbf, ckpt_cost);
        let overhead = failure_overhead(mtbf, ckpt_cost, recovery, interval);
        assert!(overhead < 0.05, "overhead {overhead}");
        assert!(overhead > 0.001, "suspiciously free: {overhead}");
    }

    #[test]
    fn optimal_interval_minimises_overhead() {
        let mtbf = 12.0 * 3600.0;
        let cost = 10.0;
        let best = optimal_interval(mtbf, cost);
        let at = |i: f64| failure_overhead(mtbf, cost, 180.0, i);
        assert!(at(best) <= at(best * 2.0));
        assert!(at(best) <= at(best / 2.0));
    }
}
