//! Deterministic batch derivation shared by every training entry point.
//!
//! Multi-iteration jobs need each process — gang workers, the control
//! plane's in-process verifier, tests — to derive *the same* batch for
//! iteration `k` from nothing but the job's seed. This module is that
//! single definition: change it and every consumer moves together, so
//! bit-identity checks between a recovered gang and an uninterrupted
//! replay keep meaning something.

use mepipe_model::config::TransformerConfig;
use mepipe_tensor::init::synthetic_tokens;

/// Offset separating batch seeds from the model-init seed space (the
/// single-iteration scenarios use `seed + 1000 + mb`; iteration 0 of a
/// job reproduces exactly that, so a one-iteration job equals a
/// `launch` run).
const BATCH_SEED_BASE: u64 = 1000;

/// Large odd stride separating the seed ranges of consecutive
/// iterations (odd, so it stays coprime with any power-of-two
/// micro-batch count).
const ITER_SEED_STRIDE: u64 = 1_000_003;

/// The batch every participant runs for iteration `iter` of a job
/// seeded `seed`: `micro_batches` sequences of `seq_len + 1` token ids.
pub fn batch_for_iter(
    cfg: &TransformerConfig,
    micro_batches: usize,
    seed: u64,
    iter: usize,
) -> Vec<Vec<usize>> {
    (0..micro_batches)
        .map(|mb| {
            let s = seed
                .wrapping_add(BATCH_SEED_BASE)
                .wrapping_add((iter as u64).wrapping_mul(ITER_SEED_STRIDE))
                .wrapping_add(mb as u64);
            synthetic_tokens(cfg.seq_len + 1, cfg.vocab, s)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batches_are_deterministic_and_iteration_dependent() {
        let cfg = TransformerConfig::tiny(2);
        let a = batch_for_iter(&cfg, 4, 7, 3);
        let b = batch_for_iter(&cfg, 4, 7, 3);
        assert_eq!(a, b);
        assert_eq!(a.len(), 4);
        for s in &a {
            assert_eq!(s.len(), cfg.seq_len + 1);
        }
        let c = batch_for_iter(&cfg, 4, 7, 4);
        assert_ne!(a, c, "different iterations must see different data");
        let d = batch_for_iter(&cfg, 4, 8, 3);
        assert_ne!(a, d, "different seeds must see different data");
    }

    #[test]
    fn iteration_zero_matches_the_single_shot_scenarios() {
        // `mepipe-worker launch` builds `synthetic_tokens(seq + 1,
        // vocab, seed + 1000 + mb)`; a job's iteration 0 must reproduce
        // it so one-iteration jobs are comparable with launch runs.
        let cfg = TransformerConfig::tiny(2);
        let job = batch_for_iter(&cfg, 2, 42, 0);
        let launch: Vec<Vec<usize>> = (0..2)
            .map(|mb| synthetic_tokens(cfg.seq_len + 1, cfg.vocab, 42 + 1000 + mb as u64))
            .collect();
        assert_eq!(job, launch);
    }
}
