//! Bridges the runtime's stat structs into one [`MetricsRegistry`].
//!
//! [`RunStats`] carries loss, memory, drain, arena, transport and
//! busy/idle numbers in their own structs; this module registers them
//! all under Prometheus naming conventions so a run exports one JSON or
//! text document instead of four ad-hoc printouts. When the run carried
//! a trace, per-op duration histograms are observed from its spans.

use mepipe_trace::{metrics::DURATION_BUCKETS, MetricsRegistry};

use crate::pipeline::RunStats;

fn stage_label(stage: usize) -> [(&'static str, String); 1] {
    [("stage", stage.to_string())]
}

/// Registers every counter a [`RunStats`] carries into `reg`.
pub fn record_run(reg: &mut MetricsRegistry, stats: &RunStats) {
    reg.gauge(
        "mepipe_loss",
        "Mean next-token cross-entropy of the iteration",
        &[],
        stats.loss,
    );
    for (stage, bytes) in stats.peak_bytes.iter().enumerate() {
        reg.gauge(
            "mepipe_stage_peak_activation_bytes",
            "Peak live activation bytes per stage",
            &stage_label(stage),
            *bytes as f64,
        );
    }
    for (stage, n) in stats.drained_wgrads.iter().enumerate() {
        reg.counter(
            "mepipe_drained_wgrads_total",
            "Weight-gradient GEMMs drained into interconnect waits",
            &stage_label(stage),
            *n as f64,
        );
    }
    for (stage, s) in stats.busy_seconds.iter().enumerate() {
        reg.gauge(
            "mepipe_stage_busy_seconds",
            "Wall-clock compute seconds per stage",
            &stage_label(stage),
            *s,
        );
    }
    for (stage, s) in stats.idle_seconds.iter().enumerate() {
        reg.gauge(
            "mepipe_stage_idle_seconds",
            "Wall-clock non-compute seconds per stage",
            &stage_label(stage),
            *s,
        );
    }
    for (stage, a) in stats.arena.iter().enumerate() {
        let labels = stage_label(stage);
        reg.counter(
            "mepipe_arena_hits_total",
            "Tensor acquisitions served from an arena free list",
            &labels,
            a.hits as f64,
        );
        reg.counter(
            "mepipe_arena_misses_total",
            "Tensor acquisitions that allocated fresh memory",
            &labels,
            a.misses as f64,
        );
        reg.counter(
            "mepipe_arena_recycled_total",
            "Tensor buffers returned to an arena free list",
            &labels,
            a.recycled as f64,
        );
    }
    for cs in &stats.comm {
        let labels = stage_label(cs.stage);
        let t = cs.total();
        reg.counter(
            "mepipe_comm_tx_bytes_total",
            "Bytes sent over the inter-stage transport",
            &labels,
            t.tx_bytes as f64,
        );
        reg.counter(
            "mepipe_comm_tx_messages_total",
            "Messages sent over the inter-stage transport",
            &labels,
            t.tx_messages as f64,
        );
        reg.counter(
            "mepipe_comm_rx_bytes_total",
            "Bytes received over the inter-stage transport",
            &labels,
            t.rx_bytes as f64,
        );
        reg.counter(
            "mepipe_comm_retries_total",
            "Retransmissions by the reliable layer",
            &labels,
            t.retries as f64,
        );
        reg.counter(
            "mepipe_comm_send_stall_seconds_total",
            "Time sends stalled on flow control or socket writes",
            &labels,
            t.send_stall_ns as f64 * 1e-9,
        );
        reg.counter(
            "mepipe_comm_recv_wait_seconds_total",
            "Time blocked in receive waiting for any message",
            &labels,
            cs.recv_wait_ns as f64 * 1e-9,
        );
        reg.counter(
            "mepipe_comm_payload_precodec_bytes_total",
            "Tensor payload bytes before wire-codec encoding",
            &labels,
            t.payload_bytes_precodec as f64,
        );
        reg.counter(
            "mepipe_comm_payload_postcodec_bytes_total",
            "Tensor payload bytes after wire-codec encoding",
            &labels,
            t.payload_bytes_postcodec as f64,
        );
        reg.counter(
            "mepipe_comm_encode_overlap_seconds_total",
            "Encode time overlapped with in-flight wire transfers",
            &labels,
            t.encode_overlap_ns as f64 * 1e-9,
        );
    }
    if let Some(trace) = &stats.trace {
        for st in &trace.stages {
            for s in &st.spans {
                reg.observe(
                    "mepipe_op_duration_seconds",
                    "Measured span durations by stage and op kind",
                    &[
                        ("stage", st.stage.to_string()),
                        ("kind", s.kind.name().to_string()),
                    ],
                    &DURATION_BUCKETS,
                    s.duration_ns() as f64 * 1e-9,
                );
            }
        }
    }
}

/// A fresh registry holding one run's metrics.
pub fn run_metrics(stats: &RunStats) -> MetricsRegistry {
    let mut reg = MetricsRegistry::new();
    record_run(&mut reg, stats);
    reg
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ModelParams;
    use crate::pipeline::{PipelineRuntime, WgradMode};
    use mepipe_core::svpp::Mepipe;
    use mepipe_model::config::TransformerConfig;
    use mepipe_schedule::generator::{Dims, ScheduleGenerator};
    use mepipe_tensor::init::synthetic_tokens;

    fn small_run(tracing: bool) -> RunStats {
        let cfg = TransformerConfig {
            seq_len: 32,
            ..TransformerConfig::tiny(4)
        };
        let rt = PipelineRuntime::new(ModelParams::init(cfg, 42), 2, 1).with_tracing(tracing);
        let sch = Mepipe::new().generate(&Dims::new(2, 2).slices(2)).unwrap();
        let batch: Vec<Vec<usize>> = (0..2)
            .map(|i| synthetic_tokens(cfg.seq_len + 1, cfg.vocab, 7 + i))
            .collect();
        rt.run_iteration(&sch, &batch, WgradMode::DrainOnWait, None)
            .unwrap()
    }

    #[test]
    fn run_metrics_cover_every_stat_family() {
        let stats = small_run(true);
        let reg = run_metrics(&stats);
        let text = reg.to_prometheus_text();
        for family in [
            "mepipe_loss",
            "mepipe_stage_peak_activation_bytes",
            "mepipe_drained_wgrads_total",
            "mepipe_stage_busy_seconds",
            "mepipe_stage_idle_seconds",
            "mepipe_arena_hits_total",
            "mepipe_comm_tx_bytes_total",
            "mepipe_comm_payload_precodec_bytes_total",
            "mepipe_comm_payload_postcodec_bytes_total",
            "mepipe_comm_encode_overlap_seconds_total",
            "mepipe_op_duration_seconds",
        ] {
            assert!(text.contains(family), "missing {family}");
        }
        // JSON exposition parses.
        let v: serde_json::Value = serde_json::from_str(&reg.to_json()).expect("valid JSON");
        assert!(v["mepipe_loss"]["samples"][0]["value"].as_f64().is_some());
        // Gauges round-trip the RunStats values exactly.
        assert_eq!(reg.get("mepipe_loss", &[]), Some(stats.loss));
        assert_eq!(
            reg.get("mepipe_stage_busy_seconds", &stage_label(0)),
            Some(stats.busy_seconds[0])
        );
    }

    #[test]
    fn untraced_runs_export_without_histograms() {
        let stats = small_run(false);
        assert!(stats.trace.is_none());
        let reg = run_metrics(&stats);
        let text = reg.to_prometheus_text();
        assert!(!text.contains("mepipe_op_duration_seconds"));
        assert!(text.contains("mepipe_stage_busy_seconds"));
    }
}
