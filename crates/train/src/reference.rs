//! Single-device reference execution — the ground truth the pipeline
//! runtime is checked against.

use mepipe_tensor::{
    ops::{
        cross_entropy_in, embedding, embedding_backward, matmul_dgrad_in, matmul_in,
        matmul_wgrad_in, rmsnorm_backward_in, rmsnorm_in,
    },
    KernelPool, Tensor, TensorArena,
};

use crate::{
    layer::{apply_wgrads, backward_input_slice, forward_slice, Kv},
    optim::ModelGrads,
    params::ModelParams,
};

/// Loss and gradients of one full forward/backward over one sample.
pub struct ReferenceOut {
    /// Mean next-token cross-entropy over the sample.
    pub loss: f64,
    /// Full-model gradients.
    pub grads: ModelGrads,
}

/// Runs one sample (`tokens[..n]` predicting `tokens[1..=n]`) through the
/// whole model on one device, full sequence, and returns loss + grads
/// (single-threaded kernels).
///
/// # Panics
///
/// Panics if `tokens.len() < 2`.
pub fn forward_backward(model: &ModelParams, tokens: &[usize]) -> ReferenceOut {
    forward_backward_in(KernelPool::shared_serial(), model, tokens)
}

/// [`forward_backward`] with the tensor kernels on `pool`. The pool only
/// parallelises inside kernels — results are bit-identical to the serial
/// run.
///
/// # Panics
///
/// Panics if `tokens.len() < 2`.
pub fn forward_backward_in(
    pool: &KernelPool,
    model: &ModelParams,
    tokens: &[usize],
) -> ReferenceOut {
    assert!(tokens.len() >= 2, "need at least two tokens");
    let t = tokens.len() - 1;
    let inputs = &tokens[..t];
    let targets = &tokens[1..];
    let heads = model.cfg.heads;

    let mut grads = ModelGrads::zeros(model);

    // Forward.
    let x0 = embedding(&model.embedding, inputs, 0);
    let mut x = x0;
    let mut kvs: Vec<Kv> = (0..model.layers.len()).map(|_| Kv::default()).collect();
    let mut saves = Vec::with_capacity(model.layers.len());
    for (li, lp) in model.layers.iter().enumerate() {
        let (y, sv) = forward_slice(pool, lp, &x, &mut kvs[li], 0, heads);
        saves.push(sv);
        x = y;
    }
    let (normed, norm_saved) = rmsnorm_in(pool, &x, &model.final_norm);
    let logits = matmul_in(pool, &normed, &model.head);
    let ce = cross_entropy_in(pool, &logits, targets);
    let loss = ce.loss_sum / t as f64;

    // Backward. Loss gradient is already d(loss_sum); scale to mean.
    let mut dlogits = ce.dlogits;
    dlogits.scale(1.0 / t as f32);
    grads
        .head
        .add_assign(&matmul_wgrad_in(pool, &normed, &dlogits));
    let d_normed = matmul_dgrad_in(pool, &dlogits, &model.head);
    let (mut dy, d_final_norm) =
        rmsnorm_backward_in(pool, &d_normed, &model.final_norm, &norm_saved);
    grads.final_norm.add_assign(&d_final_norm);

    for li in (0..model.layers.len()).rev() {
        let mut dkv = Kv::default();
        let out =
            backward_input_slice(pool, &model.layers[li], &saves[li], &kvs[li], &mut dkv, &dy);
        apply_wgrads(pool, &mut grads.layers[li], &out.wgrads);
        grads.layers[li].norm1.add_assign(&out.dnorm1);
        grads.layers[li].norm2.add_assign(&out.dnorm2);
        dy = out.dx;
    }
    grads
        .embedding
        .add_assign(&embedding_backward(&dy, inputs, model.cfg.vocab));

    ReferenceOut { loss, grads }
}

/// Runs a batch of samples, averaging losses and accumulating gradients
/// scaled by `1/batch` (the convention the pipeline runtime follows).
pub fn batch_forward_backward(model: &ModelParams, batch: &[Vec<usize>]) -> ReferenceOut {
    batch_forward_backward_in(KernelPool::shared_serial(), model, batch)
}

/// [`batch_forward_backward`] with the tensor kernels on `pool`.
pub fn batch_forward_backward_in(
    pool: &KernelPool,
    model: &ModelParams,
    batch: &[Vec<usize>],
) -> ReferenceOut {
    assert!(!batch.is_empty(), "empty batch");
    // Per-sample activations have identical shapes across the batch, so a
    // local arena recycles every buffer from the second sample on. The
    // returned gradients are plain owned tensors — they outlive the scope.
    let mut arena = TensorArena::new();
    let _arena_scope = arena.install();
    let mut total = ModelGrads::zeros(model);
    let mut loss = 0.0;
    for sample in batch {
        let out = forward_backward_in(pool, model, sample);
        loss += out.loss;
        add_grads(&mut total, &out.grads, 1.0 / batch.len() as f32);
    }
    ReferenceOut {
        loss: loss / batch.len() as f64,
        grads: total,
    }
}

/// `acc += scale * g` over a full gradient set.
pub fn add_grads(acc: &mut ModelGrads, g: &ModelGrads, scale: f32) {
    let scaled_add = |a: &mut Tensor, b: &Tensor| {
        for (x, y) in a.data_mut().iter_mut().zip(b.data()) {
            *x += scale * y;
        }
    };
    scaled_add(&mut acc.embedding, &g.embedding);
    for (al, gl) in acc.layers.iter_mut().zip(&g.layers) {
        scaled_add(&mut al.wq, &gl.wq);
        scaled_add(&mut al.wk, &gl.wk);
        scaled_add(&mut al.wv, &gl.wv);
        scaled_add(&mut al.wo, &gl.wo);
        scaled_add(&mut al.wg, &gl.wg);
        scaled_add(&mut al.wu, &gl.wu);
        scaled_add(&mut al.wd, &gl.wd);
        scaled_add(&mut al.norm1, &gl.norm1);
        scaled_add(&mut al.norm2, &gl.norm2);
    }
    scaled_add(&mut acc.final_norm, &g.final_norm);
    scaled_add(&mut acc.head, &g.head);
}

#[cfg(test)]
mod tests {
    use super::*;
    use mepipe_model::config::TransformerConfig;
    use mepipe_tensor::init::synthetic_tokens;

    #[test]
    fn loss_starts_near_log_vocab() {
        let cfg = TransformerConfig::tiny(2);
        let model = ModelParams::init(cfg, 3);
        let toks = synthetic_tokens(17, cfg.vocab, 5);
        let out = forward_backward(&model, &toks);
        let lv = (cfg.vocab as f64).ln();
        assert!(
            (out.loss - lv).abs() < 1.0,
            "initial loss {} far from ln(vocab) = {lv}",
            out.loss
        );
    }

    #[test]
    fn one_sgd_step_reduces_loss() {
        let cfg = TransformerConfig::tiny(2);
        let mut model = ModelParams::init(cfg, 3);
        let toks = synthetic_tokens(17, cfg.vocab, 5);
        let before = forward_backward(&model, &toks);
        crate::optim::Sgd { lr: 0.2 }.step_model(&mut model, &before.grads);
        let after = forward_backward(&model, &toks);
        assert!(
            after.loss < before.loss,
            "{} !< {}",
            after.loss,
            before.loss
        );
    }

    #[test]
    fn pooled_reference_is_bit_identical_to_serial() {
        let cfg = TransformerConfig::tiny(2);
        let model = ModelParams::init(cfg, 3);
        let toks = synthetic_tokens(17, cfg.vocab, 5);
        let serial = forward_backward(&model, &toks);
        let pooled = forward_backward_in(&KernelPool::new(3), &model, &toks);
        assert_eq!(serial.loss.to_bits(), pooled.loss.to_bits());
        assert!(serial.grads.max_abs_diff(&pooled.grads) == 0.0);
    }

    #[test]
    fn batch_grads_average_samples() {
        let cfg = TransformerConfig::tiny(1);
        let model = ModelParams::init(cfg, 3);
        let a = synthetic_tokens(9, cfg.vocab, 1);
        let b = synthetic_tokens(9, cfg.vocab, 2);
        let ga = forward_backward(&model, &a);
        let gb = forward_backward(&model, &b);
        let batch = batch_forward_backward(&model, &[a, b]);
        let mut manual = ModelGrads::zeros(&model);
        add_grads(&mut manual, &ga.grads, 0.5);
        add_grads(&mut manual, &gb.grads, 0.5);
        assert!(batch.grads.max_abs_diff(&manual) < 1e-5);
    }
}
