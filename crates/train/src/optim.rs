//! Optimizers: plain SGD and Adam.

use mepipe_tensor::Tensor;

use crate::params::{LayerParams, ModelParams};

/// Plain SGD: `w ← w − lr · g`.
#[derive(Debug, Clone, Copy)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
}

impl Sgd {
    /// Applies one step to a tensor.
    pub fn step_tensor(&self, w: &mut Tensor, g: &Tensor) {
        for (a, b) in w.data_mut().iter_mut().zip(g.data()) {
            *a -= self.lr * b;
        }
    }

    /// Applies one step to a layer.
    pub fn step_layer(&self, p: &mut LayerParams, g: &LayerParams) {
        p.for_each_with(g, |w, gr| {
            for (a, b) in w.data_mut().iter_mut().zip(gr.data()) {
                *a -= self.lr * b;
            }
        });
    }

    /// Applies one step to the full model given grads of the same shape.
    pub fn step_model(&self, m: &mut ModelParams, g: &ModelGrads) {
        self.step_tensor(&mut m.embedding, &g.embedding);
        for (lp, lg) in m.layers.iter_mut().zip(&g.layers) {
            self.step_layer(lp, lg);
        }
        self.step_tensor(&mut m.final_norm, &g.final_norm);
        self.step_tensor(&mut m.head, &g.head);
    }
}

/// Adam state and step for one tensor collection (kept simple: one `m`/`v`
/// pair per tensor, bias correction included).
#[derive(Debug, Clone)]
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Epsilon.
    pub eps: f32,
    step: u64,
    m: Vec<Vec<f32>>,
    v: Vec<Vec<f32>>,
}

impl Adam {
    /// Fresh Adam state for `num_tensors` parameter tensors.
    pub fn new(lr: f32, num_tensors: usize) -> Self {
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            step: 0,
            m: vec![Vec::new(); num_tensors],
            v: vec![Vec::new(); num_tensors],
        }
    }

    /// Advances the shared step counter (call once per iteration, before
    /// the per-tensor updates).
    pub fn begin_step(&mut self) {
        self.step += 1;
    }

    /// Updates tensor `idx` with gradient `g`.
    ///
    /// # Panics
    ///
    /// Panics if `begin_step` was never called or `idx` is out of range.
    pub fn step_tensor(&mut self, idx: usize, w: &mut Tensor, g: &Tensor) {
        assert!(self.step > 0, "call begin_step first");
        let m = &mut self.m[idx];
        let v = &mut self.v[idx];
        if m.is_empty() {
            m.resize(w.len(), 0.0);
            v.resize(w.len(), 0.0);
        }
        let bc1 = 1.0 - self.beta1.powi(self.step as i32);
        let bc2 = 1.0 - self.beta2.powi(self.step as i32);
        for ((wv, gv), (mv, vv)) in w
            .data_mut()
            .iter_mut()
            .zip(g.data())
            .zip(m.iter_mut().zip(v.iter_mut()))
        {
            *mv = self.beta1 * *mv + (1.0 - self.beta1) * gv;
            *vv = self.beta2 * *vv + (1.0 - self.beta2) * gv * gv;
            let mhat = *mv / bc1;
            let vhat = *vv / bc2;
            *wv -= self.lr * mhat / (vhat.sqrt() + self.eps);
        }
    }
}

/// Gradients matching a [`ModelParams`] layout.
#[derive(Debug, Clone)]
pub struct ModelGrads {
    /// Embedding gradient.
    pub embedding: Tensor,
    /// Per-layer gradients.
    pub layers: Vec<LayerParams>,
    /// Final-norm gradient.
    pub final_norm: Tensor,
    /// Head gradient.
    pub head: Tensor,
}

impl ModelGrads {
    /// Zeroed gradients for a model.
    pub fn zeros(model: &ModelParams) -> Self {
        Self {
            embedding: Tensor::zeros(model.embedding.rows(), model.embedding.cols()),
            layers: model.layers.iter().map(LayerParams::zero_grads).collect(),
            final_norm: Tensor::zeros(1, model.final_norm.cols()),
            head: Tensor::zeros(model.head.rows(), model.head.cols()),
        }
    }

    /// Scales every gradient in place — e.g. the `1/replicas` averaging
    /// step of data parallelism.
    pub fn scale(&mut self, s: f32) {
        self.embedding.scale(s);
        for l in &mut self.layers {
            l.for_each(|t| t.scale(s));
        }
        self.final_norm.scale(s);
        self.head.scale(s);
    }

    /// Maximum absolute difference to another gradient set.
    pub fn max_abs_diff(&self, other: &ModelGrads) -> f32 {
        let mut d = self.embedding.max_abs_diff(&other.embedding);
        for (a, b) in self.layers.iter().zip(&other.layers) {
            d = d.max(a.max_abs_diff(b));
        }
        d = d.max(self.final_norm.max_abs_diff(&other.final_norm));
        d.max(self.head.max_abs_diff(&other.head))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mepipe_model::config::TransformerConfig;

    #[test]
    fn sgd_moves_against_gradient() {
        let mut w = Tensor::from_vec(1, 2, vec![1.0, -1.0]);
        let g = Tensor::from_vec(1, 2, vec![0.5, -0.5]);
        Sgd { lr: 0.1 }.step_tensor(&mut w, &g);
        assert_eq!(w.data(), &[0.95, -0.95]);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        // Minimise (w - 3)^2 with Adam.
        let mut w = Tensor::from_vec(1, 1, vec![0.0]);
        let mut adam = Adam::new(0.1, 1);
        for _ in 0..500 {
            adam.begin_step();
            let g = Tensor::from_vec(1, 1, vec![2.0 * (w.at(0, 0) - 3.0)]);
            adam.step_tensor(0, &mut w, &g);
        }
        assert!((w.at(0, 0) - 3.0).abs() < 0.05, "w = {}", w.at(0, 0));
    }

    #[test]
    fn model_grads_shapes_match() {
        let m = ModelParams::init(TransformerConfig::tiny(2), 1);
        let g = ModelGrads::zeros(&m);
        assert_eq!(g.layers.len(), 2);
        assert_eq!(g.head.rows(), m.head.rows());
        assert_eq!(g.max_abs_diff(&ModelGrads::zeros(&m)), 0.0);
    }
}
