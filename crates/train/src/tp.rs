//! Megatron-style tensor parallelism on real tensors (Section 2.2).
//!
//! TP shards each layer's weights: the attention/MLP input projections
//! column-wise (each shard owns whole heads / whole FFN columns) and the
//! output projections row-wise, so one all-reduce per block recovers the
//! full result. The paper *excludes* TP from its 4090 evaluation — the
//! per-layer all-reduce volume (Table 2's `+++++`) is hopeless without
//! NVLink — but it is one of the background strategies, so the sharding
//! math is implemented and verified here, and the comm volume it implies
//! is priced by `mepipe-model::comm`.

use mepipe_tensor::{ops::matmul, Tensor};

/// Splits a weight `[in, out]` column-wise into `shards` equal parts.
///
/// # Panics
///
/// Panics if the column count does not divide.
pub fn split_columns(w: &Tensor, shards: usize) -> Vec<Tensor> {
    assert_eq!(w.cols() % shards, 0, "columns must divide across shards");
    let step = w.cols() / shards;
    (0..shards).map(|r| w.slice_cols(r * step, step)).collect()
}

/// Splits a weight `[in, out]` row-wise into `shards` equal parts.
///
/// # Panics
///
/// Panics if the row count does not divide.
pub fn split_rows(w: &Tensor, shards: usize) -> Vec<Tensor> {
    assert_eq!(w.rows() % shards, 0, "rows must divide across shards");
    let step = w.rows() / shards;
    (0..shards).map(|r| w.slice_rows(r * step, step)).collect()
}

/// A column-parallel followed by row-parallel pair of GEMMs — the Megatron
/// block pattern (`Y = f(X·A)·B` with A column-split and B row-split).
/// Each shard computes `(X · A_r) · B_r`; the all-reduce sums the partial
/// outputs. Returns the reduced result.
pub fn column_row_parallel(
    x: &Tensor,
    a: &Tensor,
    b: &Tensor,
    shards: usize,
    activation: impl Fn(&Tensor) -> Tensor,
) -> Tensor {
    let a_shards = split_columns(a, shards);
    let b_shards = split_rows(b, shards);
    let mut out: Option<Tensor> = None;
    for (ar, br) in a_shards.iter().zip(&b_shards) {
        let h = activation(&matmul(x, ar));
        let partial = matmul(&h, br);
        // The all-reduce.
        out = Some(match out {
            None => partial,
            Some(mut acc) => {
                acc.add_assign(&partial);
                acc
            }
        });
    }
    out.expect("at least one shard")
}

/// Bytes each worker sends per [`column_row_parallel`] invocation under a
/// ring all-reduce: `2(n−1)/n` of the fp32 output payload.
pub fn allreduce_bytes(rows: usize, cols: usize, shards: usize) -> f64 {
    if shards <= 1 {
        return 0.0;
    }
    let payload = (rows * cols * std::mem::size_of::<f32>()) as f64;
    2.0 * (shards as f64 - 1.0) / shards as f64 * payload
}

#[cfg(test)]
mod tests {
    use super::*;
    use mepipe_tensor::init::{rng, uniform};
    use mepipe_tensor::ops::silu;

    #[test]
    fn sharded_identity_activation_matches_dense() {
        let mut r = rng(71);
        let x = uniform(6, 8, 1.0, &mut r);
        let a = uniform(8, 16, 1.0, &mut r);
        let b = uniform(16, 8, 1.0, &mut r);
        let dense = matmul(&matmul(&x, &a), &b);
        for shards in [1usize, 2, 4] {
            let tp = column_row_parallel(&x, &a, &b, shards, |t| t.clone());
            assert!(
                dense.max_abs_diff(&tp) < 1e-4,
                "shards = {shards}: diff {}",
                dense.max_abs_diff(&tp)
            );
        }
    }

    #[test]
    fn elementwise_activation_commutes_with_column_split() {
        // The Megatron insight: an elementwise nonlinearity between the
        // column-split and row-split GEMMs needs no communication.
        let mut r = rng(72);
        let x = uniform(4, 8, 1.0, &mut r);
        let a = uniform(8, 16, 1.0, &mut r);
        let b = uniform(16, 8, 1.0, &mut r);
        let dense = matmul(&silu(&matmul(&x, &a)), &b);
        let tp = column_row_parallel(&x, &a, &b, 4, silu);
        assert!(
            dense.max_abs_diff(&tp) < 1e-4,
            "diff {}",
            dense.max_abs_diff(&tp)
        );
    }

    #[test]
    fn splits_reassemble() {
        let mut r = rng(73);
        let w = uniform(8, 12, 1.0, &mut r);
        let cols = split_columns(&w, 4);
        for (i, shard) in cols.iter().enumerate() {
            assert_eq!(shard.cols(), 3);
            assert_eq!(shard.at(2, 1), w.at(2, i * 3 + 1));
        }
        let rows = split_rows(&w, 2);
        assert_eq!(Tensor::vstack(&rows), w);
    }

    #[test]
    fn allreduce_volume_matches_ring_formula() {
        assert_eq!(allreduce_bytes(10, 10, 1), 0.0);
        let b2 = allreduce_bytes(10, 10, 2);
        let b4 = allreduce_bytes(10, 10, 4);
        assert!((b2 - 400.0).abs() < 1e-9); // 2·(1/2)·400 bytes.
        assert!(b4 > b2); // (n-1)/n grows with n.
    }

    #[test]
    #[should_panic(expected = "columns must divide")]
    fn indivisible_split_panics() {
        split_columns(&Tensor::zeros(4, 10), 3);
    }
}
