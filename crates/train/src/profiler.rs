//! The profiler: measures real per-op compute times and memory on the CPU
//! substrate and packages them as a simulator cost model.
//!
//! The paper's implementation has three components (Section 6): "(1) a
//! profiler that measures the computation time and memory consumption for
//! each forward and backward pass; (2) an SVPP scheduler ...; (3) an
//! execution engine". This module is component (1): it runs each slice's
//! forward, input-gradient and weight-gradient passes standalone on one
//! model chunk, takes the fastest of several trials (standard
//! noise-rejection for wall-clock profiling), and measures the retained
//! activation bytes exactly. The result implements
//! [`mepipe_sim::SimCost`], closing the loop: profile → schedule →
//! simulate → execute on the same numbers.

use std::time::Instant;

use mepipe_schedule::ir::{Op, OpKind};
use mepipe_sim::SimCost;
use mepipe_tensor::{init, KernelPool, Tensor, TensorArena};

use crate::{
    layer::{apply_wgrads, backward_input_slice, forward_slice, Kv},
    params::ModelParams,
};

/// Measured per-slice costs of one pipeline chunk.
#[derive(Debug, Clone)]
pub struct ProfiledCosts {
    /// Forward time per slice index, seconds.
    pub forward: Vec<f64>,
    /// Input-gradient backward time per slice index, seconds.
    pub backward_input: Vec<f64>,
    /// Weight-gradient time (slice-independent — dense GEMMs only).
    pub wgrad: f64,
    /// Weight-gradient GEMMs per unit.
    pub wgrad_units: usize,
    /// Bytes retained per in-flight forward unit.
    pub activation_bytes: f64,
    /// Extra bytes retained per unit with deferred weight work.
    pub deferred_bytes: f64,
    /// Boundary tensor bytes (per inter-stage transfer).
    pub boundary_bytes: usize,
    /// Assumed transfer time per hop, seconds (configurable by caller).
    pub transfer_time: f64,
}

/// Profiles one chunk of `layers_per_chunk` layers at slice granularity
/// with single-threaded kernels.
///
/// # Panics
///
/// Panics if the model has fewer layers than `layers_per_chunk` or the
/// sequence does not divide into `slices`.
pub fn profile_chunk(
    model: &ModelParams,
    layers_per_chunk: usize,
    slices: usize,
    trials: usize,
) -> ProfiledCosts {
    profile_chunk_in(
        KernelPool::shared_serial(),
        model,
        layers_per_chunk,
        slices,
        trials,
    )
}

/// [`profile_chunk`] with the kernels on `pool` — profile with the same
/// pool the runtime will execute with, so the simulator's cost model
/// reflects kernel-level parallelism.
///
/// # Panics
///
/// Panics if the model has fewer layers than `layers_per_chunk` or the
/// sequence does not divide into `slices`.
pub fn profile_chunk_in(
    pool: &KernelPool,
    model: &ModelParams,
    layers_per_chunk: usize,
    slices: usize,
    trials: usize,
) -> ProfiledCosts {
    let cfg = &model.cfg;
    assert!(
        layers_per_chunk <= model.cfg.layers,
        "chunk larger than model"
    );
    assert_eq!(cfg.seq_len % slices, 0, "slices must divide the sequence");
    assert!(trials > 0, "need at least one trial");
    let ts = cfg.seq_len / slices;
    let mut rng = init::rng(0xC0FFEE);
    // Trials reuse the same shapes, so a local arena makes every trial
    // after the first allocation-free — matching how the runtime itself
    // executes, which is what the profiled times should reflect.
    let mut arena = TensorArena::new();
    let _arena_scope = arena.install();

    let mut forward = vec![f64::INFINITY; slices];
    let mut backward_input = vec![f64::INFINITY; slices];
    let mut wgrad = f64::INFINITY;
    let mut activation_bytes = 0.0f64;

    for _ in 0..trials {
        // Fresh caches per trial; slices must run in order for the KV
        // prefixes to exist.
        let mut kvs: Vec<Kv> = (0..layers_per_chunk).map(|_| Kv::default()).collect();
        let mut saves: Vec<Vec<crate::layer::LayerFwdSaved>> = Vec::new();
        let mut inputs: Vec<Tensor> = Vec::new();
        for (sl, slot) in forward.iter_mut().enumerate() {
            let x = init::uniform(ts, cfg.hidden, 1.0, &mut rng);
            let t0 = Instant::now();
            let mut cur = x.clone();
            let mut per_layer = Vec::with_capacity(layers_per_chunk);
            for (li, kv) in kvs.iter_mut().enumerate() {
                let (y, sv) = forward_slice(pool, &model.layers[li], &cur, kv, sl * ts, cfg.heads);
                per_layer.push(sv);
                cur = y;
            }
            *slot = slot.min(t0.elapsed().as_secs_f64());
            activation_bytes = activation_bytes
                .max(per_layer.iter().map(|s| s.bytes()).sum::<usize>() as f64 + x.bytes() as f64);
            saves.push(per_layer);
            inputs.push(x);
        }
        // Backwards in reverse slice order, timing Bi and W separately.
        let mut dkvs: Vec<Kv> = (0..layers_per_chunk).map(|_| Kv::default()).collect();
        for sl in (0..slices).rev() {
            let dy = init::uniform(ts, cfg.hidden, 1.0, &mut rng);
            let mut gemms = Vec::new();
            let t0 = Instant::now();
            let mut cur = dy;
            for li in (0..layers_per_chunk).rev() {
                let out = backward_input_slice(
                    pool,
                    &model.layers[li],
                    &saves[sl][li],
                    &kvs[li],
                    &mut dkvs[li],
                    &cur,
                );
                cur = out.dx;
                gemms.push((li, out.wgrads));
            }
            backward_input[sl] = backward_input[sl].min(t0.elapsed().as_secs_f64());
            let t1 = Instant::now();
            let mut grads: Vec<_> = model.layers[..layers_per_chunk]
                .iter()
                .map(|l| l.zero_grads())
                .collect();
            for (li, g) in &gemms {
                apply_wgrads(pool, &mut grads[*li], g);
            }
            wgrad = wgrad.min(t1.elapsed().as_secs_f64());
        }
    }

    let boundary_bytes = ts * cfg.hidden * std::mem::size_of::<f32>();
    ProfiledCosts {
        forward,
        backward_input,
        wgrad,
        wgrad_units: 7 * layers_per_chunk,
        activation_bytes,
        deferred_bytes: 2.0 * (ts * cfg.hidden * std::mem::size_of::<f32>()) as f64,
        boundary_bytes,
        transfer_time: 0.0,
    }
}

impl SimCost for ProfiledCosts {
    fn duration(&self, _stage: usize, op: Op) -> f64 {
        match op.kind {
            OpKind::Forward => self.forward[op.slice],
            OpKind::BackwardInput => self.backward_input[op.slice],
            OpKind::Backward => self.backward_input[op.slice] + self.wgrad,
            OpKind::BackwardWeight => self.wgrad,
        }
    }

    fn transfer_time(&self, _from: usize, _to: usize) -> f64 {
        self.transfer_time
    }

    fn wgrad_time(&self, _stage: usize, _op: Op) -> f64 {
        self.wgrad
    }

    fn wgrad_units(&self) -> usize {
        self.wgrad_units
    }

    fn activation_bytes(&self) -> f64 {
        self.activation_bytes
    }

    fn deferred_bytes(&self) -> f64 {
        self.deferred_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mepipe_core::svpp::Mepipe;
    use mepipe_model::config::TransformerConfig;
    use mepipe_schedule::generator::{Dims, ScheduleGenerator};
    use mepipe_sim::engine::{simulate, SimConfig};

    fn profiled() -> ProfiledCosts {
        let cfg = TransformerConfig {
            seq_len: 256,
            ..TransformerConfig::tiny(2)
        };
        let model = ModelParams::init(cfg, 5);
        profile_chunk(&model, 2, 4, 3)
    }

    #[test]
    fn profile_measures_the_slice_imbalance() {
        // The attention prefix grows with the slice index, so the *real*
        // measured time of the last slice exceeds the first — the very
        // imbalance Section 5's scheduling absorbs.
        let p = profiled();
        assert_eq!(p.forward.len(), 4);
        assert!(p.forward.iter().all(|&t| t > 0.0));
        assert!(
            p.forward[3] > p.forward[0],
            "slice 3 ({}) should cost more than slice 0 ({})",
            p.forward[3],
            p.forward[0]
        );
        assert!(p.backward_input[3] > p.backward_input[0]);
    }

    #[test]
    fn wgrad_is_cheaper_than_backward() {
        let p = profiled();
        assert!(p.wgrad > 0.0);
        assert!(p.wgrad < p.backward_input[3] * 1.5);
    }

    #[test]
    fn profiled_costs_drive_the_simulator() {
        let p = profiled();
        let sch = Mepipe::new().generate(&Dims::new(2, 4).slices(4)).unwrap();
        let r = simulate(
            &sch,
            &p,
            &SimConfig {
                dynamic_wgrad: true,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(r.makespan > 0.0);
        assert!(r.bubble_ratio() < 0.9);
        assert!(r.peak_activation_bytes[0] > 0.0);
    }

    #[test]
    #[should_panic(expected = "slices must divide")]
    fn bad_slice_count_panics() {
        let cfg = TransformerConfig {
            seq_len: 250,
            ..TransformerConfig::tiny(2)
        };
        let model = ModelParams::init(cfg, 5);
        profile_chunk(&model, 2, 4, 1);
    }
}
