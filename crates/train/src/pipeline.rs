//! The threaded pipeline runtime: one OS thread per stage, a pluggable
//! `mepipe-comm` transport as the interconnect, executing the schedule
//! IR on real tensors.
//!
//! Workers follow their schedule lists exactly as the simulator assumes:
//! a forward op blocks until its input activation arrives from the
//! previous global chunk position, a backward op blocks until the output
//! gradient arrives from the next one. Three weight-gradient modes mirror
//! the paper's design space:
//!
//! * [`WgradMode::Immediate`] — fused backward (DAPPLE-style);
//! * [`WgradMode::AtWeightOp`] — split backward, W executed at its static
//!   list position (zero-bubble w/o dynamic scheduling, Figure 11);
//! * [`WgradMode::DrainOnWait`] — split backward, W GEMMs drained one at a
//!   time *while blocked on the interconnect* (MEPipe's fine-grained
//!   weight-gradient computation, Figure 12).
//!
//! Every byte of saved activation, KV cache, dKV buffer and retained
//! weight-gradient operand is charged to a per-stage [`MemTracker`], so
//! peak-memory claims are measured on live tensors.
//!
//! Each stage thread additionally installs a per-stage
//! [`TensorArena`] for the duration of the run: every activation, saved
//! state and scratch buffer a stage allocates is recycled on a
//! shape-keyed free list, and the warmed arenas persist in the runtime
//! between iterations, so steady-state iterations perform (near-)zero
//! heap allocation. Recycled buffers are re-zeroed on reuse, so pooled
//! runs are bit-identical to fresh-allocation runs
//! ([`PipelineRuntime::with_arena`] turns pooling off for comparison).
//!
//! Stage-to-stage messaging goes through `mepipe-comm`'s
//! [`Endpoint`] abstraction, selected by a [`TransportConfig`]
//! ([`PipelineRuntime::with_transport`]): bounded in-process queues by
//! default (credits sized from the schedule's peak in-flight message
//! count), Unix-domain/TCP sockets so each stage can be its own OS
//! process (see the `mepipe-worker` binary), and an emulated layer that
//! adds link timing and seeded fault injection on top of either. All
//! transport failures — a dead peer, exhausted retransmissions,
//! backpressure deadlines — surface as a typed [`CommError`] from
//! [`PipelineRuntime::run_iteration`] instead of the old
//! `expect("channel closed")` panics, and the delivered bytes are
//! bit-identical across backends, so the loss and gradients of a run do
//! not depend on which interconnect carried it.

use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Mutex};

use mepipe_comm::{
    build_transport, CommError, CommStats, Endpoint, MsgKind, StageMsg, TransportConfig,
};
use mepipe_schedule::ir::{OpKind, Schedule};
use mepipe_schedule::validate::peak_in_flight;
use mepipe_tensor::{
    ops::{
        cross_entropy_in, embedding, embedding_backward, matmul_dgrad_in, matmul_in,
        matmul_wgrad_in, rmsnorm_backward_in, rmsnorm_in,
    },
    ArenaStats, KernelPool, Tensor, TensorArena,
};
use mepipe_trace::{
    ClockAnchor, IterationTrace, SpanKind, StageTrace, StageTracer, DEFAULT_RING_CAPACITY, NO_TAG,
};

use crate::{
    layer::{apply_wgrads, backward_input_slice, forward_slice, Kv, LayerFwdSaved, WgradGemm},
    memtrack::{MemError, MemTracker},
    optim::{ModelGrads, Sgd},
    params::ModelParams,
    reference::add_grads,
};

/// When weight-gradient GEMMs execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WgradMode {
    /// Apply weight gradients inside the backward op (fused schedules).
    Immediate,
    /// Apply them at the schedule's `W` op positions (static split).
    AtWeightOp,
    /// Apply them opportunistically while waiting on the interconnect,
    /// finishing leftovers at `W` op positions (MEPipe, Section 5).
    DrainOnWait,
}

/// Result of one pipelined iteration.
#[derive(Debug, Clone)]
pub struct RunStats {
    /// Mean next-token cross-entropy over the whole batch.
    pub loss: f64,
    /// Accumulated model gradients (already scaled like the reference).
    pub grads: ModelGrads,
    /// Peak live activation bytes per stage.
    pub peak_bytes: Vec<usize>,
    /// Weight-gradient GEMMs drained while waiting, per stage.
    pub drained_wgrads: Vec<usize>,
    /// First stage that exceeded the memory cap: the typed verdict
    /// (stage, live bytes, cap) the paper's OOM table cells reduce to.
    pub oom: Option<MemError>,
    /// Per-stage tensor-arena counters for this run (all zero when
    /// pooling is disabled). On the second and later iterations of a
    /// runtime the hit rate approaches 1: the steady state allocates
    /// (near-)nothing.
    pub arena: Vec<ArenaStats>,
    /// Per-stage transport counters: bytes, messages, serialize time,
    /// stalls, retries and injected faults (see [`CommStats`]).
    pub comm: Vec<CommStats>,
    /// Wall-clock seconds each stage spent computing (F/B/W plus drained
    /// weight GEMMs), measured from a shared [`ClockAnchor`] whether or
    /// not span tracing is enabled. Under data parallelism, summed across
    /// replicas.
    pub busy_seconds: Vec<f64>,
    /// Wall-clock seconds each stage spent not computing (receive waits,
    /// send stalls, scheduling gaps), over the stage's run window. Under
    /// data parallelism, summed across replicas.
    pub idle_seconds: Vec<f64>,
    /// Recorded spans for every stage ([`PipelineRuntime::with_tracing`]);
    /// `None` when tracing is off.
    pub trace: Option<IterationTrace>,
}

/// Result of running a single stage of a schedule (the unit a
/// multi-process worker contributes; [`PipelineRuntime::run_stage`]).
#[derive(Debug)]
pub struct StageRunStats {
    /// This stage's share of the loss sum (the full loss is the sum of
    /// every stage's share, added in stage order).
    pub loss_sum: f64,
    /// Gradients for the layers this stage owns (zero elsewhere).
    pub grads: ModelGrads,
    /// Peak live activation bytes on this stage.
    pub peak_bytes: usize,
    /// Weight-gradient GEMMs drained while waiting.
    pub drained: usize,
    /// The cap-exceeded verdict, if the stage went over its budget.
    pub oom: Option<MemError>,
    /// Transport counters for this stage's endpoint.
    pub comm: CommStats,
    /// Arena counters for this stage (zero when pooling is off).
    pub arena: ArenaStats,
    /// Wall-clock seconds this stage spent computing.
    pub busy_seconds: f64,
    /// Wall-clock seconds this stage spent not computing.
    pub idle_seconds: f64,
    /// This stage's recorded spans; `None` when tracing is off.
    pub trace: Option<StageTrace>,
}

/// A model plus the pipeline shape needed to run schedules against it.
pub struct PipelineRuntime {
    /// The model (shared read-only across stage threads during a run).
    pub model: ModelParams,
    stages: usize,
    virtual_chunks: usize,
    kernel_workers: usize,
    pooled: bool,
    tracing: bool,
    transport: TransportConfig,
    /// Warmed per-stage arena sets, handed out at iteration start and
    /// returned at the end. Stage threads die with each `run_iteration`
    /// (scoped spawn), so the free lists must live here to survive into
    /// the next iteration; the lock is touched twice per iteration, never
    /// on the per-tensor hot path. Holds one set per concurrently running
    /// replica under data parallelism.
    arena_bank: Mutex<Vec<Vec<TensorArena>>>,
}

impl PipelineRuntime {
    /// Creates a runtime for `stages × virtual_chunks` interleaved chunks.
    ///
    /// Each stage thread gets its own [`KernelPool`] sized
    /// `available_parallelism / stages` (at least 1), so kernel-level and
    /// stage-level parallelism compose without oversubscribing the
    /// machine. Override with [`Self::with_kernel_workers`].
    ///
    /// # Panics
    ///
    /// Panics if the layer count is not divisible by the stage count.
    /// (The full block-count divisibility check happens per schedule in
    /// `run_iteration`, because the block count depends on the placement:
    /// `p·v` blocks for interleaved chunks, `p` for bidirectional ones,
    /// where the two chunks per stage are replicas of the same blocks.)
    pub fn new(model: ModelParams, stages: usize, virtual_chunks: usize) -> Self {
        assert_eq!(
            model.cfg.layers % stages,
            0,
            "layers must divide evenly across stages"
        );
        let kernel_workers = KernelPool::auto(stages).workers();
        Self {
            model,
            stages,
            virtual_chunks,
            kernel_workers,
            pooled: true,
            tracing: false,
            transport: TransportConfig::in_proc(),
            arena_bank: Mutex::new(Vec::new()),
        }
    }

    /// Selects the stage-to-stage transport (in-process bounded queues by
    /// default). Delivered content is bit-identical across backends, so
    /// this changes failure/timing behaviour and observability, never
    /// results.
    #[must_use]
    pub fn with_transport(mut self, transport: TransportConfig) -> Self {
        self.transport = transport;
        self
    }

    /// The configured transport.
    pub fn transport(&self) -> &TransportConfig {
        &self.transport
    }

    /// Overrides the per-stage kernel worker count (clamped to at least
    /// 1). The kernels are deterministic across worker counts, so this
    /// only changes speed, never results.
    #[must_use]
    pub fn with_kernel_workers(mut self, workers: usize) -> Self {
        self.kernel_workers = workers.max(1);
        self
    }

    /// Enables or disables per-stage tensor-arena pooling (on by
    /// default). Pooled buffers are re-zeroed on reuse, so this only
    /// changes allocation behaviour, never results.
    #[must_use]
    pub fn with_arena(mut self, pooled: bool) -> Self {
        self.pooled = pooled;
        self
    }

    /// Whether stage threads pool tensor buffers in per-stage arenas.
    pub fn pooled(&self) -> bool {
        self.pooled
    }

    /// Enables or disables measured span tracing (off by default). When
    /// on, each stage records every op, send and receive wait into a
    /// preallocated ring buffer, returned as `RunStats::trace`. Timing
    /// calls never touch the math, so traced runs stay bit-identical to
    /// untraced ones (the `train` bench bounds the time overhead).
    #[must_use]
    pub fn with_tracing(mut self, enabled: bool) -> Self {
        self.tracing = enabled;
        self
    }

    /// Whether stages record measured spans.
    pub fn tracing(&self) -> bool {
        self.tracing
    }

    /// Kernel workers each stage thread fans out over.
    pub fn kernel_workers(&self) -> usize {
        self.kernel_workers
    }

    fn check_shapes(&self, schedule: &Schedule, batch: &[Vec<usize>]) {
        let meta = &schedule.meta;
        assert_eq!(meta.stages, self.stages, "stage mismatch");
        assert_eq!(meta.virtual_chunks, self.virtual_chunks, "chunk mismatch");
        assert_eq!(
            self.model.cfg.layers % meta.model_blocks(),
            0,
            "layers must divide evenly into the schedule's model blocks"
        );
        assert_eq!(meta.micro_batches, batch.len(), "batch size mismatch");
        let seq = self.model.cfg.seq_len;
        for s in batch {
            assert_eq!(s.len(), seq + 1, "each sample needs seq_len + 1 tokens");
        }
        assert_eq!(seq % meta.slices, 0, "slices must divide the sequence");
    }

    /// Per-link credit capacity for a schedule: twice the worst stage's
    /// peak in-flight message count plus slack, so a correct schedule
    /// never deadlocks on flow control while a runaway sender still
    /// blocks (and eventually fails with [`CommError::Backpressure`]).
    fn default_capacity(schedule: &Schedule) -> usize {
        peak_in_flight(schedule).into_iter().max().unwrap_or(1) * 2 + 2
    }

    /// Runs one training iteration under `schedule` and returns loss,
    /// gradients and memory statistics. `batch[mb]` must hold
    /// `seq_len + 1` token ids. The model is not mutated; apply an
    /// optimizer step with the returned gradients.
    ///
    /// # Errors
    ///
    /// Returns the root-cause [`CommError`] if any stage's transport
    /// fails (peer death, retransmission timeout, backpressure
    /// deadline). The remaining stages shut down promptly: an endpoint
    /// dropped on the error path signals every blocked peer.
    ///
    /// # Panics
    ///
    /// Panics if the schedule shape disagrees with the runtime or batch.
    pub fn run_iteration(
        &self,
        schedule: &Schedule,
        batch: &[Vec<usize>],
        mode: WgradMode,
        mem_cap: Option<usize>,
    ) -> Result<RunStats, CommError> {
        self.check_shapes(schedule, batch);
        let p = self.stages;
        let transport = build_transport(&self.transport, p, Self::default_capacity(schedule))?;
        let batch = Arc::new(batch.to_vec());
        let model = &self.model;

        let kernel_workers = self.kernel_workers;
        // One anchor for all stage threads of this run: their spans and
        // busy/idle counters share a time axis (and an epoch position,
        // for merging with other processes' traces).
        let anchor = ClockAnchor::now();
        let tracing = self.tracing;
        // Check a warmed arena set out of the bank (or start cold). Under
        // concurrent DP replicas each run pops its own set; the bank
        // grows to one set per concurrently running replica.
        let arenas: Vec<Option<TensorArena>> = if self.pooled {
            let popped = self.arena_bank.lock().expect("arena bank poisoned").pop();
            match popped {
                Some(set) => set.into_iter().map(Some).collect(),
                None => (0..p).map(|_| Some(TensorArena::new())).collect(),
            }
        } else {
            (0..p).map(|_| None).collect()
        };
        let mut results: Vec<Option<Result<WorkerOut, CommError>>> = (0..p).map(|_| None).collect();
        let mut arena_stats = vec![ArenaStats::default(); p];
        let mut warm: Vec<TensorArena> = Vec::with_capacity(p);
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for (w, mut arena) in arenas.into_iter().enumerate() {
                let batch = Arc::clone(&batch);
                let ops = &schedule.workers[w];
                let meta = &schedule.meta;
                let transport = transport.as_ref();
                handles.push(scope.spawn(move || {
                    let before = arena
                        .as_ref()
                        .map_or_else(ArenaStats::default, |a| a.stats());
                    let out = {
                        // Installed for the whole run of this stage: every
                        // tensor the ops below create or drop on this
                        // thread goes through the stage's free lists.
                        let _arena_scope = arena.as_mut().map(|a| a.install());
                        // Claim the endpoint on the stage thread: the
                        // socket backend's mesh rendezvous needs every
                        // stage connecting concurrently.
                        transport.endpoint(w).and_then(|ep| {
                            let mut ctx = WorkerCtx::new(
                                model,
                                meta,
                                w,
                                ep,
                                batch,
                                mode,
                                mem_cap,
                                kernel_workers,
                                anchor,
                                tracing,
                            );
                            for op in ops {
                                // An error drops ctx (and its endpoint)
                                // right here, signalling every peer.
                                ctx.execute(op)?;
                            }
                            Ok(ctx.finish())
                        })
                    };
                    let stats = arena
                        .as_ref()
                        .map_or_else(ArenaStats::default, |a| a.stats())
                        .since(&before);
                    (out, arena, stats)
                }));
            }
            for (w, h) in handles.into_iter().enumerate() {
                let (out, arena, stats) = h.join().expect("stage thread panicked");
                results[w] = Some(out);
                arena_stats[w] = stats;
                if let Some(a) = arena {
                    warm.push(a);
                }
            }
        });
        if self.pooled {
            self.arena_bank
                .lock()
                .expect("arena bank poisoned")
                .push(warm);
        }

        // Merge per-worker results. On failure, report the root cause: a
        // stage that timed out or hit backpressure, not the `Closed`
        // cascade its death triggered on the other stages.
        let mut first_err: Option<CommError> = None;
        let mut outs: Vec<Option<WorkerOut>> = (0..p).map(|_| None).collect();
        for (w, out) in results.into_iter().enumerate() {
            match out.expect("worker result present") {
                Ok(o) => outs[w] = Some(o),
                Err(e) => {
                    let cascade = matches!(e, CommError::Closed { .. });
                    match &first_err {
                        None => first_err = Some(e),
                        Some(CommError::Closed { .. }) if !cascade => first_err = Some(e),
                        Some(_) => {}
                    }
                }
            }
        }
        if let Some(e) = first_err {
            return Err(e);
        }
        let mut grads = ModelGrads::zeros(model);
        let mut loss = 0.0f64;
        let mut peaks = vec![0usize; p];
        let mut drained = vec![0usize; p];
        let mut comm = Vec::with_capacity(p);
        let mut busy_seconds = vec![0.0f64; p];
        let mut idle_seconds = vec![0.0f64; p];
        let mut stage_traces = Vec::new();
        let mut oom = None;
        for (w, out) in outs.into_iter().enumerate() {
            let out = out.expect("worker result present");
            loss += out.loss_sum;
            peaks[w] = out.peak_bytes;
            drained[w] = out.drained;
            comm.push(out.comm);
            busy_seconds[w] = out.busy_ns as f64 * 1e-9;
            idle_seconds[w] = out.idle_ns as f64 * 1e-9;
            if let Some(t) = out.trace {
                stage_traces.push(t);
            }
            if oom.is_none() {
                oom = out.oom;
            }
            add_grads(&mut grads, &out.grads, 1.0);
        }
        Ok(RunStats {
            loss,
            grads,
            peak_bytes: peaks,
            drained_wgrads: drained,
            oom,
            arena: arena_stats,
            comm,
            busy_seconds,
            idle_seconds,
            trace: tracing.then_some(IterationTrace {
                stages: stage_traces,
            }),
        })
    }

    /// Runs a single stage of `schedule` against a caller-provided
    /// endpoint — the multi-process entry point used by the
    /// `mepipe-worker` binary, where each stage is its own OS process
    /// joined to its peers by a socket transport. Every process must
    /// hold an identically initialised model and batch; the returned
    /// loss share and gradients cover only the layers this stage owns.
    ///
    /// # Errors
    ///
    /// Returns a [`CommError`] if the transport fails mid-run; the
    /// endpoint is dropped without a clean close so peers fail fast too.
    ///
    /// # Panics
    ///
    /// Panics if the schedule shape disagrees with the runtime or batch.
    pub fn run_stage(
        &self,
        schedule: &Schedule,
        stage: usize,
        batch: &[Vec<usize>],
        mode: WgradMode,
        mem_cap: Option<usize>,
        ep: Box<dyn Endpoint>,
    ) -> Result<StageRunStats, CommError> {
        self.check_shapes(schedule, batch);
        assert!(stage < self.stages, "stage out of range");
        let mut arena = self.pooled.then(TensorArena::new);
        let out = {
            let _arena_scope = arena.as_mut().map(|a| a.install());
            // Per-process anchor: the epoch position it captures is what
            // lets a launcher merge this stage's trace with its peers'.
            let mut ctx = WorkerCtx::new(
                &self.model,
                &schedule.meta,
                stage,
                ep,
                Arc::new(batch.to_vec()),
                mode,
                mem_cap,
                self.kernel_workers,
                ClockAnchor::now(),
                self.tracing,
            );
            for op in &schedule.workers[stage] {
                ctx.execute(op)?;
            }
            ctx.finish()
        };
        let arena_stats = arena
            .as_ref()
            .map_or_else(ArenaStats::default, |a| a.stats());
        Ok(StageRunStats {
            loss_sum: out.loss_sum,
            grads: out.grads,
            peak_bytes: out.peak_bytes,
            drained: out.drained,
            oom: out.oom,
            comm: out.comm,
            arena: arena_stats,
            busy_seconds: out.busy_ns as f64 * 1e-9,
            idle_seconds: out.idle_ns as f64 * 1e-9,
            trace: out.trace,
        })
    }

    /// Runs one iteration under data parallelism: the batch is split
    /// across `replicas` pipeline replicas (each executing the same
    /// schedule on its shard) and gradients are averaged — the all-reduce
    /// of Section 2.2's DP, realised over replica runs. The schedule's
    /// micro-batch count must equal the per-replica shard size.
    ///
    /// Replicas execute concurrently on scoped threads (each owns its
    /// transport, stage threads and arena set), and their results are
    /// merged streamingly as each replica joins, in replica index order
    /// — the same addition order as a serial replica loop, so the
    /// output is bit-identical to one. Merging inside the join loop
    /// keeps at most one un-merged `RunStats` (a full set of model
    /// gradients) alive besides the accumulator, instead of one per
    /// replica.
    /// Replicas always use the in-process transport shape of the
    /// configured backend; socket backends would collide on their
    /// rendezvous addresses across replicas, so use `InProc` here.
    ///
    /// # Errors
    ///
    /// Returns the first replica's [`CommError`] if any replica fails.
    ///
    /// # Panics
    ///
    /// Panics if the batch does not split evenly across replicas.
    pub fn run_data_parallel(
        &self,
        schedule: &Schedule,
        batch: &[Vec<usize>],
        replicas: usize,
        mode: WgradMode,
    ) -> Result<RunStats, CommError> {
        assert!(replicas > 0, "need at least one replica");
        assert_eq!(
            batch.len() % replicas,
            0,
            "batch must split evenly across replicas"
        );
        let shard = batch.len() / replicas;
        let mut out = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..replicas)
                .map(|r| {
                    let shard_batch = &batch[r * shard..(r + 1) * shard];
                    scope.spawn(move || self.run_iteration(schedule, shard_batch, mode, None))
                })
                .collect();
            // Join in index order and fold each result into the
            // accumulator immediately (an early error still joins the
            // remaining replicas — scope exit does that).
            let mut merged: Option<RunStats> = None;
            for (r, h) in handles.into_iter().enumerate() {
                let mut stats = h.join().expect("replica thread panicked")?;
                // Tag this replica's spans so merged traces keep one
                // process track per replica (`PidKey::Replica`).
                if let Some(trace) = &mut stats.trace {
                    for st in &mut trace.stages {
                        st.replica = r;
                    }
                }
                merged = Some(match merged {
                    None => stats,
                    Some(mut acc) => {
                        acc.loss += stats.loss;
                        add_grads(&mut acc.grads, &stats.grads, 1.0);
                        for (a, b) in acc.peak_bytes.iter_mut().zip(&stats.peak_bytes) {
                            *a = (*a).max(*b);
                        }
                        for (a, b) in acc.drained_wgrads.iter_mut().zip(&stats.drained_wgrads) {
                            *a += b;
                        }
                        for (a, b) in acc.arena.iter_mut().zip(&stats.arena) {
                            *a = a.merged(b);
                        }
                        for (a, b) in acc.comm.iter_mut().zip(&stats.comm) {
                            *a = a.merged(b);
                        }
                        for (a, b) in acc.busy_seconds.iter_mut().zip(&stats.busy_seconds) {
                            *a += b;
                        }
                        for (a, b) in acc.idle_seconds.iter_mut().zip(&stats.idle_seconds) {
                            *a += b;
                        }
                        if let (Some(at), Some(bt)) = (&mut acc.trace, stats.trace) {
                            at.stages.extend(bt.stages);
                        }
                        acc.oom = acc.oom.or(stats.oom);
                        acc
                    }
                });
            }
            Ok::<RunStats, CommError>(merged.expect("at least one replica ran"))
        })?;
        // Each replica normalised by its shard size; the DP average
        // divides by the replica count (gradients) and the replica count
        // (losses).
        out.loss /= replicas as f64;
        out.grads.scale(1.0 / replicas as f32);
        Ok(out)
    }

    /// Convenience: one iteration plus an SGD step.
    ///
    /// # Errors
    ///
    /// Returns a [`CommError`] if the iteration's transport fails; the
    /// model is left unmodified in that case.
    pub fn train_step(
        &mut self,
        schedule: &Schedule,
        batch: &[Vec<usize>],
        mode: WgradMode,
        lr: f32,
    ) -> Result<RunStats, CommError> {
        let stats = self.run_iteration(schedule, batch, mode, None)?;
        Sgd { lr }.step_model(&mut self.model, &stats.grads);
        Ok(stats)
    }
}

struct WorkerOut {
    loss_sum: f64,
    grads: ModelGrads,
    peak_bytes: usize,
    drained: usize,
    oom: Option<MemError>,
    comm: CommStats,
    busy_ns: u64,
    idle_ns: u64,
    trace: Option<StageTrace>,
}

struct WorkerCtx<'m> {
    model: &'m ModelParams,
    meta: mepipe_schedule::ir::ScheduleMeta,
    w: usize,
    ep: Box<dyn Endpoint>,
    batch: Arc<Vec<Vec<usize>>>,
    mode: WgradMode,
    grads: ModelGrads,
    // (mb, chunk, layer-in-chunk) KV caches and dKV accumulators.
    kvs: HashMap<(usize, usize, usize), Kv>,
    dkvs: HashMap<(usize, usize, usize), Kv>,
    // Saved activations per (mb, slice, chunk), one per local layer.
    saves: HashMap<(usize, usize, usize), (Tensor, Vec<LayerFwdSaved>)>,
    // Final hidden state per (mb, slice) on the loss-owning chunk.
    finals: HashMap<(usize, usize), Tensor>,
    // Deferred weight-gradient GEMMs: (unit key, layer global idx, gemm).
    // A FIFO: drains during waits, weight ops, and the final sweep all
    // consume from the front, so the per-layer accumulation order equals
    // the (deterministic) insertion order no matter *when* each GEMM is
    // applied — gradients stay bit-identical across backends and runs.
    pending_w: VecDeque<(usize, usize, usize, usize, WgradGemm)>,
    inbox: HashMap<(bool, usize, usize, usize), Tensor>,
    mem: MemTracker,
    oom: Option<MemError>,
    loss_sum: f64,
    drained: usize,
    tokens_per_slice: usize,
    // This stage's kernel pool — kernel-level parallelism nested inside
    // the stage thread.
    pool: KernelPool,
    // Span recorder (a disabled no-op unless tracing is on) — also the
    // clock for busy/idle accounting, which stays on in all modes.
    tracer: StageTracer,
    busy_ns: u64,
    start_ns: u64,
}

impl<'m> WorkerCtx<'m> {
    #[allow(clippy::too_many_arguments)]
    fn new(
        model: &'m ModelParams,
        meta: &mepipe_schedule::ir::ScheduleMeta,
        w: usize,
        ep: Box<dyn Endpoint>,
        batch: Arc<Vec<Vec<usize>>>,
        mode: WgradMode,
        mem_cap: Option<usize>,
        kernel_workers: usize,
        anchor: ClockAnchor,
        tracing: bool,
    ) -> Self {
        let tracer = if tracing {
            StageTracer::enabled(w, anchor, DEFAULT_RING_CAPACITY)
        } else {
            StageTracer::disabled(anchor)
        };
        let start_ns = tracer.clock_ns();
        Self {
            model,
            meta: meta.clone(),
            w,
            ep,
            batch,
            mode,
            grads: ModelGrads::zeros(model),
            kvs: HashMap::new(),
            dkvs: HashMap::new(),
            saves: HashMap::new(),
            finals: HashMap::new(),
            pending_w: VecDeque::new(),
            inbox: HashMap::new(),
            mem: MemTracker::new(w, mem_cap),
            oom: None,
            loss_sum: 0.0,
            drained: 0,
            tokens_per_slice: model.cfg.seq_len / meta.slices,
            pool: KernelPool::new(kernel_workers),
            tracer,
            busy_ns: 0,
            start_ns,
        }
    }

    /// Closes a compute span opened at `start_ns`: counts it as busy and
    /// (when tracing) records it with its op tag.
    fn note_compute(
        &mut self,
        kind: SpanKind,
        mb: usize,
        slice: usize,
        chunk: usize,
        start_ns: u64,
    ) {
        let end = self.tracer.clock_ns();
        self.busy_ns += end.saturating_sub(start_ns);
        self.tracer.record_to(
            kind,
            mb as u32,
            slice as u32,
            chunk as u32,
            NO_TAG,
            start_ns,
            end,
        );
    }

    fn layers_of_chunk(&self, chunk: usize) -> (usize, usize) {
        // The *model block* this (stage, chunk) computes — under
        // bidirectional placement the two chunks are replicas of blocks
        // `w` and `p − 1 − w`, and the model splits into `p` blocks
        // rather than `p·v`.
        let b = self.meta.block_of(self.w, chunk);
        self.model.chunk_layer_range(b, self.meta.model_blocks())
    }

    /// Blocking receive with optional W-drain while waiting.
    fn recv_tagged(
        &mut self,
        is_fwd: bool,
        mb: usize,
        slice: usize,
        g: usize,
    ) -> Result<Tensor, CommError> {
        let key = (is_fwd, mb, slice, g);
        loop {
            if let Some(t) = self.inbox.remove(&key) {
                return Ok(t);
            }
            if self.mode == WgradMode::DrainOnWait {
                match self.ep.try_recv()? {
                    Some(m) => self.stash(m),
                    None => {
                        if let Some((w_mb, w_slice, w_chunk, li, gemm)) = self.pending_w.pop_front()
                        {
                            // Drain exactly one GEMM, then re-check.
                            let t0 = self.tracer.clock_ns();
                            apply_wgrads(
                                &self.pool,
                                &mut self.grads.layers[li],
                                std::slice::from_ref(&gemm),
                            );
                            self.mem.free(gemm.bytes());
                            self.drained += 1;
                            self.note_compute(SpanKind::WgradDrain, w_mb, w_slice, w_chunk, t0);
                        } else {
                            let t0 = self.tracer.clock_ns();
                            let m = self.ep.recv()?;
                            self.tracer.record_comm(SpanKind::RecvWait, NO_TAG, t0);
                            self.stash(m);
                        }
                    }
                }
            } else {
                let t0 = self.tracer.clock_ns();
                let m = self.ep.recv()?;
                self.tracer.record_comm(SpanKind::RecvWait, NO_TAG, t0);
                self.stash(m);
            }
        }
    }

    /// Charges activation bytes, remembering the first cap violation
    /// (the runtime keeps executing so gradients stay comparable — the
    /// verdict travels as a typed [`MemError`], as in the paper's OOM
    /// table cells).
    fn charge(&mut self, bytes: usize) {
        if let Err(e) = self.mem.alloc(bytes) {
            self.oom.get_or_insert(e);
        }
    }

    fn stash(&mut self, m: StageMsg) {
        let key = (
            m.kind == MsgKind::Fwd,
            m.mb as usize,
            m.slice as usize,
            m.g as usize,
        );
        self.inbox.insert(key, m.tensor);
    }

    /// Sends a boundary tensor to the stage executing chain position `g`
    /// of micro-batch `mb` (which stage that is depends on the
    /// micro-batch's direction under bidirectional placement).
    fn send_boundary(
        &mut self,
        kind: MsgKind,
        mb: usize,
        slice: usize,
        g: usize,
        tensor: Tensor,
    ) -> Result<(), CommError> {
        let (to, _chunk) = self.meta.chain_stage_chunk(mb, g);
        let t0 = self.tracer.clock_ns();
        let out = self.ep.send(
            to,
            StageMsg {
                kind,
                mb: mb as u32,
                slice: slice as u32,
                g: g as u32,
                tensor,
            },
        );
        self.tracer.record_comm(SpanKind::Send, to as u32, t0);
        out
    }

    fn execute(&mut self, op: &mepipe_schedule::ir::Op) -> Result<(), CommError> {
        match op.kind {
            OpKind::Forward => self.forward(op.micro_batch, op.slice, op.chunk),
            OpKind::Backward => {
                self.backward(op.micro_batch, op.slice, op.chunk, SpanKind::Backward)
            }
            OpKind::BackwardInput => {
                self.backward(op.micro_batch, op.slice, op.chunk, SpanKind::BackwardInput)
            }
            OpKind::BackwardWeight => {
                self.weight_op(op.micro_batch, op.slice, op.chunk);
                Ok(())
            }
        }
    }

    fn forward(&mut self, mb: usize, slice: usize, chunk: usize) -> Result<(), CommError> {
        let g = self.meta.chain_pos(mb, self.w, chunk);
        let ts = self.tokens_per_slice;
        let offset = slice * ts;
        // The compute span opens once the input is in hand: receive waits
        // (and any drains they hid) are recorded inside recv_tagged.
        let mut c0 = self.tracer.clock_ns();
        let x = if g == 0 {
            let toks = &self.batch[mb][offset..offset + ts];
            embedding(&self.model.embedding, toks, offset)
        } else {
            let t = self.recv_tagged(true, mb, slice, g)?;
            c0 = self.tracer.clock_ns();
            t
        };
        let (lo, hi) = self.layers_of_chunk(chunk);
        let mut cur = x.clone();
        let mut saves = Vec::with_capacity(hi - lo);
        for li in lo..hi {
            let kv = self.kvs.entry((mb, chunk, li - lo)).or_default();
            let before = kv.bytes();
            let (y, sv) = forward_slice(
                &self.pool,
                &self.model.layers[li],
                &cur,
                kv,
                offset,
                self.model.cfg.heads,
            );
            let kv_delta = kv.bytes() - before;
            self.charge(sv.bytes() + kv_delta);
            saves.push(sv);
            cur = y;
        }
        self.charge(x.bytes());
        self.saves.insert((mb, slice, chunk), (x, saves));
        self.note_compute(SpanKind::Forward, mb, slice, chunk, c0);
        if g == self.meta.last_chain_pos() {
            self.charge(cur.bytes());
            self.finals.insert((mb, slice), cur);
        } else {
            self.send_boundary(MsgKind::Fwd, mb, slice, g + 1, cur)?;
        }
        Ok(())
    }

    fn backward(
        &mut self,
        mb: usize,
        slice: usize,
        chunk: usize,
        span: SpanKind,
    ) -> Result<(), CommError> {
        let g = self.meta.chain_pos(mb, self.w, chunk);
        let ts = self.tokens_per_slice;
        let offset = slice * ts;
        let n_batch = self.batch.len();
        let total_tokens = self.model.cfg.seq_len;

        // On the loss-owning stage the whole op is compute; elsewhere the
        // span opens after the output gradient arrives.
        let mut c0 = self.tracer.clock_ns();
        let mut dy = if g == self.meta.last_chain_pos() {
            // Loss path: final norm + head + cross-entropy on this slice.
            let hidden = self
                .finals
                .remove(&(mb, slice))
                .expect("final hidden saved");
            self.mem.free(hidden.bytes());
            let (normed, norm_saved) = rmsnorm_in(&self.pool, &hidden, &self.model.final_norm);
            let logits = matmul_in(&self.pool, &normed, &self.model.head);
            let targets = &self.batch[mb][offset + 1..offset + ts + 1];
            let ce = cross_entropy_in(&self.pool, &logits, targets);
            self.loss_sum += ce.loss_sum / (total_tokens * n_batch) as f64;
            let mut dlogits = ce.dlogits;
            dlogits.scale(1.0 / (total_tokens * n_batch) as f32);
            self.grads
                .head
                .add_assign(&matmul_wgrad_in(&self.pool, &normed, &dlogits));
            let d_normed = matmul_dgrad_in(&self.pool, &dlogits, &self.model.head);
            let (dh, dfn) =
                rmsnorm_backward_in(&self.pool, &d_normed, &self.model.final_norm, &norm_saved);
            self.grads.final_norm.add_assign(&dfn);
            dh
        } else {
            let t = self.recv_tagged(false, mb, slice, g)?;
            c0 = self.tracer.clock_ns();
            t
        };

        let (lo, hi) = self.layers_of_chunk(chunk);
        let (x_in, saves) = self
            .saves
            .remove(&(mb, slice, chunk))
            .expect("saved acts present");
        for li in (lo..hi).rev() {
            let kv = self
                .kvs
                .get(&(mb, chunk, li - lo))
                .expect("kv cache present");
            let dkv = self.dkvs.entry((mb, chunk, li - lo)).or_default();
            let was_empty = dkv.is_empty();
            let out = backward_input_slice(
                &self.pool,
                &self.model.layers[li],
                &saves[li - lo],
                kv,
                dkv,
                &dy,
            );
            if was_empty {
                let bytes = dkv.bytes();
                self.charge(bytes);
            }
            self.grads.layers[li].norm1.add_assign(&out.dnorm1);
            self.grads.layers[li].norm2.add_assign(&out.dnorm2);
            match self.mode {
                WgradMode::Immediate => {
                    apply_wgrads(&self.pool, &mut self.grads.layers[li], &out.wgrads)
                }
                WgradMode::AtWeightOp | WgradMode::DrainOnWait => {
                    for gm in out.wgrads {
                        self.charge(gm.bytes());
                        self.pending_w.push_back((mb, slice, chunk, li, gm));
                    }
                }
            }
            self.mem.free(saves[li - lo].bytes());
            dy = out.dx;
        }
        self.mem.free(x_in.bytes());
        drop(x_in);

        // After the first slice's backward, the (mb, chunk) caches die.
        if slice == 0 {
            for li in lo..hi {
                if let Some(kv) = self.kvs.remove(&(mb, chunk, li - lo)) {
                    self.mem.free(kv.bytes());
                }
                if let Some(dkv) = self.dkvs.remove(&(mb, chunk, li - lo)) {
                    self.mem.free(dkv.bytes());
                }
            }
        }

        if g == 0 {
            let toks = &self.batch[mb][offset..offset + ts];
            self.grads
                .embedding
                .add_assign(&embedding_backward(&dy, toks, self.model.cfg.vocab));
            self.note_compute(span, mb, slice, chunk, c0);
        } else {
            self.note_compute(span, mb, slice, chunk, c0);
            self.send_boundary(MsgKind::Bwd, mb, slice, g - 1, dy)?;
        }
        Ok(())
    }

    fn weight_op(&mut self, mb: usize, slice: usize, chunk: usize) {
        if self.mode != WgradMode::AtWeightOp {
            // Immediate mode never stashes; DrainOnWait ignores the static
            // W positions entirely (GEMMs drain during waits, leftovers at
            // the end) — the fully dynamic Section 5 behaviour.
            return;
        }
        let t0 = self.tracer.clock_ns();
        let mut applied = false;
        let mut remaining = VecDeque::new();
        for entry in self.pending_w.drain(..) {
            if entry.0 == mb && entry.1 == slice && entry.2 == chunk {
                let (_, _, _, li, gemm) = entry;
                self.mem.free(gemm.bytes());
                apply_wgrads(&self.pool, &mut self.grads.layers[li], &[gemm]);
                applied = true;
            } else {
                remaining.push_back(entry);
            }
        }
        self.pending_w = remaining;
        if applied {
            self.note_compute(SpanKind::BackwardWeight, mb, slice, chunk, t0);
        }
    }

    fn finish(mut self) -> WorkerOut {
        // Any weight work never reached (e.g. drained list ended early).
        let pending: Vec<_> = self.pending_w.drain(..).collect();
        for (mb, slice, chunk, li, gemm) in pending {
            let t0 = self.tracer.clock_ns();
            self.mem.free(gemm.bytes());
            apply_wgrads(&self.pool, &mut self.grads.layers[li], &[gemm]);
            self.note_compute(SpanKind::WgradDrain, mb, slice, chunk, t0);
        }
        // Clean close: peers blocked in recv finish once everyone's done.
        self.ep.close();
        let wall_ns = self.tracer.clock_ns().saturating_sub(self.start_ns);
        WorkerOut {
            loss_sum: self.loss_sum,
            grads: self.grads,
            peak_bytes: self.mem.peak(),
            drained: self.drained,
            oom: self.oom,
            comm: self.ep.stats(),
            busy_ns: self.busy_ns,
            idle_ns: wall_ns.saturating_sub(self.busy_ns),
            trace: self.tracer.finish(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mepipe_core::svpp::{Mepipe, Svpp};
    use mepipe_core::Synth;
    use mepipe_model::config::TransformerConfig;
    use mepipe_schedule::generator::{Dapple, Dims, Hanayo, ScheduleGenerator, Zbv};
    use mepipe_schedule::{Blocks, DualPipe};
    use mepipe_tensor::init::synthetic_tokens;

    use crate::reference::batch_forward_backward;

    fn tiny_cfg() -> TransformerConfig {
        TransformerConfig {
            seq_len: 32,
            ..TransformerConfig::tiny(4)
        }
    }

    fn make_batch(cfg: &TransformerConfig, n: usize, seed: u64) -> Vec<Vec<usize>> {
        (0..n)
            .map(|i| synthetic_tokens(cfg.seq_len + 1, cfg.vocab, seed + i as u64))
            .collect()
    }

    fn svpp_schedule(p: usize, v: usize, s: usize, n: usize, split: bool) -> Schedule {
        let dims = Dims::new(p, n).virtual_chunks(v).slices(s);
        if split {
            Mepipe::new().generate(&dims).unwrap()
        } else {
            Svpp::new().generate(&dims).unwrap()
        }
    }

    #[test]
    fn svpp_pipeline_matches_reference_gradients() {
        let cfg = tiny_cfg();
        let model = ModelParams::init(cfg, 42);
        let batch = make_batch(&cfg, 4, 7);
        let reference = batch_forward_backward(&model, &batch);

        let rt = PipelineRuntime::new(model, 2, 1);
        let sch = svpp_schedule(2, 1, 4, 4, false);
        let stats = rt
            .run_iteration(&sch, &batch, WgradMode::Immediate, None)
            .unwrap();

        assert!(
            (stats.loss - reference.loss).abs() < 1e-4,
            "loss {} vs reference {}",
            stats.loss,
            reference.loss
        );
        let diff = stats.grads.max_abs_diff(&reference.grads);
        assert!(diff < 1e-3, "gradient diff {diff}");
    }

    #[test]
    fn virtual_chunks_match_reference_too() {
        let cfg = tiny_cfg();
        let model = ModelParams::init(cfg, 43);
        let batch = make_batch(&cfg, 2, 9);
        let reference = batch_forward_backward(&model, &batch);
        let rt = PipelineRuntime::new(model, 2, 2);
        let sch = svpp_schedule(2, 2, 2, 2, false);
        let stats = rt
            .run_iteration(&sch, &batch, WgradMode::Immediate, None)
            .unwrap();
        assert!((stats.loss - reference.loss).abs() < 1e-4);
        assert!(stats.grads.max_abs_diff(&reference.grads) < 1e-3);
    }

    #[test]
    fn split_and_drained_wgrads_match_immediate() {
        let cfg = tiny_cfg();
        let model = ModelParams::init(cfg, 44);
        let batch = make_batch(&cfg, 2, 11);
        let rt = PipelineRuntime::new(model, 2, 1);
        let fused = rt
            .run_iteration(
                &svpp_schedule(2, 1, 2, 2, false),
                &batch,
                WgradMode::Immediate,
                None,
            )
            .unwrap();
        let split_sch = svpp_schedule(2, 1, 2, 2, true);
        let at_w = rt
            .run_iteration(&split_sch, &batch, WgradMode::AtWeightOp, None)
            .unwrap();
        let drained = rt
            .run_iteration(&split_sch, &batch, WgradMode::DrainOnWait, None)
            .unwrap();
        assert!(fused.grads.max_abs_diff(&at_w.grads) < 1e-4);
        assert!(fused.grads.max_abs_diff(&drained.grads) < 1e-4);
        assert!((fused.loss - drained.loss).abs() < 1e-6);
    }

    #[test]
    fn cap_between_svpp_and_dapple_separates_them() {
        // The paper's whole premise, on live tensors: pick a cap between
        // SVPP's peak and DAPPLE's peak — DAPPLE OOMs, SVPP fits.
        let cfg = tiny_cfg();
        let model = ModelParams::init(cfg, 49);
        let batch = make_batch(&cfg, 8, 23);
        let rt = PipelineRuntime::new(model, 2, 1);
        let dapple = Dapple.generate(&Dims::new(2, 8)).unwrap();
        let sv = svpp_schedule(2, 1, 4, 8, false);
        let free_d = rt
            .run_iteration(&dapple, &batch, WgradMode::Immediate, None)
            .unwrap();
        let free_s = rt
            .run_iteration(&sv, &batch, WgradMode::Immediate, None)
            .unwrap();
        let cap = (free_s.peak_bytes[0] + free_d.peak_bytes[0]) / 2;
        let capped_d = rt
            .run_iteration(&dapple, &batch, WgradMode::Immediate, Some(cap))
            .unwrap();
        let capped_s = rt
            .run_iteration(&sv, &batch, WgradMode::Immediate, Some(cap))
            .unwrap();
        assert!(capped_d.oom.is_some(), "DAPPLE should exceed the cap");
        assert!(capped_s.oom.is_none(), "SVPP should fit the cap");
    }

    #[test]
    fn svpp_peak_memory_below_dapple() {
        let cfg = tiny_cfg();
        let model = ModelParams::init(cfg, 45);
        let batch = make_batch(&cfg, 8, 13);
        let rt = PipelineRuntime::new(model, 2, 1);
        let dapple = Dapple.generate(&Dims::new(2, 8)).unwrap();
        let rd = rt
            .run_iteration(&dapple, &batch, WgradMode::Immediate, None)
            .unwrap();
        let sv = svpp_schedule(2, 1, 4, 8, false);
        let rs = rt
            .run_iteration(&sv, &batch, WgradMode::Immediate, None)
            .unwrap();
        assert!(
            rs.peak_bytes[0] < rd.peak_bytes[0],
            "svpp {} !< dapple {}",
            rs.peak_bytes[0],
            rd.peak_bytes[0]
        );
        // Loss identical across schedules (same math).
        assert!((rs.loss - rd.loss).abs() < 1e-4);
    }

    #[test]
    fn zbv_schedule_runs_on_the_runtime() {
        // The V-shaped placement routes chunk 1 back through the stages in
        // reverse — the loss lands on stage 0. The runtime resolves all of
        // that from the schedule meta, so ZBV trains out of the box and
        // matches the single-device reference.
        let cfg = tiny_cfg();
        let model = ModelParams::init(cfg, 50);
        let batch = make_batch(&cfg, 4, 29);
        let reference = batch_forward_backward(&model, &batch);
        let rt = PipelineRuntime::new(model, 2, 2);
        let sch = Zbv.generate(&Dims::new(2, 4).virtual_chunks(2)).unwrap();
        let stats = rt
            .run_iteration(&sch, &batch, WgradMode::DrainOnWait, None)
            .unwrap();
        assert!((stats.loss - reference.loss).abs() < 1e-4);
        assert!(stats.grads.max_abs_diff(&reference.grads) < 1e-3);
    }

    #[test]
    fn hanayo_schedule_runs_on_the_runtime() {
        let cfg = tiny_cfg();
        let model = ModelParams::init(cfg, 51);
        let batch = make_batch(&cfg, 4, 31);
        let reference = batch_forward_backward(&model, &batch);
        let rt = PipelineRuntime::new(model, 2, 2);
        let sch = Hanayo.generate(&Dims::new(2, 4).virtual_chunks(2)).unwrap();
        let stats = rt
            .run_iteration(&sch, &batch, WgradMode::Immediate, None)
            .unwrap();
        assert!((stats.loss - reference.loss).abs() < 1e-4);
        assert!(stats.grads.max_abs_diff(&reference.grads) < 1e-3);
    }

    #[test]
    fn dualpipe_schedule_runs_on_the_runtime() {
        // Bidirectional placement: even micro-batches enter at stage 0,
        // odd ones at stage p−1, each direction through its own replica
        // of the model blocks. Loss and embedding work therefore happen
        // on *both* boundary stages; the merged totals must still match
        // the single-device reference.
        let cfg = tiny_cfg();
        let model = ModelParams::init(cfg, 54);
        let batch = make_batch(&cfg, 4, 33);
        let reference = batch_forward_backward(&model, &batch);
        let rt = PipelineRuntime::new(model, 2, 2);
        let sch = DualPipe::new()
            .generate(&Dims::new(2, 4).virtual_chunks(2).slices(2))
            .unwrap();
        let stats = rt
            .run_iteration(&sch, &batch, WgradMode::DrainOnWait, None)
            .unwrap();
        assert!(
            (stats.loss - reference.loss).abs() < 1e-4,
            "loss {} vs reference {}",
            stats.loss,
            reference.loss
        );
        assert!(stats.grads.max_abs_diff(&reference.grads) < 1e-3);
        // Same schedule, same batch: bit-identical on a repeat run.
        let again = rt
            .run_iteration(&sch, &batch, WgradMode::DrainOnWait, None)
            .unwrap();
        assert_eq!(stats.loss.to_bits(), again.loss.to_bits());
        assert_eq!(stats.grads.max_abs_diff(&again.grads), 0.0);
    }

    #[test]
    fn four_stage_dualpipe_matches_reference() {
        // Deeper bidirectional pipeline: 4 stages, 8 micro-batches, with
        // the middle stages pure pass-through for both directions.
        let cfg = tiny_cfg();
        let model = ModelParams::init(cfg, 55);
        let batch = make_batch(&cfg, 8, 35);
        let reference = batch_forward_backward(&model, &batch);
        let rt = PipelineRuntime::new(model, 4, 2);
        let sch = DualPipe::new()
            .generate(&Dims::new(4, 8).virtual_chunks(2))
            .unwrap();
        let stats = rt
            .run_iteration(&sch, &batch, WgradMode::DrainOnWait, None)
            .unwrap();
        assert!((stats.loss - reference.loss).abs() < 1e-4);
        assert!(stats.grads.max_abs_diff(&reference.grads) < 1e-3);
    }

    #[test]
    fn blocks_schedule_runs_on_the_runtime() {
        // The controllable-memory family at its most frugal lifespan.
        let cfg = tiny_cfg();
        let model = ModelParams::init(cfg, 56);
        let batch = make_batch(&cfg, 4, 37);
        let reference = batch_forward_backward(&model, &batch);
        let rt = PipelineRuntime::new(model, 2, 1);
        let sch = Blocks::uniform()
            .lifespan(0)
            .generate(&Dims::new(2, 4).slices(2))
            .unwrap();
        let stats = rt
            .run_iteration(&sch, &batch, WgradMode::DrainOnWait, None)
            .unwrap();
        assert!((stats.loss - reference.loss).abs() < 1e-4);
        assert!(stats.grads.max_abs_diff(&reference.grads) < 1e-3);
    }

    #[test]
    fn solver_schedule_runs_on_the_runtime() {
        // The order solver's output is MEPipe-shaped, so it must train
        // like any hand-written schedule of the same dims.
        let cfg = tiny_cfg();
        let model = ModelParams::init(cfg, 57);
        let batch = make_batch(&cfg, 4, 39);
        let reference = batch_forward_backward(&model, &batch);
        let rt = PipelineRuntime::new(model, 2, 1);
        let sch = Synth::new().generate(&Dims::new(2, 4).slices(2)).unwrap();
        let stats = rt
            .run_iteration(&sch, &batch, WgradMode::DrainOnWait, None)
            .unwrap();
        assert!((stats.loss - reference.loss).abs() < 1e-4);
        assert!(stats.grads.max_abs_diff(&reference.grads) < 1e-3);
    }

    #[test]
    fn training_reduces_loss_like_reference() {
        let cfg = tiny_cfg();
        let mut rt = PipelineRuntime::new(ModelParams::init(cfg, 46), 2, 1);
        let mut ref_model = ModelParams::init(cfg, 46);
        let sch = svpp_schedule(2, 1, 2, 2, false);
        let mut first = None;
        let mut last = 0.0;
        for step in 0..6 {
            let batch = make_batch(&cfg, 2, 100 + step);
            let stats = rt
                .train_step(&sch, &batch, WgradMode::Immediate, 0.1)
                .unwrap();
            let r = batch_forward_backward(&ref_model, &batch);
            Sgd { lr: 0.1 }.step_model(&mut ref_model, &r.grads);
            assert!(
                (stats.loss - r.loss).abs() < 1e-3,
                "step {step}: pipeline {} vs reference {}",
                stats.loss,
                r.loss
            );
            if first.is_none() {
                first = Some(stats.loss);
            }
            last = stats.loss;
        }
        assert!(
            last < first.unwrap(),
            "loss did not decrease: {first:?} -> {last}"
        );
    }

    #[test]
    fn four_stage_svpp_with_kernel_pool_tracks_reference_loss() {
        // Stage-level threads (4) each nest a 2-worker kernel pool — the
        // composed parallelism must still reproduce the single-device
        // loss trajectory step for step.
        let cfg = tiny_cfg();
        let mut rt = PipelineRuntime::new(ModelParams::init(cfg, 52), 4, 1).with_kernel_workers(2);
        assert_eq!(rt.kernel_workers(), 2);
        let mut ref_model = ModelParams::init(cfg, 52);
        let sch = svpp_schedule(4, 1, 4, 4, true);
        for step in 0..3 {
            let batch = make_batch(&cfg, 4, 200 + step);
            let stats = rt
                .train_step(&sch, &batch, WgradMode::DrainOnWait, 0.1)
                .unwrap();
            let r = batch_forward_backward(&ref_model, &batch);
            Sgd { lr: 0.1 }.step_model(&mut ref_model, &r.grads);
            assert!(
                (stats.loss - r.loss).abs() < 1e-3,
                "step {step}: pipeline {} vs reference {}",
                stats.loss,
                r.loss
            );
        }
    }

    #[test]
    fn kernel_worker_count_does_not_change_results() {
        // The determinism contract end to end: the same iteration with 1
        // and 3 kernel workers per stage produces bitwise-equal gradients.
        let cfg = tiny_cfg();
        let batch = make_batch(&cfg, 2, 19);
        let sch = svpp_schedule(2, 1, 2, 2, false);
        let run = |workers: usize| {
            let rt =
                PipelineRuntime::new(ModelParams::init(cfg, 53), 2, 1).with_kernel_workers(workers);
            rt.run_iteration(&sch, &batch, WgradMode::Immediate, None)
                .unwrap()
        };
        let a = run(1);
        let b = run(3);
        assert_eq!(a.loss.to_bits(), b.loss.to_bits());
        assert!(a.grads.max_abs_diff(&b.grads) == 0.0);
    }

    #[test]
    fn data_parallel_matches_reference_batch() {
        // DP over 2 replicas on a 4-sample batch must equal the reference
        // batch gradient (each replica averages its shard of 2; DP halves
        // the replica sum — identical to the 1/4-scaled whole batch).
        let cfg = tiny_cfg();
        let model = ModelParams::init(cfg, 48);
        let batch = make_batch(&cfg, 4, 21);
        let reference = batch_forward_backward(&model, &batch);
        let rt = PipelineRuntime::new(model, 2, 1);
        // The schedule covers one replica's shard of 2 micro-batches.
        let sch = svpp_schedule(2, 1, 2, 2, false);
        let stats = rt
            .run_data_parallel(&sch, &batch, 2, WgradMode::Immediate)
            .unwrap();
        assert!((stats.loss - reference.loss).abs() < 1e-4);
        assert!(stats.grads.max_abs_diff(&reference.grads) < 1e-3);
    }

    #[test]
    fn drain_on_wait_actually_drains() {
        let cfg = tiny_cfg();
        let model = ModelParams::init(cfg, 47);
        let batch = make_batch(&cfg, 4, 17);
        let rt = PipelineRuntime::new(model, 2, 1);
        let sch = svpp_schedule(2, 1, 2, 4, true);
        let stats = rt
            .run_iteration(&sch, &batch, WgradMode::DrainOnWait, None)
            .unwrap();
        let total: usize = stats.drained_wgrads.iter().sum();
        assert!(total > 0, "expected some drained weight GEMMs");
    }
}
