//! Slice-wise decoder layer with explicit, splittable backward.
//!
//! The layer implements the SPP dataflow contract end to end:
//!
//! * `forward_slice` consumes one token slice, *appends* its keys/values
//!   to the layer's per-sample KV cache, and attends over the whole
//!   prefix;
//! * `backward_input_slice` consumes the output gradient of one slice,
//!   accumulates dK/dV contributions for all preceding slices into the
//!   per-sample dKV buffer, pulls out the completed rows for its *own*
//!   positions (valid because slices are processed in reverse order), and
//!   returns the input gradient plus a bag of deferred weight-gradient
//!   GEMMs;
//! * `apply_wgrads` executes those GEMMs — the op MEPipe schedules freely.

use mepipe_tensor::{
    ops::{
        causal_attention_backward_in, causal_attention_in, matmul_dgrad_in, matmul_in,
        matmul_wgrad_in, rmsnorm_backward_in, rmsnorm_in, silu, silu_backward, AttentionSaved,
        RmsNormSaved,
    },
    KernelPool, Tensor,
};

use crate::params::LayerParams;

/// Per-layer per-sample key/value cache (grows slice by slice).
#[derive(Debug, Clone, Default)]
pub struct Kv {
    /// Keys `[tokens_so_far, h]`.
    pub k: Option<Tensor>,
    /// Values `[tokens_so_far, h]`.
    pub v: Option<Tensor>,
}

impl Kv {
    /// Appends one slice's keys/values. In-place row append, so growing
    /// the cache slice by slice costs O(slice) per call instead of
    /// recopying the whole prefix.
    pub fn append(&mut self, k_new: Tensor, v_new: Tensor) {
        match &mut self.k {
            Some(k) => k.append_rows(&k_new),
            None => self.k = Some(k_new),
        }
        match &mut self.v {
            Some(v) => v.append_rows(&v_new),
            None => self.v = Some(v_new),
        }
    }

    /// Cached token count.
    pub fn len(&self) -> usize {
        self.k.as_ref().map_or(0, Tensor::rows)
    }

    /// Whether nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Byte footprint of the cache.
    pub fn bytes(&self) -> usize {
        self.k.as_ref().map_or(0, Tensor::bytes) + self.v.as_ref().map_or(0, Tensor::bytes)
    }
}

/// Which weight a deferred gradient GEMM updates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WeightId {
    /// Query projection.
    Wq,
    /// Key projection.
    Wk,
    /// Value projection.
    Wv,
    /// Output projection.
    Wo,
    /// SwiGLU gate.
    Wg,
    /// SwiGLU up.
    Wu,
    /// SwiGLU down.
    Wd,
}

/// One deferred weight-gradient GEMM: `dW += inputᵀ · out_grad`.
#[derive(Debug, Clone)]
pub struct WgradGemm {
    /// Which weight to update.
    pub weight: WeightId,
    /// The forward input activation.
    pub input: Tensor,
    /// The output gradient.
    pub out_grad: Tensor,
}

impl WgradGemm {
    /// Byte footprint of the retained operands.
    pub fn bytes(&self) -> usize {
        self.input.bytes() + self.out_grad.bytes()
    }
}

/// Activations one slice-forward saves for its backward.
#[derive(Debug, Clone)]
pub struct LayerFwdSaved {
    x_in: Tensor,
    norm1_saved: RmsNormSaved,
    normed1: Tensor,
    q: Tensor,
    attn_saved: Vec<AttentionSaved>,
    attn_concat: Tensor,
    resid1: Tensor,
    norm2_saved: RmsNormSaved,
    normed2: Tensor,
    gate_pre: Tensor,
    gate_act: Tensor,
    up: Tensor,
    offset: usize,
    heads: usize,
}

impl LayerFwdSaved {
    /// Byte footprint of everything retained for the backward pass.
    pub fn bytes(&self) -> usize {
        self.x_in.bytes()
            + self.norm1_saved.x.bytes()
            + self.normed1.bytes()
            + self.q.bytes()
            + self
                .attn_saved
                .iter()
                .map(|a| a.probs.bytes())
                .sum::<usize>()
            + self.attn_concat.bytes()
            + self.resid1.bytes()
            + self.norm2_saved.x.bytes()
            + self.normed2.bytes()
            + self.gate_pre.bytes()
            + self.gate_act.bytes()
            + self.up.bytes()
    }
}

/// Forward of one token slice through one decoder layer. All hot kernels
/// run on `pool` — pass [`KernelPool::shared_serial`] for single-threaded
/// execution.
///
/// `offset` is the slice's first absolute token position; the layer's KV
/// cache must contain exactly `offset` tokens on entry.
///
/// # Panics
///
/// Panics if the KV cache length disagrees with `offset`.
pub fn forward_slice(
    pool: &KernelPool,
    p: &LayerParams,
    x: &Tensor,
    kv: &mut Kv,
    offset: usize,
    heads: usize,
) -> (Tensor, LayerFwdSaved) {
    assert_eq!(kv.len(), offset, "KV cache out of sync with slice offset");
    let h = x.cols();
    let hd = h / heads;

    let (normed1, norm1_saved) = rmsnorm_in(pool, x, &p.norm1);
    let q = matmul_in(pool, &normed1, &p.wq);
    let k_new = matmul_in(pool, &normed1, &p.wk);
    let v_new = matmul_in(pool, &normed1, &p.wv);
    kv.append(k_new, v_new);
    let k_all = kv.k.as_ref().expect("cache nonempty after append");
    let v_all = kv.v.as_ref().expect("cache nonempty after append");

    let mut attn_concat = Tensor::zeros(x.rows(), h);
    let mut attn_saved = Vec::with_capacity(heads);
    for head in 0..heads {
        let qh = q.slice_cols(head * hd, hd);
        let kh = k_all.slice_cols(head * hd, hd);
        let vh = v_all.slice_cols(head * hd, hd);
        let (oh, sv) = causal_attention_in(pool, &qh, &kh, &vh, offset);
        attn_concat.add_cols(head * hd, &oh);
        attn_saved.push(sv);
    }
    let attn_out = matmul_in(pool, &attn_concat, &p.wo);
    let resid1 = x.add(&attn_out);

    let (normed2, norm2_saved) = rmsnorm_in(pool, &resid1, &p.norm2);
    let gate_pre = matmul_in(pool, &normed2, &p.wg);
    let up = matmul_in(pool, &normed2, &p.wu);
    let gate_act = silu(&gate_pre);
    let mut mlp_act = gate_act.clone();
    for (a, b) in mlp_act.data_mut().iter_mut().zip(up.data()) {
        *a *= b;
    }
    let mlp_out = matmul_in(pool, &mlp_act, &p.wd);
    let y = resid1.add(&mlp_out);

    let saved = LayerFwdSaved {
        x_in: x.clone(),
        norm1_saved,
        normed1,
        q,
        attn_saved,
        attn_concat,
        resid1,
        norm2_saved,
        normed2,
        gate_pre,
        gate_act,
        up,
        offset,
        heads,
    };
    (y, saved)
}

/// Output of one slice's input-gradient backward.
pub struct BackwardOut {
    /// Gradient w.r.t. the slice's layer input.
    pub dx: Tensor,
    /// Deferred weight-gradient GEMMs (7 per layer).
    pub wgrads: Vec<WgradGemm>,
    /// Immediate RMSNorm weight gradients `(d_norm1, d_norm2)`.
    pub dnorm1: Tensor,
    /// See `dnorm1`.
    pub dnorm2: Tensor,
}

/// Input-gradient backward of one slice, on `pool`.
///
/// `dkv` holds per-layer dK/dV accumulators over the *whole* sample; it
/// must already contain the contributions of every later slice (slices
/// run in reverse order). This slice's own rows are consumed here.
pub fn backward_input_slice(
    pool: &KernelPool,
    p: &LayerParams,
    saved: &LayerFwdSaved,
    kv: &Kv,
    dkv: &mut Kv,
    dy: &Tensor,
) -> BackwardOut {
    let t = dy.rows();
    let h = dy.cols();
    let heads = saved.heads;
    let hd = h / heads;
    let offset = saved.offset;
    let k_all = kv.k.as_ref().expect("kv cache present");
    let v_all = kv.v.as_ref().expect("kv cache present");
    let prefix = offset + t;
    if dkv.is_empty() {
        // First (i.e. last-slice) backward allocates the accumulators for
        // the whole cached prefix.
        dkv.k = Some(Tensor::zeros(kv.len(), h));
        dkv.v = Some(Tensor::zeros(kv.len(), h));
    }

    let mut wgrads = Vec::with_capacity(7);

    // MLP backward.
    let d_mlp_act = matmul_dgrad_in(pool, dy, &p.wd);
    let mut mlp_act = saved.gate_act.clone();
    for (a, b) in mlp_act.data_mut().iter_mut().zip(saved.up.data()) {
        *a *= b;
    }
    wgrads.push(WgradGemm {
        weight: WeightId::Wd,
        input: mlp_act,
        out_grad: dy.clone(),
    });
    let mut d_silu = d_mlp_act.clone();
    for (a, b) in d_silu.data_mut().iter_mut().zip(saved.up.data()) {
        *a *= b;
    }
    let d_gate_pre = silu_backward(&d_silu, &saved.gate_pre);
    let mut d_up = d_mlp_act;
    for (a, b) in d_up.data_mut().iter_mut().zip(saved.gate_act.data()) {
        *a *= b;
    }
    let mut d_normed2 = matmul_dgrad_in(pool, &d_gate_pre, &p.wg);
    d_normed2.add_assign(&matmul_dgrad_in(pool, &d_up, &p.wu));
    wgrads.push(WgradGemm {
        weight: WeightId::Wg,
        input: saved.normed2.clone(),
        out_grad: d_gate_pre,
    });
    wgrads.push(WgradGemm {
        weight: WeightId::Wu,
        input: saved.normed2.clone(),
        out_grad: d_up,
    });
    let (d_resid1_norm, dnorm2) =
        rmsnorm_backward_in(pool, &d_normed2, &p.norm2, &saved.norm2_saved);
    let mut d_resid1 = dy.clone();
    d_resid1.add_assign(&d_resid1_norm);

    // Attention output projection.
    let d_attn_concat = matmul_dgrad_in(pool, &d_resid1, &p.wo);
    wgrads.push(WgradGemm {
        weight: WeightId::Wo,
        input: saved.attn_concat.clone(),
        out_grad: d_resid1.clone(),
    });

    // Per-head attention backward; accumulate prefix dK/dV.
    let mut dq = Tensor::zeros(t, h);
    {
        let dk_acc = dkv.k.as_mut().expect("allocated above");
        let dv_acc = dkv.v.as_mut().expect("allocated above");
        for head in 0..heads {
            let qh = saved.q.slice_cols(head * hd, hd);
            let kh = k_all.slice_block(0, prefix, head * hd, hd);
            let vh = v_all.slice_block(0, prefix, head * hd, hd);
            let doh = d_attn_concat.slice_cols(head * hd, hd);
            let (dqh, dkh, dvh) =
                causal_attention_backward_in(pool, &doh, &qh, &kh, &vh, &saved.attn_saved[head]);
            dq.add_cols(head * hd, &dqh);
            for r in 0..prefix {
                let dst_k = &mut dk_acc.row_mut(r)[head * hd..(head + 1) * hd];
                for (a, b) in dst_k.iter_mut().zip(dkh.row(r)) {
                    *a += b;
                }
                let dst_v = &mut dv_acc.row_mut(r)[head * hd..(head + 1) * hd];
                for (a, b) in dst_v.iter_mut().zip(dvh.row(r)) {
                    *a += b;
                }
            }
        }
    }

    // This slice's own dK/dV rows are now complete.
    let dk_own = dkv.k.as_ref().expect("allocated").slice_rows(offset, t);
    let dv_own = dkv.v.as_ref().expect("allocated").slice_rows(offset, t);

    let mut d_normed1 = matmul_dgrad_in(pool, &dq, &p.wq);
    d_normed1.add_assign(&matmul_dgrad_in(pool, &dk_own, &p.wk));
    d_normed1.add_assign(&matmul_dgrad_in(pool, &dv_own, &p.wv));
    wgrads.push(WgradGemm {
        weight: WeightId::Wq,
        input: saved.normed1.clone(),
        out_grad: dq,
    });
    wgrads.push(WgradGemm {
        weight: WeightId::Wk,
        input: saved.normed1.clone(),
        out_grad: dk_own,
    });
    wgrads.push(WgradGemm {
        weight: WeightId::Wv,
        input: saved.normed1.clone(),
        out_grad: dv_own,
    });

    let (d_x_norm, dnorm1) = rmsnorm_backward_in(pool, &d_normed1, &p.norm1, &saved.norm1_saved);
    let mut dx = d_resid1;
    dx.add_assign(&d_x_norm);

    BackwardOut {
        dx,
        wgrads,
        dnorm1,
        dnorm2,
    }
}

/// Executes deferred weight-gradient GEMMs on `pool`, accumulating into
/// `grads`.
pub fn apply_wgrads(pool: &KernelPool, grads: &mut LayerParams, gemms: &[WgradGemm]) {
    for g in gemms {
        let dw = matmul_wgrad_in(pool, &g.input, &g.out_grad);
        let target = match g.weight {
            WeightId::Wq => &mut grads.wq,
            WeightId::Wk => &mut grads.wk,
            WeightId::Wv => &mut grads.wv,
            WeightId::Wo => &mut grads.wo,
            WeightId::Wg => &mut grads.wg,
            WeightId::Wu => &mut grads.wu,
            WeightId::Wd => &mut grads.wd,
        };
        target.add_assign(&dw);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mepipe_model::config::TransformerConfig;
    use mepipe_tensor::init::{rng, uniform};

    use crate::params::LayerParams as LP;

    fn setup() -> (LP, Tensor) {
        let cfg = TransformerConfig::tiny(1);
        let mut r = rng(71);
        let p = LP::init(&cfg, &mut r);
        let x = uniform(16, cfg.hidden, 1.0, &mut r);
        (p, x)
    }

    #[test]
    fn sliced_forward_equals_full_forward() {
        let (p, x) = setup();
        let pool = KernelPool::serial();
        let mut kv_full = Kv::default();
        let (y_full, _) = forward_slice(&pool, &p, &x, &mut kv_full, 0, 4);
        let mut kv = Kv::default();
        let mut parts = Vec::new();
        for i in 0..4 {
            let xs = x.slice_rows(i * 4, 4);
            let (y, _) = forward_slice(&pool, &p, &xs, &mut kv, i * 4, 4);
            parts.push(y);
        }
        let y_sliced = Tensor::vstack(&parts);
        assert!(
            y_full.max_abs_diff(&y_sliced) < 1e-4,
            "diff = {}",
            y_full.max_abs_diff(&y_sliced)
        );
    }

    #[test]
    fn sliced_backward_equals_full_backward() {
        let (p, x) = setup();
        let pool = KernelPool::serial();
        let mut r = rng(72);
        let dy = uniform(16, x.cols(), 1.0, &mut r);

        // Full-sequence reference.
        let mut kv_f = Kv::default();
        let (_, saved_f) = forward_slice(&pool, &p, &x, &mut kv_f, 0, 4);
        let mut dkv_f = Kv::default();
        let out_f = backward_input_slice(&pool, &p, &saved_f, &kv_f, &mut dkv_f, &dy);
        let mut grads_f = p.zero_grads();
        apply_wgrads(&pool, &mut grads_f, &out_f.wgrads);

        // Sliced execution: forwards 0..4, backwards 3..0.
        let mut kv = Kv::default();
        let mut saves = Vec::new();
        for i in 0..4 {
            let xs = x.slice_rows(i * 4, 4);
            let (_, sv) = forward_slice(&pool, &p, &xs, &mut kv, i * 4, 4);
            saves.push(sv);
        }
        let mut dkv = Kv::default();
        let mut grads_s = p.zero_grads();
        let mut dx_parts = vec![Tensor::zeros(0, 0); 4];
        for i in (0..4).rev() {
            let out = backward_input_slice(
                &pool,
                &p,
                &saves[i],
                &kv,
                &mut dkv,
                &dy.slice_rows(i * 4, 4),
            );
            apply_wgrads(&pool, &mut grads_s, &out.wgrads);
            grads_s.norm1.add_assign(&out.dnorm1);
            grads_s.norm2.add_assign(&out.dnorm2);
            dx_parts[i] = out.dx;
        }
        // Fold reference norm grads in for comparison.
        grads_f.norm1.add_assign(&out_f.dnorm1);
        grads_f.norm2.add_assign(&out_f.dnorm2);

        let dx_sliced = Tensor::vstack(&dx_parts);
        assert!(
            out_f.dx.max_abs_diff(&dx_sliced) < 1e-3,
            "dx diff = {}",
            out_f.dx.max_abs_diff(&dx_sliced)
        );
        assert!(
            grads_f.max_abs_diff(&grads_s) < 1e-3,
            "grad diff = {}",
            grads_f.max_abs_diff(&grads_s)
        );
    }

    #[test]
    fn backward_produces_seven_deferred_gemms() {
        let (p, x) = setup();
        let pool = KernelPool::serial();
        let mut kv = Kv::default();
        let (_, saved) = forward_slice(&pool, &p, &x, &mut kv, 0, 4);
        let mut dkv = Kv::default();
        let out = backward_input_slice(
            &pool,
            &p,
            &saved,
            &kv,
            &mut dkv,
            &Tensor::zeros(16, x.cols()),
        );
        assert_eq!(out.wgrads.len(), 7);
    }

    #[test]
    fn pooled_layer_matches_serial_layer_bitwise() {
        // Kernel-level parallelism must not perturb the layer math at all:
        // forward outputs and every gradient are bit-identical.
        let (p, x) = setup();
        let serial = KernelPool::serial();
        let pooled = KernelPool::new(3);
        let mut r = rng(73);
        let dy = uniform(16, x.cols(), 1.0, &mut r);

        let run = |pool: &KernelPool| {
            let mut kv = Kv::default();
            let (y, saved) = forward_slice(pool, &p, &x, &mut kv, 0, 4);
            let mut dkv = Kv::default();
            let out = backward_input_slice(pool, &p, &saved, &kv, &mut dkv, &dy);
            let mut grads = p.zero_grads();
            apply_wgrads(pool, &mut grads, &out.wgrads);
            (y, out.dx, grads)
        };
        let (y_s, dx_s, g_s) = run(&serial);
        let (y_p, dx_p, g_p) = run(&pooled);
        assert_eq!(y_s.data(), y_p.data());
        assert_eq!(dx_s.data(), dx_p.data());
        assert!(g_s.max_abs_diff(&g_p) == 0.0);
    }

    #[test]
    #[should_panic(expected = "out of sync")]
    fn wrong_offset_panics() {
        let (p, x) = setup();
        let mut kv = Kv::default();
        forward_slice(&KernelPool::serial(), &p, &x, &mut kv, 3, 4);
    }
}
