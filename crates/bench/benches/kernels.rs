//! The kernel-engine benchmark: blocked/packed kernels vs the naive
//! scalar reference, plus worker-pool scaling. Results are printed and
//! written to `BENCH_kernels.json` at the repo root, so the measured
//! speedups quoted in README/DESIGN stay reproducible from one command
//! (`scripts/bench_kernels.sh`).

use std::time::Instant;

use criterion::black_box;
use mepipe_tensor::{
    init::{rng, uniform},
    ops::{
        causal_attention_backward_in, causal_attention_in, cross_entropy_in, matmul_dgrad_in,
        matmul_in, matmul_wgrad_in, naive, rmsnorm_in,
    },
    KernelPool, Tensor,
};

/// Seconds per iteration: the *minimum* over several short samples.
/// The min, not the mean, is the noise-robust estimator on a shared
/// machine — interference only ever adds time, so the fastest sample is
/// the closest to the op's true cost.
fn time<F: FnMut()>(mut f: F) -> f64 {
    let warm = Instant::now();
    f();
    let once = warm.elapsed().as_secs_f64();
    // ~60 ms per sample, 7 samples (bounded for very slow ops).
    let per_sample = if once <= 0.0 {
        16
    } else {
        ((0.06 / once) as usize).clamp(1, 50)
    };
    let mut best = f64::INFINITY;
    for _ in 0..7 {
        let start = Instant::now();
        for _ in 0..per_sample {
            f();
        }
        best = best.min(start.elapsed().as_secs_f64() / per_sample as f64);
    }
    best
}

fn gflops(m: usize, n: usize, k: usize, secs: f64) -> f64 {
    2.0 * (m * n * k) as f64 / secs / 1e9
}

fn main() {
    let serial = KernelPool::serial();
    let mut json = String::from("{\n");

    // --- Matmul trio: naive vs kernel engine, single thread. ---
    println!("== matmul: naive scalar vs blocked/packed kernel (1 worker) ==");
    json.push_str("  \"matmul\": [\n");
    let mut first = true;
    for n in [256usize, 512] {
        let mut r = rng(1);
        let a = uniform(n, n, 1.0, &mut r);
        let b = uniform(n, n, 1.0, &mut r);
        let dc = uniform(n, n, 1.0, &mut r);
        let t_naive = time(|| {
            black_box(naive::matmul(&a, &b));
        });
        let t_kernel = time(|| {
            black_box(matmul_in(&serial, &a, &b));
        });
        let t_dgrad = time(|| {
            black_box(matmul_dgrad_in(&serial, &dc, &b));
        });
        let t_wgrad = time(|| {
            black_box(matmul_wgrad_in(&serial, &a, &dc));
        });
        let speedup = t_naive / t_kernel;
        println!(
            "  {n}x{n}x{n}: naive {:.1} ms ({:.2} GF/s) | kernel {:.1} ms ({:.2} GF/s) | {speedup:.2}x | dgrad {:.1} ms | wgrad {:.1} ms",
            t_naive * 1e3,
            gflops(n, n, n, t_naive),
            t_kernel * 1e3,
            gflops(n, n, n, t_kernel),
            t_dgrad * 1e3,
            t_wgrad * 1e3,
        );
        if !first {
            json.push_str(",\n");
        }
        first = false;
        json.push_str(&format!(
            "    {{\"shape\": {n}, \"naive_s\": {t_naive:.6}, \"kernel_s\": {t_kernel:.6}, \"dgrad_s\": {t_dgrad:.6}, \"wgrad_s\": {t_wgrad:.6}, \"speedup\": {speedup:.2}, \"kernel_gflops\": {:.2}}}",
            gflops(n, n, n, t_kernel)
        ));
    }
    // 1024 is kernel-only: the naive loop would dominate the bench's
    // wall-clock for a number the 512 point already establishes.
    {
        let n = 1024usize;
        let mut r = rng(1);
        let a = uniform(n, n, 1.0, &mut r);
        let b = uniform(n, n, 1.0, &mut r);
        let t_kernel = time(|| {
            black_box(matmul_in(&serial, &a, &b));
        });
        println!(
            "  {n}x{n}x{n}: kernel {:.1} ms ({:.2} GF/s) (naive skipped at this size)",
            t_kernel * 1e3,
            gflops(n, n, n, t_kernel)
        );
        json.push_str(&format!(
            ",\n    {{\"shape\": {n}, \"kernel_s\": {t_kernel:.6}, \"kernel_gflops\": {:.2}}}\n  ],\n",
            gflops(n, n, n, t_kernel)
        ));
    }

    // --- Worker scaling at 512, fixed grain => bit-identical results.
    // 512³ sits below the engine's parallel break-even floor, so the
    // pool is ignored there: the row here documents that multi-worker
    // no longer *loses* to single-worker at sub-break-even shapes
    // (scaling pins to ~1.0x instead of the old 0.9x). ---
    println!("== matmul 512 worker scaling ==");
    json.push_str("  \"worker_scaling_512\": [\n");
    let mut r = rng(2);
    let a = uniform(512, 512, 1.0, &mut r);
    let b = uniform(512, 512, 1.0, &mut r);
    let mut base = 0.0f64;
    for (i, workers) in [1usize, 2, 4].into_iter().enumerate() {
        let pool = KernelPool::new(workers);
        let t = time(|| {
            black_box(matmul_in(&pool, &a, &b));
        });
        if workers == 1 {
            base = t;
        }
        println!(
            "  workers={workers}: {:.1} ms ({:.2}x vs 1 worker)",
            t * 1e3,
            base / t
        );
        if i > 0 {
            json.push_str(",\n");
        }
        json.push_str(&format!(
            "    {{\"workers\": {workers}, \"kernel_s\": {t:.6}, \"scaling\": {:.2}}}",
            base / t
        ));
    }
    json.push_str("\n  ],\n");

    // --- Fused attention vs naive (explicit transposes). ---
    println!("== causal attention t=256 d=64 prefix=512 ==");
    let mut r = rng(3);
    let (t_len, d, offset) = (256usize, 64usize, 256usize);
    let q = uniform(t_len, d, 1.0, &mut r);
    let k = uniform(offset + t_len, d, 1.0, &mut r);
    let v = uniform(offset + t_len, d, 1.0, &mut r);
    let dout = uniform(t_len, d, 1.0, &mut r);
    let t_fwd_naive = time(|| {
        black_box(naive::causal_attention(&q, &k, &v, offset));
    });
    let t_fwd = time(|| {
        black_box(causal_attention_in(&serial, &q, &k, &v, offset));
    });
    let (_, saved) = causal_attention_in(&serial, &q, &k, &v, offset);
    let (_, probs) = naive::causal_attention(&q, &k, &v, offset);
    let t_bwd_naive = time(|| {
        black_box(naive::causal_attention_backward(&dout, &q, &k, &v, &probs));
    });
    let t_bwd = time(|| {
        black_box(causal_attention_backward_in(
            &serial, &dout, &q, &k, &v, &saved,
        ));
    });
    println!(
        "  fwd: naive {:.2} ms | fused {:.2} ms ({:.2}x)   bwd: naive {:.2} ms | fused {:.2} ms ({:.2}x)",
        t_fwd_naive * 1e3,
        t_fwd * 1e3,
        t_fwd_naive / t_fwd,
        t_bwd_naive * 1e3,
        t_bwd * 1e3,
        t_bwd_naive / t_bwd,
    );
    json.push_str(&format!(
        "  \"attention\": {{\"t\": {t_len}, \"d\": {d}, \"offset\": {offset}, \"fwd_naive_s\": {t_fwd_naive:.6}, \"fwd_fused_s\": {t_fwd:.6}, \"bwd_naive_s\": {t_bwd_naive:.6}, \"bwd_fused_s\": {t_bwd:.6}}},\n"
    ));

    // --- RMSNorm and cross-entropy (pooled row kernels). ---
    let mut r = rng(4);
    let x = uniform(512, 1024, 1.0, &mut r);
    let w = Tensor::from_vec(1, 1024, vec![1.0; 1024]);
    let t_rms = time(|| {
        black_box(rmsnorm_in(&serial, &x, &w));
    });
    let logits = uniform(512, 1024, 1.0, &mut r);
    let targets: Vec<usize> = (0..512).map(|i| i % 1024).collect();
    let t_ce = time(|| {
        black_box(cross_entropy_in(&serial, &logits, &targets));
    });
    println!(
        "== rmsnorm 512x1024: {:.2} ms | cross-entropy 512x1024: {:.2} ms ==",
        t_rms * 1e3,
        t_ce * 1e3
    );
    json.push_str(&format!(
        "  \"rmsnorm_512x1024_s\": {t_rms:.6},\n  \"cross_entropy_512x1024_s\": {t_ce:.6}\n}}\n"
    ));

    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_kernels.json");
    std::fs::write(out, &json).expect("write BENCH_kernels.json");
    println!("wrote {out}");
}
