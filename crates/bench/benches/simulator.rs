//! Benchmarks for the discrete-event simulator and the strategy search
//! primitives.

use criterion::{criterion_group, criterion_main, Criterion};
use mepipe_core::svpp::Mepipe;
use mepipe_hw::topology::ClusterSpec;
use mepipe_model::{
    config::TransformerConfig,
    cost::ExecutionCost,
    partition::{PartitionSpec, SequenceSplit},
};
use mepipe_schedule::generator::{Dims, ScheduleGenerator};
use mepipe_sim::{
    engine::{simulate, SimConfig},
    ModelCost,
};
use mepipe_strategy::{evaluate, Candidate, Method};

fn mepipe_13b_setup() -> (mepipe_schedule::ir::Schedule, ModelCost) {
    let model = TransformerConfig::llama2_13b();
    let spec = PartitionSpec {
        pp: 8,
        vp: 1,
        dp: 8,
        seq: SequenceSplit::SlicePipeline { slices: 4 },
        recompute: false,
        micro_batch_size: 1,
        global_batch: 128,
    };
    let cost =
        ModelCost::new(ExecutionCost::new(model, spec, &ClusterSpec::rtx4090_cluster()).unwrap());
    let sch = Mepipe::new().generate(&Dims::new(8, 16).slices(4)).unwrap();
    (sch, cost)
}

fn bench_simulate(c: &mut Criterion) {
    let (sch, cost) = mepipe_13b_setup();
    c.bench_function("simulate_mepipe_13b_static", |b| {
        b.iter(|| simulate(&sch, &cost, &SimConfig::default()).unwrap())
    });
    c.bench_function("simulate_mepipe_13b_dynamic_w", |b| {
        b.iter(|| {
            simulate(
                &sch,
                &cost,
                &SimConfig {
                    dynamic_wgrad: true,
                    ..Default::default()
                },
            )
            .unwrap()
        })
    });
}

fn bench_evaluate(c: &mut Criterion) {
    let model = TransformerConfig::llama2_13b();
    let cluster = ClusterSpec::rtx4090_cluster();
    let cand = Candidate {
        method: Method::Mepipe,
        spec: PartitionSpec {
            pp: 8,
            vp: 1,
            dp: 8,
            seq: SequenceSplit::SlicePipeline { slices: 4 },
            recompute: false,
            micro_batch_size: 1,
            global_batch: 128,
        },
    };
    c.bench_function("evaluate_candidate_13b", |b| {
        b.iter(|| evaluate(&cand, &model, &cluster).unwrap())
    });
}

criterion_group!(benches, bench_simulate, bench_evaluate);
criterion_main!(benches);
