//! Benchmarks for the CPU tensor kernels: matmul (and its dX/dW halves),
//! slice attention, normalisation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mepipe_tensor::{
    init::{rng, uniform},
    ops::{causal_attention, matmul, matmul_dgrad, matmul_wgrad, rmsnorm},
    Tensor,
};

fn bench_matmul(c: &mut Criterion) {
    let mut g = c.benchmark_group("matmul");
    for n in [32usize, 64, 128] {
        let mut r = rng(1);
        let a = uniform(n, n, 1.0, &mut r);
        let b = uniform(n, n, 1.0, &mut r);
        g.bench_with_input(BenchmarkId::new("fwd", n), &n, |bench, _| {
            bench.iter(|| matmul(&a, &b))
        });
        let dc = uniform(n, n, 1.0, &mut r);
        g.bench_with_input(BenchmarkId::new("dgrad", n), &n, |bench, _| {
            bench.iter(|| matmul_dgrad(&dc, &b))
        });
        g.bench_with_input(BenchmarkId::new("wgrad", n), &n, |bench, _| {
            bench.iter(|| matmul_wgrad(&a, &dc))
        });
    }
    g.finish();
}

fn bench_attention(c: &mut Criterion) {
    let mut g = c.benchmark_group("causal_attention");
    let mut r = rng(2);
    for (t, ctx) in [(16usize, 16usize), (16, 64), (64, 64)] {
        let q = uniform(t, 32, 1.0, &mut r);
        let k = uniform(ctx, 32, 1.0, &mut r);
        let v = uniform(ctx, 32, 1.0, &mut r);
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("t{t}_ctx{ctx}")),
            &t,
            |bench, _| bench.iter(|| causal_attention(&q, &k, &v, ctx - t)),
        );
    }
    g.finish();
}

fn bench_rmsnorm(c: &mut Criterion) {
    let mut r = rng(3);
    let x = uniform(128, 256, 1.0, &mut r);
    let w = Tensor::from_vec(1, 256, vec![1.0; 256]);
    c.bench_function("rmsnorm_128x256", |b| b.iter(|| rmsnorm(&x, &w)));
}

criterion_group!(benches, bench_matmul, bench_attention, bench_rmsnorm);
criterion_main!(benches);
