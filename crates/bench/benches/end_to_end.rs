//! End-to-end benchmarks: a real threaded pipeline training iteration on
//! the mini-Llama under different schedules, and a full grid search.

use criterion::{criterion_group, criterion_main, Criterion};
use mepipe_core::svpp::Svpp;
use mepipe_hw::topology::ClusterSpec;
use mepipe_model::config::TransformerConfig;
use mepipe_schedule::generator::{Dapple, Dims, ScheduleGenerator};
use mepipe_strategy::{search, Method};
use mepipe_tensor::init::synthetic_tokens;
use mepipe_train::{
    params::ModelParams,
    pipeline::{PipelineRuntime, WgradMode},
};

fn bench_threaded_pipeline(c: &mut Criterion) {
    let cfg = TransformerConfig {
        seq_len: 32,
        ..TransformerConfig::tiny(4)
    };
    let rt = PipelineRuntime::new(ModelParams::init(cfg, 1), 2, 1);
    let batch: Vec<Vec<usize>> = (0..4)
        .map(|i| synthetic_tokens(cfg.seq_len + 1, cfg.vocab, i))
        .collect();
    let svpp = Svpp::new().generate(&Dims::new(2, 4).slices(4)).unwrap();
    let dapple = Dapple.generate(&Dims::new(2, 4)).unwrap();
    let mut g = c.benchmark_group("threaded_iteration");
    g.sample_size(10);
    g.bench_function("svpp_s4", |b| {
        b.iter(|| {
            rt.run_iteration(&svpp, &batch, WgradMode::Immediate, None)
                .unwrap()
        })
    });
    g.bench_function("dapple", |b| {
        b.iter(|| {
            rt.run_iteration(&dapple, &batch, WgradMode::Immediate, None)
                .unwrap()
        })
    });
    g.finish();
}

fn bench_grid_search(c: &mut Criterion) {
    let model = TransformerConfig::llama2_13b();
    let cluster = ClusterSpec::rtx4090_cluster();
    let mut g = c.benchmark_group("grid_search");
    g.sample_size(10);
    g.bench_function("mepipe_13b_gbs128", |b| {
        b.iter(|| search(Method::Mepipe, &model, &cluster, 128).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench_threaded_pipeline, bench_grid_search);
criterion_main!(benches);
