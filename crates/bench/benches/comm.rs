//! Transport-layer benchmark: the same training iteration on every
//! backend of `mepipe-comm`, so the cost of crossing a real process
//! boundary (serialization + sockets) and of emulated interconnects is
//! measured against the zero-copy in-process baseline. Results are
//! printed and written to `BENCH_comm.json` at the repo root
//! (`scripts/bench_comm.sh`).
//!
//! The emulated rows also report the measured/modeled wire-time ratio
//! from `mepipe_sim::commcheck` — the loop that validates the emulator
//! against the simulator's alpha-beta link model on live traffic.

use std::time::Instant;

use criterion::black_box;
use mepipe_comm::{Backend, TransportConfig};
use mepipe_core::svpp::Mepipe;
use mepipe_hw::LinkSpec;
use mepipe_model::config::TransformerConfig;
use mepipe_schedule::generator::{Dims, ScheduleGenerator};
use mepipe_sim::commcheck::CommCheckReport;
use mepipe_tensor::init::synthetic_tokens;
use mepipe_train::{
    metrics::run_metrics, params::ModelParams, pipeline::WgradMode, PipelineRuntime, RunStats,
};

/// Seconds per iteration: minimum over several samples (same estimator
/// as `train.rs` — interference only ever adds time).
fn time<F: FnMut()>(mut f: F) -> f64 {
    let warm = Instant::now();
    f();
    let once = warm.elapsed().as_secs_f64();
    let per_sample = if once <= 0.0 {
        4
    } else {
        ((0.5 / once) as usize).clamp(1, 8)
    };
    let mut best = f64::INFINITY;
    for _ in 0..5 {
        let start = Instant::now();
        for _ in 0..per_sample {
            f();
        }
        best = best.min(start.elapsed().as_secs_f64() / per_sample as f64);
    }
    best
}

const STAGES: usize = 2;
const SLICES: usize = 4;
const MICRO_BATCHES: usize = 4;

struct Row {
    name: &'static str,
    secs: f64,
    stats: RunStats,
    ratio: Option<f64>,
    recv_wait_s: f64,
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let cfg = TransformerConfig {
        seq_len: 64,
        ..TransformerConfig::tiny(4)
    };
    let sch = Mepipe::new()
        .generate(&Dims::new(STAGES, MICRO_BATCHES).slices(SLICES))
        .unwrap();
    let batch: Vec<Vec<usize>> = (0..MICRO_BATCHES)
        .map(|i| synthetic_tokens(cfg.seq_len + 1, cfg.vocab, 1000 + i as u64))
        .collect();

    let uds_dir = std::env::temp_dir().join(format!("mepipe-bench-comm-{}", std::process::id()));
    let scenarios: Vec<(&'static str, TransportConfig, Option<LinkSpec>)> = vec![
        ("inproc", TransportConfig::in_proc(), None),
        (
            "socket_uds",
            TransportConfig {
                backend: Backend::Uds(uds_dir.clone()),
                ..TransportConfig::default()
            },
            None,
        ),
        (
            "emulated_pcie4",
            TransportConfig::in_proc().with_link(LinkSpec::pcie4()),
            Some(LinkSpec::pcie4()),
        ),
        (
            "emulated_ib100g",
            TransportConfig::in_proc().with_link(LinkSpec::ib_100g()),
            Some(LinkSpec::ib_100g()),
        ),
    ];

    let mut rows = Vec::new();
    for (name, config, link) in scenarios {
        let rt = PipelineRuntime::new(ModelParams::init(cfg, 7), STAGES, 1).with_transport(config);
        let run = || {
            rt.run_iteration(&sch, &batch, WgradMode::DrainOnWait, None)
                .expect("iteration")
        };
        if smoke {
            let stats = run();
            assert!(stats.loss.is_finite(), "{name}: NaN loss");
            println!("smoke: {name} ok, loss {:.4}", stats.loss);
            continue;
        }
        let secs = time(|| {
            black_box(run());
        });
        let stats = run();
        let ratio = link.map(|l| CommCheckReport::from_run(&stats.comm, &l).ratio());
        // Stall time via the unified metrics registry rather than raw
        // CommStats — the same numbers every exporter sees.
        let reg = run_metrics(&stats);
        let recv_wait_s: f64 = (0..STAGES)
            .filter_map(|s| {
                reg.get(
                    "mepipe_comm_recv_wait_seconds_total",
                    &[("stage", s.to_string())],
                )
            })
            .sum();
        rows.push(Row {
            name,
            secs,
            stats,
            ratio,
            recv_wait_s,
        });
    }
    let _ = std::fs::remove_dir_all(&uds_dir);
    if smoke {
        return;
    }

    let base = rows[0].secs;
    println!(
        "== transport backends: p={STAGES} slices={SLICES} n={MICRO_BATCHES} seq={} ==",
        cfg.seq_len
    );
    let mut entries = Vec::new();
    for r in &rows {
        let total = r
            .stats
            .comm
            .iter()
            .map(|c| c.total())
            .fold(mepipe_comm::LinkStats::default(), |a, l| a.merged(&l));
        let ratio_txt = r
            .ratio
            .map(|x| format!(", wire measured/modeled {x:.2}x"))
            .unwrap_or_default();
        println!(
            "  {:>16}: {:7.1} ms/iter ({:.2}x inproc), {} msgs, {} KiB, recv-wait {:.1} ms{}",
            r.name,
            r.secs * 1e3,
            r.secs / base,
            total.tx_messages,
            total.tx_bytes / 1024,
            r.recv_wait_s * 1e3,
            ratio_txt
        );
        entries.push(format!(
            "    \"{}\": {{\"secs_per_iter\": {:.6}, \"vs_inproc\": {:.4}, \"tx_messages\": {}, \"tx_bytes\": {}, \"retries\": {}, \"recv_wait_s\": {:.6}, \"wire_measured_over_modeled\": {}}}",
            r.name,
            r.secs,
            r.secs / base,
            total.tx_messages,
            total.tx_bytes,
            total.retries,
            r.recv_wait_s,
            r.ratio.map(|x| format!("{x:.4}")).unwrap_or_else(|| "null".into()),
        ));
    }
    let json = format!(
        "{{\n  \"config\": {{\"stages\": {STAGES}, \"slices\": {SLICES}, \"micro_batches\": {MICRO_BATCHES}, \"seq_len\": {}, \"layers\": {}, \"wgrad_mode\": \"drain_on_wait\"}},\n  \"backends\": {{\n{}\n  }}\n}}\n",
        cfg.seq_len,
        cfg.layers,
        entries.join(",\n"),
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_comm.json");
    std::fs::write(out, &json).expect("write BENCH_comm.json");
    println!("wrote {out}");
}
