//! Transport-layer benchmark: the same training iteration on every
//! backend of `mepipe-comm`, so the cost of crossing a real process
//! boundary (serialization + sockets) and of emulated interconnects is
//! measured against the zero-copy in-process baseline. Results are
//! printed and written to `BENCH_comm.json` at the repo root
//! (`scripts/bench_comm.sh`).
//!
//! The emulated rows also report the measured/modeled wire-time ratio
//! from `mepipe_sim::commcheck` — the loop that validates the emulator
//! against the simulator's alpha-beta link model on live traffic.

use std::time::Instant;

use criterion::black_box;
use mepipe_comm::{Backend, CodecId, TransportConfig};
use mepipe_core::svpp::Mepipe;
use mepipe_hw::LinkSpec;
use mepipe_model::config::TransformerConfig;
use mepipe_schedule::generator::{Dims, ScheduleGenerator};
use mepipe_sim::commcheck::CommCheckReport;
use mepipe_tensor::init::synthetic_tokens;
use mepipe_train::{
    metrics::run_metrics, params::ModelParams, pipeline::WgradMode, PipelineRuntime, RunStats,
};

/// Seconds per iteration: minimum over several samples (same estimator
/// as `train.rs` — interference only ever adds time).
fn time<F: FnMut()>(mut f: F) -> f64 {
    let warm = Instant::now();
    f();
    let once = warm.elapsed().as_secs_f64();
    let per_sample = if once <= 0.0 {
        4
    } else {
        ((0.5 / once) as usize).clamp(1, 8)
    };
    let mut best = f64::INFINITY;
    for _ in 0..5 {
        let start = Instant::now();
        for _ in 0..per_sample {
            f();
        }
        best = best.min(start.elapsed().as_secs_f64() / per_sample as f64);
    }
    best
}

const STAGES: usize = 2;
const SLICES: usize = 4;
const MICRO_BATCHES: usize = 4;

struct Row {
    name: &'static str,
    secs: f64,
    stats: RunStats,
    ratio: Option<f64>,
    recv_wait_s: f64,
}

/// `--gate`: the perf regression gate `scripts/check.sh` runs. Asserts
/// (a) socket_uds stays within GATE_RATIO of inproc (best ratio over a
/// few attempts — interference only ever slows a backend down) and
/// (b) bf16 codec parity: socket and in-process runs under the bf16
/// codec produce bit-identical losses. Exits nonzero on failure.
const GATE_RATIO: f64 = 1.10;
const GATE_ATTEMPTS: usize = 4;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let gate = std::env::args().any(|a| a == "--gate");
    let cfg = TransformerConfig {
        seq_len: 64,
        ..TransformerConfig::tiny(4)
    };
    let sch = Mepipe::new()
        .generate(&Dims::new(STAGES, MICRO_BATCHES).slices(SLICES))
        .unwrap();
    let batch: Vec<Vec<usize>> = (0..MICRO_BATCHES)
        .map(|i| synthetic_tokens(cfg.seq_len + 1, cfg.vocab, 1000 + i as u64))
        .collect();

    let uds_dir = std::env::temp_dir().join(format!("mepipe-bench-comm-{}", std::process::id()));
    let uds = |codec: CodecId| {
        TransportConfig {
            backend: Backend::Uds(uds_dir.clone()),
            ..TransportConfig::default()
        }
        .with_codec(codec)
    };

    if gate {
        run_gate(&cfg, &sch, &batch, &uds(CodecId::F32), &uds(CodecId::Bf16));
        let _ = std::fs::remove_dir_all(&uds_dir);
        return;
    }

    let scenarios: Vec<(&'static str, TransportConfig, Option<LinkSpec>)> = vec![
        ("inproc", TransportConfig::in_proc(), None),
        ("socket_uds", uds(CodecId::F32), None),
        ("socket_uds_bf16", uds(CodecId::Bf16), None),
        (
            "inproc_bf16",
            TransportConfig::in_proc().with_codec(CodecId::Bf16),
            None,
        ),
        (
            "emulated_pcie4",
            TransportConfig::in_proc().with_link(LinkSpec::pcie4()),
            Some(LinkSpec::pcie4()),
        ),
        (
            "emulated_ib100g",
            TransportConfig::in_proc().with_link(LinkSpec::ib_100g()),
            Some(LinkSpec::ib_100g()),
        ),
    ];

    let mut rows = Vec::new();
    for (name, config, link) in scenarios {
        let rt = PipelineRuntime::new(ModelParams::init(cfg, 7), STAGES, 1).with_transport(config);
        let run = || {
            rt.run_iteration(&sch, &batch, WgradMode::DrainOnWait, None)
                .expect("iteration")
        };
        if smoke {
            let stats = run();
            assert!(stats.loss.is_finite(), "{name}: NaN loss");
            println!("smoke: {name} ok, loss {:.4}", stats.loss);
            continue;
        }
        let secs = time(|| {
            black_box(run());
        });
        let stats = run();
        let ratio = link.map(|l| CommCheckReport::from_run(&stats.comm, &l).ratio());
        // Stall time via the unified metrics registry rather than raw
        // CommStats — the same numbers every exporter sees.
        let reg = run_metrics(&stats);
        let recv_wait_s: f64 = (0..STAGES)
            .filter_map(|s| {
                reg.get(
                    "mepipe_comm_recv_wait_seconds_total",
                    &[("stage", s.to_string())],
                )
            })
            .sum();
        rows.push(Row {
            name,
            secs,
            stats,
            ratio,
            recv_wait_s,
        });
    }
    let _ = std::fs::remove_dir_all(&uds_dir);
    if smoke {
        return;
    }

    let base = rows[0].secs;
    println!(
        "== transport backends: p={STAGES} slices={SLICES} n={MICRO_BATCHES} seq={} ==",
        cfg.seq_len
    );
    let mut entries = Vec::new();
    for r in &rows {
        let total = r
            .stats
            .comm
            .iter()
            .map(|c| c.total())
            .fold(mepipe_comm::LinkStats::default(), |a, l| a.merged(&l));
        let ratio_txt = r
            .ratio
            .map(|x| format!(", wire measured/modeled {x:.2}x"))
            .unwrap_or_default();
        println!(
            "  {:>16}: {:7.1} ms/iter ({:.2}x inproc), {} msgs, {} KiB, recv-wait {:.1} ms{}",
            r.name,
            r.secs * 1e3,
            r.secs / base,
            total.tx_messages,
            total.tx_bytes / 1024,
            r.recv_wait_s * 1e3,
            ratio_txt
        );
        // `wire_measured_over_modeled` only exists for emulated links —
        // non-emulated rows omit the key entirely rather than carrying a
        // null downstream consumers would have to special-case.
        let ratio_field = r
            .ratio
            .map(|x| format!(", \"wire_measured_over_modeled\": {x:.4}"))
            .unwrap_or_default();
        entries.push(format!(
            "    \"{}\": {{\"secs_per_iter\": {:.6}, \"vs_inproc\": {:.4}, \"tx_messages\": {}, \"tx_bytes\": {}, \"retries\": {}, \"recv_wait_s\": {:.6}, \"payload_precodec_bytes\": {}, \"payload_postcodec_bytes\": {}, \"encode_overlap_s\": {:.6}{}}}",
            r.name,
            r.secs,
            r.secs / base,
            total.tx_messages,
            total.tx_bytes,
            total.retries,
            r.recv_wait_s,
            total.payload_bytes_precodec,
            total.payload_bytes_postcodec,
            total.encode_overlap_ns as f64 * 1e-9,
            ratio_field,
        ));
    }
    let json = format!(
        "{{\n  \"config\": {{\"stages\": {STAGES}, \"slices\": {SLICES}, \"micro_batches\": {MICRO_BATCHES}, \"seq_len\": {}, \"layers\": {}, \"wgrad_mode\": \"drain_on_wait\"}},\n  \"backends\": {{\n{}\n  }}\n}}\n",
        cfg.seq_len,
        cfg.layers,
        entries.join(",\n"),
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_comm.json");
    std::fs::write(out, &json).expect("write BENCH_comm.json");
    println!("wrote {out}");
}

fn run_gate(
    cfg: &TransformerConfig,
    sch: &mepipe_schedule::ir::Schedule,
    batch: &[Vec<usize>],
    uds_f32: &TransportConfig,
    uds_bf16: &TransportConfig,
) {
    let iterate = |config: TransportConfig| {
        let rt = PipelineRuntime::new(ModelParams::init(*cfg, 7), STAGES, 1).with_transport(config);
        move || {
            rt.run_iteration(sch, batch, WgradMode::DrainOnWait, None)
                .expect("iteration")
        }
    };

    // (a) perf: best ratio over a few attempts beats noise on a busy box.
    let mut best = f64::INFINITY;
    for attempt in 1..=GATE_ATTEMPTS {
        let inproc = time(|| {
            black_box(iterate(TransportConfig::in_proc())());
        });
        let socket = time(|| {
            black_box(iterate(uds_f32.clone())());
        });
        let ratio = socket / inproc;
        best = best.min(ratio);
        println!(
            "gate attempt {attempt}: socket_uds {:.1} ms vs inproc {:.1} ms = {ratio:.3}x (best {best:.3}x)",
            socket * 1e3,
            inproc * 1e3
        );
        if best <= GATE_RATIO {
            break;
        }
    }
    assert!(
        best <= GATE_RATIO,
        "perf gate FAILED: socket_uds is {best:.3}x inproc (limit {GATE_RATIO}x)"
    );

    // (b) codec parity: bf16 over the socket matches bf16 in process
    // bit for bit (the in-process backend round-trips lossy codecs).
    let socket_bf16 = iterate(uds_bf16.clone())();
    let inproc_bf16 = iterate(TransportConfig::in_proc().with_codec(CodecId::Bf16))();
    assert_eq!(
        socket_bf16.loss.to_bits(),
        inproc_bf16.loss.to_bits(),
        "codec parity gate FAILED: bf16 loss differs between socket and inproc"
    );
    assert_eq!(
        socket_bf16.grads.max_abs_diff(&inproc_bf16.grads),
        0.0,
        "codec parity gate FAILED: bf16 grads differ between socket and inproc"
    );
    let total = socket_bf16
        .comm
        .iter()
        .map(|c| c.total())
        .fold(mepipe_comm::LinkStats::default(), |a, l| a.merged(&l));
    assert!(
        total.payload_bytes_postcodec < total.payload_bytes_precodec,
        "codec parity gate FAILED: bf16 did not shrink the wire payload"
    );
    println!(
        "gate: perf {best:.3}x <= {GATE_RATIO}x, bf16 parity ok ({} -> {} payload bytes)",
        total.payload_bytes_precodec, total.payload_bytes_postcodec
    );
}
