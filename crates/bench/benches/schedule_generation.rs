//! Benchmarks for schedule generation: SVPP greedy construction and every
//! baseline generator at realistic sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mepipe_core::svpp::{generate_svpp, generate_svpp_split, SvppConfig};
use mepipe_schedule::baselines;

fn bench_svpp(c: &mut Criterion) {
    let mut g = c.benchmark_group("svpp_generation");
    for (p, v, s, n) in [(8usize, 1usize, 4usize, 16usize), (8, 2, 4, 16), (16, 1, 16, 32)] {
        let cfg = SvppConfig {
            stages: p,
            virtual_chunks: v,
            slices: s,
            micro_batches: n,
            warmup_cap: None,
        };
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("p{p}v{v}s{s}n{n}")),
            &cfg,
            |b, cfg| b.iter(|| generate_svpp(cfg).unwrap()),
        );
    }
    g.finish();
}

fn bench_baselines(c: &mut Criterion) {
    let mut g = c.benchmark_group("baseline_generation");
    g.bench_function("dapple_p8_n16", |b| {
        b.iter(|| baselines::generate_dapple(8, 16).unwrap())
    });
    g.bench_function("vpp_p8_v2_n16", |b| {
        b.iter(|| baselines::generate_vpp(8, 2, 16).unwrap())
    });
    g.bench_function("terapipe_p8_n16_s4", |b| {
        b.iter(|| baselines::generate_terapipe(8, 16, 4).unwrap())
    });
    g.bench_function("zbv_p8_n16", |b| b.iter(|| baselines::generate_zbv(8, 16).unwrap()));
    g.finish();
}

fn bench_split(c: &mut Criterion) {
    let cfg = SvppConfig {
        stages: 8,
        virtual_chunks: 1,
        slices: 4,
        micro_batches: 16,
        warmup_cap: None,
    };
    c.bench_function("mepipe_split_p8_s4_n16", |b| {
        b.iter(|| generate_svpp_split(&cfg).unwrap())
    });
}

criterion_group!(benches, bench_svpp, bench_baselines, bench_split);
criterion_main!(benches);
