//! Benchmarks for schedule generation: SVPP greedy construction and every
//! baseline generator at realistic sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mepipe_core::svpp::{Mepipe, Svpp};
use mepipe_schedule::generator::{Dapple, Dims, ScheduleGenerator, TeraPipe, Vpp, Zbv};

fn bench_svpp(c: &mut Criterion) {
    let mut g = c.benchmark_group("svpp_generation");
    for (p, v, s, n) in [
        (8usize, 1usize, 4usize, 16usize),
        (8, 2, 4, 16),
        (16, 1, 16, 32),
    ] {
        let dims = Dims::new(p, n).virtual_chunks(v).slices(s);
        g.bench_with_input(BenchmarkId::from_parameter(dims), &dims, |b, dims| {
            b.iter(|| Svpp::new().generate(dims).unwrap())
        });
    }
    g.finish();
}

fn bench_baselines(c: &mut Criterion) {
    let mut g = c.benchmark_group("baseline_generation");
    g.bench_function("dapple_p8_n16", |b| {
        b.iter(|| Dapple.generate(&Dims::new(8, 16)).unwrap())
    });
    g.bench_function("vpp_p8_v2_n16", |b| {
        b.iter(|| Vpp.generate(&Dims::new(8, 16).virtual_chunks(2)).unwrap())
    });
    g.bench_function("terapipe_p8_n16_s4", |b| {
        b.iter(|| TeraPipe.generate(&Dims::new(8, 16).slices(4)).unwrap())
    });
    g.bench_function("zbv_p8_n16", |b| {
        b.iter(|| Zbv.generate(&Dims::new(8, 16).virtual_chunks(2)).unwrap())
    });
    g.finish();
}

fn bench_split(c: &mut Criterion) {
    let dims = Dims::new(8, 16).slices(4);
    c.bench_function("mepipe_split_p8_s4_n16", |b| {
        b.iter(|| Mepipe::new().generate(&dims).unwrap())
    });
}

criterion_group!(benches, bench_svpp, bench_baselines, bench_split);
criterion_main!(benches);
