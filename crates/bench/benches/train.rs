//! End-to-end training-iteration benchmark: the threaded pipeline
//! runtime on a mini-Llama, measured as whole `train_step` iterations.
//! Results are printed and written to `BENCH_train.json` at the repo
//! root (`scripts/bench_train.sh`), alongside the pre-arena baseline
//! that was measured on the same config before the tensor arena landed,
//! so the recorded speedup is a real before/after.

use std::time::{Duration, Instant};

use criterion::black_box;
use mepipe_comm::TransportConfig;
use mepipe_core::{svpp::Mepipe, Synth};
use mepipe_ctl::{Daemon, JobState};
use mepipe_hw::{Fleet, LinkSpec};
use mepipe_model::config::TransformerConfig;
use mepipe_schedule::generator::{Dims, ScheduleGenerator};
use mepipe_schedule::DualPipe;
use mepipe_tensor::init::synthetic_tokens;
use mepipe_trace::metrics::ITERATION_BUCKETS;
use mepipe_trace::{http_get, EventLog, HttpExporter, Level, MetricsRegistry};
use mepipe_train::{
    calibrate::{autotune, Calibrator},
    params::ModelParams,
    pipeline::WgradMode,
    PipelineRuntime,
};

/// Seconds per iteration: the *minimum* over several samples — the
/// noise-robust estimator on a shared machine (interference only ever
/// adds time), matching `kernels.rs`.
fn time<F: FnMut()>(mut f: F) -> f64 {
    let warm = Instant::now();
    f();
    let once = warm.elapsed().as_secs_f64();
    // ~0.5 s per sample, 5 samples (bounded for slow iterations).
    let per_sample = if once <= 0.0 {
        4
    } else {
        ((0.5 / once) as usize).clamp(1, 8)
    };
    let mut best = f64::INFINITY;
    for _ in 0..5 {
        let start = Instant::now();
        for _ in 0..per_sample {
            f();
        }
        best = best.min(start.elapsed().as_secs_f64() / per_sample as f64);
    }
    best
}

/// The benchmark model/pipeline shape. Fixed — the recorded baseline in
/// `BENCH_train.json` was measured on exactly this config, so any change
/// here invalidates the before/after comparison.
const STAGES: usize = 2;
const SLICES: usize = 8;
const MICRO_BATCHES: usize = 4;
const REPLICAS: usize = 2;

/// Pre-arena baseline, measured on this exact config at commit
/// `bbe7e18` (before the tensor arena and copy-elimination work) with
/// the same min-of-5-runs protocol: seconds per iteration.
const BASELINE_STEP_S: f64 = 0.046215; // 46.2 ms, 21.638 iters/s
const BASELINE_DP_S: f64 = 0.047852; // 47.9 ms, 20.898 iters/s

/// Pre-wire-path baseline for the multi-process `launch` scenario
/// (see LAUNCH_ARGS: 4 worker processes over UDS, full wall time
/// including process spawn, mesh rendezvous, the iteration, and the
/// in-process reference run), measured at commit `a19b707` — before the
/// zero-copy wire path: buffer lending, direct-read rx with the
/// multi-peer sweep, inline sends and the lane-parallel checksum — as
/// the min over 12 interleaved before/after launches on the same box.
const BASELINE_LAUNCH_S: f64 = 0.128;

/// The autotune scenario: start at this many slices on an emulated
/// high-latency link, let the calibration loop fit the real wire cost
/// and re-search, and compare iteration time before vs after the swap.
const AUTOTUNE_SLICES: usize = 8;

/// Per-message latency of the emulated link the autotune scenario runs
/// on. At 2 ms/message the wire dominates the model's compute, so the
/// uncalibrated 8-slice schedule (picked for a PCIe-class link) is far
/// from optimal — the regime the paper's cost-model fitting targets.
const AUTOTUNE_LINK: LinkSpec = LinkSpec {
    name: "bench-laggy",
    bandwidth: 1e9,
    latency: 2e-3,
};

/// The launch scenario: 4 stages on 2 cores is the oversubscribed
/// regime where rx wake-up latency and per-message overhead dominate.
const LAUNCH_ARGS: [&str; 9] = [
    "launch",
    "--stages",
    "4",
    "--seq-len",
    "64",
    "--slices",
    "8",
    "--micro-batches",
    "8",
];

fn bench_cfg() -> TransformerConfig {
    TransformerConfig {
        seq_len: 128,
        ..TransformerConfig::tiny(4)
    }
}

fn make_batch(cfg: &TransformerConfig, n: usize) -> Vec<Vec<usize>> {
    (0..n)
        .map(|i| synthetic_tokens(cfg.seq_len + 1, cfg.vocab, 1000 + i as u64))
        .collect()
}

/// Measures the cost of the full observability plane: interleaved
/// min-of-8 seconds per bare `run_iteration` vs one with span tracing
/// enabled *and* the live telemetry a production worker runs per
/// iteration — a latency-histogram observe, a ring-buffered event-log
/// entry, and a fresh Prometheus render published to a live
/// `HttpExporter` (alternating samples, so clock drift, frequency
/// scaling and cache warm-up hit both sides equally), plus the loss
/// bits of each (the whole plane must be bit-invisible). Returns the
/// runtime with tracing off.
fn measure_tracing(
    rt: PipelineRuntime,
    sch: &mepipe_schedule::ir::Schedule,
    batch: &[Vec<usize>],
) -> (PipelineRuntime, f64, f64, u64, u64) {
    let mut rt = rt.with_tracing(false);
    let plain_bits = rt
        .run_iteration(sch, batch, WgradMode::DrainOnWait, None)
        .expect("untraced iteration")
        .loss
        .to_bits();
    rt = rt.with_tracing(true);
    let traced = rt
        .run_iteration(sch, batch, WgradMode::DrainOnWait, None)
        .expect("traced iteration");
    let traced_bits = traced.loss.to_bits();
    assert!(
        traced.trace.as_ref().is_some_and(|t| !t.stages.is_empty()),
        "traced run recorded no spans"
    );
    // The traced side also carries the telemetry a worker publishes per
    // iteration, so `tracing_overhead` prices the whole plane: the
    // exporter thread is live (scraped once below to prove it), the
    // event log is the ring-only flight recorder, and every iteration
    // renders + publishes the registry.
    let exporter = HttpExporter::spawn("127.0.0.1:0").expect("bind bench exporter");
    let mut events = EventLog::silent("bench");
    let mut reg = MetricsRegistry::new();
    let obs_labels: [(&str, String); 1] = [("stage", "0".to_string())];
    let mut iter: u64 = 0;
    // Warm-up sized the sample count; one runtime (same warm arena) does
    // both sides, alternating per round.
    rt = rt.with_tracing(false);
    let once = Instant::now();
    let _ = rt.run_iteration(sch, batch, WgradMode::DrainOnWait, None);
    let secs_once = once.elapsed().as_secs_f64();
    let per_sample = if secs_once <= 0.0 {
        4
    } else {
        ((0.5 / secs_once) as usize).clamp(1, 8)
    };
    // 8 rounds rather than time()'s 5: the two mins are differenced, so
    // the estimate needs both sides to have hit their noise floor.
    let mut t_plain = f64::INFINITY;
    let mut t_traced = f64::INFINITY;
    for _ in 0..8 {
        rt = rt.with_tracing(false);
        let start = Instant::now();
        for _ in 0..per_sample {
            black_box(rt.run_iteration(sch, batch, WgradMode::DrainOnWait, None))
                .expect("untraced iteration");
        }
        t_plain = t_plain.min(start.elapsed().as_secs_f64() / per_sample as f64);
        rt = rt.with_tracing(true);
        let start = Instant::now();
        for _ in 0..per_sample {
            let t0 = Instant::now();
            black_box(rt.run_iteration(sch, batch, WgradMode::DrainOnWait, None))
                .expect("traced iteration");
            iter += 1;
            reg.observe(
                "mepipe_bench_iteration_seconds",
                "bench iteration latency",
                &obs_labels,
                &ITERATION_BUCKETS,
                t0.elapsed().as_secs_f64(),
            );
            reg.counter(
                "mepipe_bench_iterations_total",
                "bench iterations finished",
                &obs_labels,
                1.0,
            );
            events.event(
                Level::Info,
                None,
                Some(0),
                "iteration",
                &[("iter", iter.to_string())],
            );
            exporter.publish_metrics(reg.to_prometheus_text());
            exporter.publish_status(format!("{{\"completed\":{iter}}}"));
        }
        t_traced = t_traced.min(start.elapsed().as_secs_f64() / per_sample as f64);
    }
    // The endpoint the overhead number paid for must actually answer.
    let (code, body) = http_get(
        &exporter.addr().to_string(),
        "/metrics",
        Duration::from_secs(5),
    )
    .expect("scrape bench exporter");
    assert_eq!(code, 200, "bench exporter scrape failed");
    assert!(
        body.contains("mepipe_bench_iterations_total"),
        "scrape missing bench counter"
    );
    (
        rt.with_tracing(false),
        t_plain,
        t_traced,
        plain_bits,
        traced_bits,
    )
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let cfg = bench_cfg();
    let batch = make_batch(&cfg, MICRO_BATCHES);

    // --- Scenario 1: multi-stage train_step (MEPipe schedule, drained
    // weight gradients — the paper's Section 5 execution mode). ---
    let sch = Mepipe::new()
        .generate(&Dims::new(STAGES, MICRO_BATCHES).slices(SLICES))
        .unwrap();
    let mut rt = PipelineRuntime::new(ModelParams::init(cfg, 7), STAGES, 1);

    if smoke {
        // One iteration, no timing JSON — the check.sh smoke path — plus
        // the observability-overhead bound: enabled tracing, the event
        // log and a live metrics exporter must not change the loss bits
        // and must cost only a few percent.
        let stats = rt
            .train_step(&sch, &batch, WgradMode::DrainOnWait, 0.05)
            .expect("smoke iteration");
        assert!(stats.loss.is_finite(), "smoke iteration produced NaN loss");
        println!("smoke: train_step ok, loss {:.4}", stats.loss);
        let (_, t_plain, t_traced, plain_bits, traced_bits) = measure_tracing(rt, &sch, &batch);
        assert_eq!(plain_bits, traced_bits, "tracing changed the loss bits");
        let overhead = t_traced / t_plain - 1.0;
        println!(
            "smoke: tracing+telemetry overhead {:.2}% ({:.1} -> {:.1} ms/iter)",
            overhead * 100.0,
            t_plain * 1e3,
            t_traced * 1e3
        );
        assert!(
            overhead < 0.05,
            "tracing + live telemetry costs {:.1}% (> 5%)",
            overhead * 100.0
        );
        return;
    }

    let t_step = time(|| {
        black_box(rt.train_step(&sch, &batch, WgradMode::DrainOnWait, 0.05)).expect("train_step");
    });
    // One extra measured iteration for the steady-state stats: peak
    // bytes per stage and the arena hit rate with warm free lists.
    let stats = rt
        .run_iteration(&sch, &batch, WgradMode::DrainOnWait, None)
        .expect("measured iteration");
    let arena = stats
        .arena
        .iter()
        .fold(mepipe_tensor::ArenaStats::default(), |a, s| a.merged(s));
    let iters_per_sec = 1.0 / t_step;
    println!(
        "== train_step p={STAGES} slices={SLICES} n={MICRO_BATCHES} seq={} ==",
        cfg.seq_len
    );
    println!(
        "  {:.1} ms/iter ({iters_per_sec:.3} iters/s), peak bytes {:?}",
        t_step * 1e3,
        stats.peak_bytes
    );
    println!(
        "  arena: {:.1}% hit rate ({} hits / {} misses), baseline {:.1} ms/iter -> {:.2}x",
        arena.hit_rate() * 100.0,
        arena.hits,
        arena.misses,
        BASELINE_STEP_S * 1e3,
        BASELINE_STEP_S / t_step
    );

    // --- Observability overhead: the same iteration with span recording
    // on plus the per-iteration telemetry (histogram observe, event-log
    // ring push, Prometheus render published to a live exporter).
    // Recorded in BENCH_train.json so regressions anywhere on the
    // plane's hot path show up here. ---
    let (rt, t_plain, t_traced, plain_bits, traced_bits) = measure_tracing(rt, &sch, &batch);
    assert_eq!(plain_bits, traced_bits, "tracing changed the loss bits");
    let tracing_overhead = t_traced / t_plain - 1.0;
    println!(
        "  tracing: {:.1} -> {:.1} ms/iter with spans + live telemetry on ({:+.2}% overhead)",
        t_plain * 1e3,
        t_traced * 1e3,
        tracing_overhead * 100.0
    );

    // --- Scenario 2: data parallelism over pipeline replicas. ---
    let dp_sch = Mepipe::new()
        .generate(&Dims::new(STAGES, MICRO_BATCHES / REPLICAS).slices(SLICES))
        .unwrap();
    let t_dp = time(|| {
        black_box(rt.run_data_parallel(&dp_sch, &batch, REPLICAS, WgradMode::DrainOnWait))
            .expect("data-parallel iteration");
    });
    println!("== data parallel replicas={REPLICAS} ==");
    println!(
        "  {:.1} ms/iter ({:.3} iters/s), baseline {:.1} ms/iter -> {:.2}x",
        t_dp * 1e3,
        1.0 / t_dp,
        BASELINE_DP_S * 1e3,
        BASELINE_DP_S / t_dp
    );

    // --- Scenario 2b: best synthesized schedule vs the SVPP template on
    // the same model — the end-to-end check that the synthesis layer's
    // simulated win survives the real threaded runtime. Two synthesized
    // tiers compete (fig8's "best synthesized" logic): the order solver,
    // which keeps SVPP's shape (v=1, same slicing, same runtime) and
    // only reorders per-worker ops, and DualPipe bidirectional (v=2,
    // its own two-chunk runtime). Interleaved min-of-5 on all sides —
    // drift and interference hit every schedule equally. ---
    let solver_sch = Synth::new()
        .generate(&Dims::new(STAGES, MICRO_BATCHES).slices(SLICES))
        .unwrap();
    let dual_sch = DualPipe::new()
        .generate(
            &Dims::new(STAGES, MICRO_BATCHES)
                .virtual_chunks(2)
                .slices(SLICES),
        )
        .unwrap();
    let dual_rt = PipelineRuntime::new(ModelParams::init(cfg, 7), STAGES, 2);
    let once = Instant::now();
    let _ = dual_rt.run_iteration(&dual_sch, &batch, WgradMode::DrainOnWait, None);
    let secs_once = once.elapsed().as_secs_f64();
    let per_sample = if secs_once <= 0.0 {
        4
    } else {
        ((0.5 / secs_once) as usize).clamp(1, 8)
    };
    let mut t_svpp = f64::INFINITY;
    let mut t_solver = f64::INFINITY;
    let mut t_dual = f64::INFINITY;
    for _ in 0..5 {
        let start = Instant::now();
        for _ in 0..per_sample {
            black_box(rt.run_iteration(&sch, &batch, WgradMode::DrainOnWait, None))
                .expect("svpp iteration");
        }
        t_svpp = t_svpp.min(start.elapsed().as_secs_f64() / per_sample as f64);
        let start = Instant::now();
        for _ in 0..per_sample {
            black_box(rt.run_iteration(&solver_sch, &batch, WgradMode::DrainOnWait, None))
                .expect("solver iteration");
        }
        t_solver = t_solver.min(start.elapsed().as_secs_f64() / per_sample as f64);
        let start = Instant::now();
        for _ in 0..per_sample {
            black_box(dual_rt.run_iteration(&dual_sch, &batch, WgradMode::DrainOnWait, None))
                .expect("dualpipe iteration");
        }
        t_dual = t_dual.min(start.elapsed().as_secs_f64() / per_sample as f64);
    }
    let (synth_name, t_synth) = if t_solver <= t_dual {
        ("solver", t_solver)
    } else {
        ("dualpipe", t_dual)
    };
    let synth_speedup = t_svpp / t_synth;
    println!("== best synthesized vs svpp ==");
    println!(
        "  svpp {:.1} ms/iter, solver {:.1} ms/iter, dualpipe {:.1} ms/iter -> best ({synth_name}) = {synth_speedup:.2}x",
        t_svpp * 1e3,
        t_solver * 1e3,
        t_dual * 1e3
    );

    // --- Scenario 3: multi-process `launch` — real worker processes
    // over Unix sockets, full wall time per launch (spawn + rendezvous +
    // iteration + in-process bit-identity reference). The worker binary
    // is built by `cargo build --release`; when it is missing (bare
    // `cargo bench` without a prior build) the row records null. ---
    let worker_bin = std::env::current_exe()
        .ok()
        .and_then(|p| Some(p.parent()?.parent()?.join("mepipe-worker")))
        .filter(|p| p.exists());
    let t_launch = worker_bin.as_ref().map(|bin| {
        time(|| {
            let status = std::process::Command::new(bin)
                .args(LAUNCH_ARGS)
                .stdout(std::process::Stdio::null())
                .status()
                .expect("run mepipe-worker launch");
            assert!(status.success(), "mepipe-worker launch failed");
        })
    });
    match t_launch {
        Some(t) => println!(
            "== multi-process launch stages=4 ==\n  {:.1} ms/launch, baseline {:.1} ms -> {:.2}x",
            t * 1e3,
            BASELINE_LAUNCH_S * 1e3,
            BASELINE_LAUNCH_S / t
        ),
        None => println!("== multi-process launch skipped (mepipe-worker not built) =="),
    }
    let launch_s = t_launch
        .map(|t| format!("{t:.6}"))
        .unwrap_or_else(|| "null".into());
    let launch_speedup = t_launch
        .map(|t| format!("{:.4}", BASELINE_LAUNCH_S / t))
        .unwrap_or_else(|| "null".into());

    // --- Scenario 4: online autotuning on an emulated high-latency
    // link. The job starts on the schedule the offline (datasheet-cost)
    // search would pick — 8 slices, right for PCIe, wrong for a 2 ms
    // wire — then the calibration loop fits the measured spans,
    // re-searches, and hot-swaps. Before/after on the same runtime; the
    // speedup is the headline `autotune_speedup`. ---
    // Milliseconds-per-GEMM model: big enough that the datasheet prior
    // is decisively wrong on compute too, so the convergence assertion
    // is not decided by noise on µs-scale spans.
    let at_cfg = TransformerConfig {
        seq_len: 32,
        hidden: 256,
        ffn_hidden: 512,
        ..TransformerConfig::tiny(4)
    };
    let at_batch = make_batch(&at_cfg, MICRO_BATCHES);
    let at_sch = Mepipe::new()
        .generate(&Dims::new(STAGES, MICRO_BATCHES).slices(AUTOTUNE_SLICES))
        .unwrap();
    let mut at_rt = PipelineRuntime::new(ModelParams::init(at_cfg, 7), STAGES, 1)
        .with_transport(TransportConfig::in_proc().with_link(AUTOTUNE_LINK));
    let t_at_before = time(|| {
        black_box(at_rt.run_iteration(&at_sch, &at_batch, WgradMode::DrainOnWait, None))
            .expect("pre-autotune iteration");
    });
    at_rt = at_rt.with_tracing(true);
    let prior = Calibrator::prior_for(&at_cfg, STAGES, AUTOTUNE_SLICES, MICRO_BATCHES)
        .expect("autotune prior");
    let out = autotune(
        &at_rt,
        &at_sch,
        &at_batch,
        WgradMode::DrainOnWait,
        prior,
        2,
        1,
    )
    .expect("autotune loop");
    assert!(
        out.report.is_strictly_decreasing(),
        "calibration error did not shrink:\n{}",
        out.report.render()
    );
    let proposal = out.proposal.expect("calibrated search proposes a schedule");
    at_rt = at_rt.with_tracing(false);
    let t_at_after = time(|| {
        black_box(at_rt.run_iteration(&proposal.schedule, &at_batch, WgradMode::DrainOnWait, None))
            .expect("post-autotune iteration");
    });
    let autotune_speedup = t_at_before / t_at_after;
    let at_err_first = out.report.rounds.first().expect("round 0").mean_rel_error;
    let at_err_last = out.report.rounds.last().expect("last round").mean_rel_error;
    println!(
        "== autotune on a {:.0} ms/message emulated link ==",
        AUTOTUNE_LINK.latency * 1e3
    );
    println!(
        "  {:.1} ms/iter at {AUTOTUNE_SLICES} slices -> {:.1} ms/iter at {} slices (warmup {}) = {autotune_speedup:.2}x",
        t_at_before * 1e3,
        t_at_after * 1e3,
        proposal.slices,
        proposal.warmup
    );
    println!(
        "  model error {at_err_first:.4} -> {at_err_last:.4} over {} rounds",
        out.report.rounds.len()
    );

    // --- Scenario 5: failure recovery through the control plane. The
    // same 6-iteration job runs twice under `mepipe-ctl`'s daemon on a
    // 1-node fleet: once clean, once with stage 1 chaos-killed at
    // iteration 3. With checkpoints every 2 iterations the chaotic run
    // restarts from iteration 2 and re-runs at most one interval;
    // `recovery_overhead` is the wall-clock price of that detection +
    // restart + re-run, as a fraction of the clean run. ---
    let recovery = worker_bin.as_ref().map(|bin| {
        let out =
            std::env::temp_dir().join(format!("mepipe-bench-recovery-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&out);
        let run = |name: &str, chaos: &str| {
            let mut d = Daemon::new(Fleet::homogeneous(1, 2), bin.clone(), out.join(name))
                .expect("recovery daemon");
            d.submit(&format!(
                "name = \"{name}\"\niters = 6\nstages = 2\nlayers = 4\nmicro_batches = 2\n\
                 slices = 2\nseq_len = 16\ncheckpoint_interval = 2\n{chaos}"
            ))
            .expect("submit recovery job");
            let start = Instant::now();
            while !d.all_done() {
                d.tick();
                std::thread::sleep(Duration::from_millis(5));
            }
            let wall = start.elapsed().as_secs_f64();
            let job = &d.jobs()[0];
            assert_eq!(job.state, JobState::Completed, "{}", d.status_text());
            assert_eq!(job.lost_beyond, 0, "recovery re-ran more than one interval");
            (wall, job.restarts, job.lost_iters)
        };
        let (t_clean, r_clean, _) = run("clean", "");
        assert_eq!(r_clean, 0, "clean run restarted");
        let (t_chaos, r_chaos, lost) = run("chaotic", "kill_stage = 1\nkill_at_iter = 3\n");
        assert_eq!(r_chaos, 1, "chaos run must restart exactly once");
        let _ = std::fs::remove_dir_all(&out);
        (t_clean, t_chaos, lost)
    });
    match recovery {
        Some((t_clean, t_chaos, lost)) => println!(
            "== chaos recovery (kill stage 1 at iter 3, ckpt interval 2) ==\n  clean {:.1} ms, killed {:.1} ms ({} iters re-run) -> {:+.1}% overhead",
            t_clean * 1e3,
            t_chaos * 1e3,
            lost,
            (t_chaos / t_clean - 1.0) * 100.0
        ),
        None => println!("== chaos recovery skipped (mepipe-worker not built) =="),
    }
    let (recovery_clean_s, recovery_chaos_s, recovery_lost, recovery_overhead) = match recovery {
        Some((tc, tk, lost)) => (
            format!("{tc:.6}"),
            format!("{tk:.6}"),
            lost.to_string(),
            format!("{:.4}", tk / tc - 1.0),
        ),
        None => ("null".into(), "null".into(), "null".into(), "null".into()),
    };

    let json = format!(
        "{{\n  \"config\": {{\"stages\": {STAGES}, \"slices\": {SLICES}, \"micro_batches\": {MICRO_BATCHES}, \"seq_len\": {}, \"layers\": {}, \"hidden\": {}, \"replicas\": {REPLICAS}, \"wgrad_mode\": \"drain_on_wait\"}},\n  \"baseline\": {{\n    \"commit\": \"bbe7e18\",\n    \"train_step_s\": {BASELINE_STEP_S:.6},\n    \"train_step_iters_per_sec\": {:.4},\n    \"data_parallel_s\": {BASELINE_DP_S:.6},\n    \"data_parallel_iters_per_sec\": {:.4}\n  }},\n  \"current\": {{\n    \"train_step_s\": {t_step:.6},\n    \"train_step_iters_per_sec\": {iters_per_sec:.4},\n    \"train_step_speedup\": {:.4},\n    \"peak_bytes\": {:?},\n    \"arena_hit_rate\": {:.4},\n    \"arena_hits\": {},\n    \"arena_misses\": {},\n    \"tracing_untraced_s\": {t_plain:.6},\n    \"tracing_traced_s\": {t_traced:.6},\n    \"tracing_overhead\": {tracing_overhead:.4},\n    \"data_parallel_s\": {t_dp:.6},\n    \"data_parallel_iters_per_sec\": {:.4},\n    \"data_parallel_speedup\": {:.4},\n    \"launch_s\": {launch_s},\n    \"launch_baseline_s\": {BASELINE_LAUNCH_S:.6},\n    \"launch_speedup\": {launch_speedup},\n    \"autotune_link_latency_s\": {:.6},\n    \"autotune_before_s\": {t_at_before:.6},\n    \"autotune_after_s\": {t_at_after:.6},\n    \"autotune_slices_before\": {AUTOTUNE_SLICES},\n    \"autotune_slices_after\": {},\n    \"autotune_warmup\": {},\n    \"autotune_rescheduled\": {},\n    \"autotune_error_first\": {at_err_first:.4},\n    \"autotune_error_last\": {at_err_last:.4},\n    \"autotune_speedup\": {autotune_speedup:.4},\n    \"recovery_clean_s\": {recovery_clean_s},\n    \"recovery_chaos_s\": {recovery_chaos_s},\n    \"recovery_lost_iterations\": {recovery_lost},\n    \"recovery_overhead\": {recovery_overhead},\n    \"synthesized_vs_svpp\": {{\"schedule\": \"{synth_name}\", \"svpp_s\": {t_svpp:.6}, \"solver_s\": {t_solver:.6}, \"dualpipe_s\": {t_dual:.6}, \"synthesized_s\": {t_synth:.6}, \"speedup\": {synth_speedup:.4}}}\n  }}\n}}\n",
        cfg.seq_len,
        cfg.layers,
        cfg.hidden,
        1.0 / BASELINE_STEP_S,
        1.0 / BASELINE_DP_S,
        BASELINE_STEP_S / t_step,
        stats.peak_bytes,
        arena.hit_rate(),
        arena.hits,
        arena.misses,
        1.0 / t_dp,
        BASELINE_DP_S / t_dp,
        AUTOTUNE_LINK.latency,
        proposal.slices,
        proposal.warmup,
        proposal.rescheduled,
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_train.json");
    std::fs::write(out, &json).expect("write BENCH_train.json");
    println!("wrote {out}");
}
