//! Search-engine throughput: the Figure 8 GBS-64 grid (all five
//! methods, Llama-13B, 64x RTX 4090) through three code paths:
//!
//! * `serial_exhaustive` — the reference: every candidate generated and
//!   simulated, no pruning, no caching;
//! * `engine_cold` — a fresh [`SearchEngine`] per iteration: analytic
//!   pre-pass + branch-and-bound pruning, empty caches;
//! * `engine_warm` — one engine across iterations, the experiment-grid
//!   regime where memoization answers everything.
//!
//! The acceptance target for this PR is `engine_cold` ≥ 3x faster than
//! `serial_exhaustive` on this grid.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mepipe_hw::topology::ClusterSpec;
use mepipe_model::config::TransformerConfig;
use mepipe_strategy::{search_serial, Method, SearchEngine};

fn bench_search(c: &mut Criterion) {
    let model = TransformerConfig::llama2_13b();
    let cluster = ClusterSpec::rtx4090_cluster();
    let gbs = 64;

    let mut group = c.benchmark_group("search_fig8_gbs64");
    group.sample_size(10);
    group.bench_function("serial_exhaustive", |b| {
        b.iter(|| {
            for m in Method::all() {
                black_box(search_serial(m, &model, &cluster, black_box(gbs)));
            }
        })
    });
    group.bench_function("engine_cold", |b| {
        b.iter(|| {
            let engine = SearchEngine::new();
            black_box(engine.search_all(&model, &cluster, black_box(gbs)))
        })
    });
    let warm = SearchEngine::new();
    group.bench_function("engine_warm", |b| {
        b.iter(|| black_box(warm.search_all(&model, &cluster, black_box(gbs))))
    });
    group.finish();
}

criterion_group!(benches, bench_search);
criterion_main!(benches);
