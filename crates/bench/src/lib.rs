//! Experiment harness library: one module per table/figure of the paper.
//!
//! The `experiments` binary dispatches to these modules; each returns its
//! report as a string (also written under `target/experiments/`) so
//! integration tests can assert on the *shape* of every reproduced
//! result — who wins, by roughly what factor, where the crossovers fall.
#![warn(missing_docs)]

pub mod experiments;
pub mod report;

pub use report::{write_report, ExperimentReport};
