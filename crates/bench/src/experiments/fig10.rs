//! Figure 10 + Table 8: iteration time across model sizes (7B / 13B /
//! 34B) at global batch size 128 on the 64× RTX 4090 cluster.

use mepipe_hw::topology::ClusterSpec;
use mepipe_model::config::TransformerConfig;
use mepipe_strategy::{search_all, Method};

use crate::report::{format_table, ExperimentReport};

/// Runs the experiment.
pub fn run() -> ExperimentReport {
    let mut rep = ExperimentReport::new(
        "fig10",
        "Iteration time by model size, GBS 128, 64x RTX 4090 (+ Table 8 configs)",
    );
    let cluster = ClusterSpec::rtx4090_cluster();
    for (name, model) in [
        ("7B", TransformerConfig::llama2_7b()),
        ("13B", TransformerConfig::llama2_13b()),
        ("34B", TransformerConfig::llama2_34b()),
    ] {
        rep.line(format!("--- Llama {name} ---"));
        let results = search_all(&model, &cluster, 128);
        let mut rows = Vec::new();
        let mut best_baseline = f64::INFINITY;
        let mut mepipe_time = f64::NAN;
        for (m, e) in &results {
            match e {
                Some(e) => {
                    rows.push(vec![
                        m.name().into(),
                        format!("{:.0} ms", e.iteration_time * 1e3),
                        e.candidate.label(),
                        format!("{:.1}%", e.mfu * 100.0),
                    ]);
                    rep.row(
                        &format!("{name}/{}", m.name()),
                        &[("iter_ms", e.iteration_time * 1e3), ("mfu", e.mfu)],
                    );
                    if *m == Method::Mepipe {
                        mepipe_time = e.iteration_time;
                    } else if !m.is_synthesized() {
                        // Synthesized tiers are not Figure-10 baselines.
                        best_baseline = best_baseline.min(e.iteration_time);
                    }
                }
                None => {
                    rows.push(vec![
                        m.name().into(),
                        "-".into(),
                        "infeasible".into(),
                        "-".into(),
                    ]);
                    rep.row(&format!("{name}/{}", m.name()), &[("infeasible", 1.0)]);
                }
            }
        }
        rep.line(format_table(
            &[
                "system",
                "iteration",
                "config (PP, CP/SPP, VP, recomp)",
                "MFU",
            ],
            &rows,
        ));
        if best_baseline.is_finite() && mepipe_time.is_finite() {
            rep.row(
                &format!("{name}/speedup"),
                &[("speedup", best_baseline / mepipe_time)],
            );
            rep.line(format!(
                "MEPipe speedup: {:.2}x",
                best_baseline / mepipe_time
            ));
        }
    }
    rep.line("Paper: VPP and ZB/ZBV cannot hold Llama-34B (static memory); DAPPLE needs recompute; MEPipe runs it at (16, 16, 1, ✗).");
    rep
}

#[cfg(test)]
mod tests {
    #[test]
    fn mepipe_wins_every_model_size() {
        let rep = super::run();
        for size in ["7B", "13B", "34B"] {
            let sp = rep
                .rows
                .iter()
                .find(|(l, _)| l == &format!("{size}/speedup"))
                .map(|(_, v)| v[0].1);
            let sp = sp.unwrap_or_else(|| {
                panic!("{size}: no speedup row (MEPipe or all baselines infeasible)")
            });
            assert!(sp > 1.0, "{size}: speedup {sp}");
        }
    }

    #[test]
    fn vpp_and_zbv_infeasible_on_34b() {
        let rep = super::run();
        for m in ["VPP", "ZBV"] {
            let row = rep.rows.iter().find(|(l, _)| l == &format!("34B/{m}"));
            let infeasible = row
                .map(|(_, v)| v.iter().any(|(k, _)| k == "infeasible"))
                .unwrap_or(false);
            assert!(infeasible, "{m} should be infeasible on 34B per the paper");
        }
    }
}
