//! One module per reproduced table/figure (see DESIGN.md §5).

pub mod ablations;
pub mod disc9;
pub mod fig1;
pub mod fig10;
pub mod fig11_12;
pub mod fig8;
pub mod fig9;
pub mod schedules;
pub mod tab2;
pub mod tab3;
pub mod tab67;
pub mod tab9;
pub mod zoo;

use crate::report::ExperimentReport;

/// An experiment entry: its id and the function regenerating it.
pub type Experiment = (&'static str, fn() -> ExperimentReport);

/// Every experiment, in paper order.
pub fn all() -> Vec<Experiment> {
    vec![
        ("fig1", fig1::run as fn() -> ExperimentReport),
        ("fig2", schedules::fig2),
        ("fig3", schedules::fig3),
        ("fig4", schedules::fig4),
        ("fig5", schedules::fig5),
        ("fig6", schedules::fig6),
        ("fig7", fig11_12::fig7),
        ("tab2", tab2::run),
        ("tab3", tab3::run),
        ("fig8", fig8::run),
        ("tab6", tab67::tab6),
        ("tab7", tab67::tab7),
        ("fig9", fig9::run),
        ("fig10", fig10::run),
        ("fig11_12", fig11_12::run),
        ("tab9", tab9::run),
        ("abl_wgrad", ablations::abl_wgrad),
        ("abl_slices", ablations::abl_slices),
        ("abl_variants", ablations::abl_variants),
        ("abl_nonuniform", ablations::abl_nonuniform),
        ("abl_messages", ablations::abl_messages),
        ("disc9", disc9::run),
        ("zoo", zoo::run),
        ("solver_smoke", zoo::solver),
    ]
}
