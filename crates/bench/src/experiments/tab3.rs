//! Table 3: closed-form bubble ratio and activation memory of every
//! scheduling method, in both cluster regimes, cross-checked against
//! executed schedules where a generator exists.

use mepipe_core::{
    analytic::{table3, AnalysisParams},
    svpp::Svpp,
};
use mepipe_schedule::{
    exec::{execute, UnitCost},
    generator::{Dapple, Dims, ScheduleGenerator, TeraPipe, Vpp},
};

use crate::report::{format_table, ExperimentReport};

fn fmt_opt(x: Option<f64>) -> String {
    x.map_or("-".into(), |v| format!("{v:.3}"))
}

/// Runs the experiment.
pub fn run() -> ExperimentReport {
    let mut rep = ExperimentReport::new(
        "tab3",
        "Bubble ratio and activation memory (fraction of A) — closed forms + simulation cross-check",
    );
    for (regime, a) in [
        (
            "small cluster (n ≥ p): p=8, v=2, s=4, n=16",
            AnalysisParams {
                p: 8,
                v: 2,
                s: 4,
                n: 16,
            },
        ),
        (
            "large cluster (n < p): p=16, v=2, s=4, n=4",
            AnalysisParams {
                p: 16,
                v: 2,
                s: 4,
                n: 4,
            },
        ),
    ] {
        rep.line(format!("--- {regime} ---"));
        let mut rows = Vec::new();
        for r in table3(a) {
            rows.push(vec![
                r.method.to_string(),
                fmt_opt(r.bubble_ratio),
                fmt_opt(r.memory_fraction),
            ]);
            rep.row(
                &format!("{}/{}", a.p, r.method),
                &[
                    ("bubble", r.bubble_ratio.unwrap_or(f64::NAN)),
                    ("mem_frac", r.memory_fraction.unwrap_or(f64::NAN)),
                ],
            );
        }
        rep.line(format_table(
            &["method", "bubble ratio", "memory (·A)"],
            &rows,
        ));
    }

    // Cross-check the small-regime formulas against executed schedules
    // under uniform costs.
    rep.line("--- cross-check: formula vs executed schedule (uniform costs) ---");
    let a = AnalysisParams {
        p: 4,
        v: 1,
        s: 4,
        n: 8,
    };
    let checks: Vec<(&str, f64, f64)> = vec![
        (
            "DAPPLE",
            mepipe_core::analytic::dapple(a).bubble_ratio.unwrap(),
            execute(
                &Dapple.generate(&Dims::new(4, 8)).unwrap(),
                &UnitCost::ones(),
            )
            .unwrap()
            .bubble_ratio(),
        ),
        (
            "VPP (v=2)",
            mepipe_core::analytic::vpp(AnalysisParams { v: 2, ..a })
                .bubble_ratio
                .unwrap(),
            execute(
                &Vpp.generate(&Dims::new(4, 8).virtual_chunks(2)).unwrap(),
                &UnitCost::ones(),
            )
            .unwrap()
            .bubble_ratio(),
        ),
        (
            "TeraPipe",
            mepipe_core::analytic::terapipe(a).bubble_ratio.unwrap(),
            execute(
                &TeraPipe.generate(&Dims::new(4, 8).slices(4)).unwrap(),
                &UnitCost::ones(),
            )
            .unwrap()
            .bubble_ratio(),
        ),
        (
            "SVPP",
            mepipe_core::analytic::svpp(a).bubble_ratio.unwrap(),
            execute(
                &Svpp::new().generate(&Dims::new(4, 8).slices(4)).unwrap(),
                &UnitCost::ones(),
            )
            .unwrap()
            .bubble_ratio(),
        ),
    ];
    let mut rows = Vec::new();
    for (name, formula, measured) in &checks {
        rows.push(vec![
            name.to_string(),
            format!("{formula:.4}"),
            format!("{measured:.4}"),
            format!("{:+.4}", measured - formula),
        ]);
        rep.row(
            &format!("check/{name}"),
            &[("formula", *formula), ("measured", *measured)],
        );
    }
    rep.line(format_table(
        &["method", "formula", "measured", "delta"],
        &rows,
    ));
    rep
}

#[cfg(test)]
mod tests {
    #[test]
    fn cross_checks_agree_within_tolerance() {
        let rep = super::run();
        for (label, vals) in rep.rows.iter().filter(|(l, _)| l.starts_with("check/")) {
            let f = vals.iter().find(|(k, _)| k == "formula").unwrap().1;
            let m = vals.iter().find(|(k, _)| k == "measured").unwrap().1;
            assert!((f - m).abs() < 0.06, "{label}: formula {f} vs measured {m}");
        }
    }
}
