//! Tables 6 and 7: the influence of PP and CP sizes on DAPPLE for
//! Llama-13B.

use mepipe_hw::topology::ClusterSpec;
use mepipe_model::{
    config::TransformerConfig,
    partition::{PartitionSpec, SequenceSplit},
};
use mepipe_strategy::{Candidate, Method, SearchEngine};

use crate::report::{format_table, ExperimentReport};

fn dapple_candidate(pp: usize, dp: usize, cp: usize, gbs: usize) -> Candidate {
    Candidate {
        method: Method::Dapple,
        spec: PartitionSpec {
            pp,
            vp: 1,
            dp,
            seq: if cp > 1 {
                SequenceSplit::Context { size: cp }
            } else {
                SequenceSplit::None
            },
            recompute: false,
            micro_batch_size: 1,
            global_batch: gbs,
        },
    }
}

fn sweep(id: &str, title: &str, combos: &[(usize, usize, usize)], gbs: usize) -> ExperimentReport {
    let mut rep = ExperimentReport::new(id, title);
    let model = TransformerConfig::llama2_13b();
    let cluster = ClusterSpec::rtx4090_cluster();
    // Memoized evaluation: Table 6's (8, 4, 2) point at GBS 64 and any
    // repeated sweep rows are simulated once.
    let engine = SearchEngine::new();
    let mut rows = Vec::new();
    for &(pp, dp, cp) in combos {
        let cand = dapple_candidate(pp, dp, cp, gbs);
        match engine.evaluate(&cand, &model, &cluster) {
            Ok(e) => {
                rows.push(vec![
                    format!("({pp}, {dp}, {cp}, ✗)"),
                    format!("{:.1}%", e.bubble_ratio * 100.0),
                    format!("{:.1} ms", e.iteration_time * 1e3),
                ]);
                rep.row(
                    &format!("pp{pp}_dp{dp}_cp{cp}"),
                    &[
                        ("bubble", e.bubble_ratio),
                        ("iter_ms", e.iteration_time * 1e3),
                    ],
                );
            }
            Err(why) => {
                rows.push(vec![
                    format!("({pp}, {dp}, {cp}, ✗)"),
                    "-".into(),
                    format!("OOM ({why})"),
                ]);
                rep.row(&format!("pp{pp}_dp{dp}_cp{cp}"), &[("oom", 1.0)]);
            }
        }
    }
    rep.line(format_table(
        &["(PP, DP, CP, recomp)", "bubble ratio", "iteration time"],
        &rows,
    ));
    rep
}

/// Table 6: PP sweep at GBS 64 — (2,4,8) OOMs, (8,4,2) beats (4,4,4).
pub fn tab6() -> ExperimentReport {
    sweep(
        "tab6",
        "Influence of PP on DAPPLE, Llama-13B, GBS 64",
        &[(2, 4, 8), (4, 4, 4), (8, 4, 2)],
        64,
    )
}

/// Table 7: CP sweep at GBS 32 — CP 2 is the sweet spot.
pub fn tab7() -> ExperimentReport {
    sweep(
        "tab7",
        "Influence of CP on DAPPLE, Llama-13B, GBS 32",
        &[(8, 8, 1), (8, 4, 2), (8, 2, 4)],
        32,
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn tab6_shape_matches_paper() {
        // Paper: pp=2 OOM; pp=8 beats pp=4 despite the higher bubble.
        let rep = super::tab6();
        let find = |l: &str| {
            rep.rows
                .iter()
                .find(|(ll, _)| ll == l)
                .map(|(_, v)| v.clone())
        };
        let pp2 = find("pp2_dp4_cp8").unwrap();
        assert!(
            pp2.iter().any(|(k, _)| k == "oom"),
            "pp=2 should OOM: {pp2:?}"
        );
        let t4 = find("pp4_dp4_cp4")
            .unwrap()
            .iter()
            .find(|(k, _)| k == "iter_ms")
            .unwrap()
            .1;
        let t8 = find("pp8_dp4_cp2")
            .unwrap()
            .iter()
            .find(|(k, _)| k == "iter_ms")
            .unwrap()
            .1;
        assert!(t8 < t4, "pp=8 ({t8} ms) should beat pp=4 ({t4} ms)");
        let b4 = find("pp4_dp4_cp4")
            .unwrap()
            .iter()
            .find(|(k, _)| k == "bubble")
            .unwrap()
            .1;
        let b8 = find("pp8_dp4_cp2")
            .unwrap()
            .iter()
            .find(|(k, _)| k == "bubble")
            .unwrap()
            .1;
        assert!(b8 > b4, "bubble rises with pp");
    }

    #[test]
    fn tab7_cp2_is_the_sweet_spot() {
        let rep = super::tab7();
        let time = |l: &str| {
            rep.rows
                .iter()
                .find(|(ll, _)| ll == l)
                .and_then(|(_, v)| v.iter().find(|(k, _)| k == "iter_ms"))
                .map(|(_, t)| *t)
                .unwrap_or(f64::INFINITY)
        };
        let (t1, t2, t4) = (
            time("pp8_dp8_cp1"),
            time("pp8_dp4_cp2"),
            time("pp8_dp2_cp4"),
        );
        assert!(t2 < t1, "cp=2 ({t2}) should beat cp=1 ({t1})");
        assert!(t2 < t4, "cp=2 ({t2}) should beat cp=4 ({t4})");
    }
}
