//! Figure 8 + Table 5: iteration time of every system on Llama-13B at
//! global batch sizes 32 / 64 / 128, with the grid-searched optimal
//! configurations.

use mepipe_hw::topology::ClusterSpec;
use mepipe_model::config::TransformerConfig;
use mepipe_strategy::{Method, SearchEngine};

use crate::report::{format_table, ExperimentReport};

/// Runs the experiment.
pub fn run() -> ExperimentReport {
    let mut rep = ExperimentReport::new(
        "fig8",
        "Iteration time, Llama-13B, 64x RTX 4090, GBS in {32, 64, 128} (+ Table 5 configs)",
    );
    let model = TransformerConfig::llama2_13b();
    let cluster = ClusterSpec::rtx4090_cluster();
    // One engine across the whole grid: schedules and evaluations are
    // shared between batch sizes where the shapes coincide.
    let engine = SearchEngine::new();
    for gbs in [32usize, 64, 128] {
        rep.line(format!("--- global batch size {gbs} ---"));
        let results = engine.search_all(&model, &cluster, gbs);
        let mut rows = Vec::new();
        let mut best_baseline = f64::INFINITY;
        let mut best_synth = f64::INFINITY;
        let mut mepipe_time = f64::NAN;
        for (m, e) in &results {
            match e {
                Some(e) => {
                    rows.push(vec![
                        m.name().into(),
                        format!("{:.0} ms", e.iteration_time * 1e3),
                        e.candidate.label(),
                        format!("{:.1}%", e.bubble_ratio * 100.0),
                        format!("{:.1}%", e.mfu * 100.0),
                    ]);
                    rep.row(
                        &format!("gbs{gbs}/{}", m.name()),
                        &[
                            ("iter_ms", e.iteration_time * 1e3),
                            ("bubble", e.bubble_ratio),
                            ("mfu", e.mfu),
                        ],
                    );
                    if *m == Method::Mepipe {
                        mepipe_time = e.iteration_time;
                    } else if m.is_synthesized() {
                        // Synthesized tiers compete with the whole
                        // hand-written zoo, never as "baselines" in the
                        // paper's MEPipe-vs-baseline comparison.
                        best_synth = best_synth.min(e.iteration_time);
                    } else {
                        best_baseline = best_baseline.min(e.iteration_time);
                    }
                }
                None => rows.push(vec![
                    m.name().into(),
                    "OOM".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                ]),
            }
        }
        rep.line(format_table(
            &[
                "system",
                "iteration",
                "config (PP, CP/SPP, VP, recomp)",
                "bubble",
                "MFU",
            ],
            &rows,
        ));
        if best_baseline.is_finite() && mepipe_time.is_finite() {
            let speedup = best_baseline / mepipe_time;
            rep.line(format!("MEPipe speedup over best baseline: {speedup:.2}x"));
            rep.row(&format!("gbs{gbs}/speedup"), &[("speedup", speedup)]);
        }
        // The synthesis-layer headline: best synthesized schedule vs the
        // best hand-written template (baselines *and* MEPipe/SVPP).
        let best_hand = best_baseline.min(mepipe_time);
        if best_hand.is_finite() && best_synth.is_finite() {
            let speedup = best_hand / best_synth;
            rep.line(format!(
                "best synthesized vs best hand-written (SVPP included): {speedup:.3}x"
            ));
            rep.row(
                &format!("gbs{gbs}/synthesized_vs_svpp"),
                &[
                    ("best_synth_ms", best_synth * 1e3),
                    ("best_hand_ms", best_hand * 1e3),
                    ("speedup", speedup),
                ],
            );
        }
    }
    rep.line("Paper: 1.36x (GBS 128), 1.49x (64), 1.86x (32) over the respective best baselines.");
    let st = engine.stats();
    rep.line(format!(
        "search engine: {} pre-discarded, {} bound-pruned, {} evaluated ({} memo hits); \
         schedule cache (incl. solver syntheses): {} hits / {} misses",
        st.pre_discarded,
        st.bound_pruned,
        st.evaluated,
        st.eval_hits,
        st.schedule_hits,
        st.schedule_misses
    ));
    rep.row(
        "engine/schedule_cache",
        &[
            ("hits", st.schedule_hits as f64),
            ("misses", st.schedule_misses as f64),
        ],
    );
    rep
}

#[cfg(test)]
mod tests {
    #[test]
    fn mepipe_wins_every_batch_size_and_smaller_batches_win_more() {
        let rep = super::run();
        let speedup = |gbs: usize| {
            rep.rows
                .iter()
                .find(|(l, _)| l == &format!("gbs{gbs}/speedup"))
                .map(|(_, v)| v[0].1)
                .expect("speedup row")
        };
        let (s32, s64, s128) = (speedup(32), speedup(64), speedup(128));
        for (g, s) in [(32, s32), (64, s64), (128, s128)] {
            assert!(s > 1.0, "GBS {g}: speedup {s} <= 1");
        }
        // The paper's trend: smaller global batches amplify MEPipe's edge.
        assert!(
            s32 >= s128 * 0.95,
            "expected GBS-32 speedup ({s32}) to be at least GBS-128's ({s128})"
        );
    }

    #[test]
    fn synthesized_beats_best_hand_written_on_every_grid_point() {
        let rep = super::run();
        for gbs in [32usize, 64, 128] {
            let row = rep
                .rows
                .iter()
                .find(|(l, _)| l == &format!("gbs{gbs}/synthesized_vs_svpp"))
                .map(|(_, v)| v.clone())
                .expect("synthesized_vs_svpp row");
            let speedup = row
                .iter()
                .find(|(k, _)| *k == "speedup")
                .map(|(_, v)| *v)
                .unwrap();
            assert!(
                speedup > 1.0,
                "GBS {gbs}: best synthesized not strictly faster ({speedup}x)"
            );
        }
    }
}
