//! Figures 2–6: schedule timeline diagrams, rendered in ASCII.

use mepipe_core::{
    reschedule::reschedule_backwards,
    svpp::{Svpp, SvppConfig},
};
use mepipe_schedule::{
    exec::{execute, UnitCost},
    generator::{Dapple, Dims, ScheduleGenerator, TeraPipe},
    render::render,
    validate::peak_in_flight,
};

use crate::report::ExperimentReport;

fn svpp(p: usize, v: usize, s: usize, n: usize, f: Option<usize>) -> mepipe_schedule::ir::Schedule {
    let gen = match f {
        Some(f) => Svpp::new().warmup_cap(f),
        None => Svpp::new(),
    };
    gen.generate(&Dims::new(p, n).virtual_chunks(v).slices(s))
        .unwrap()
}

/// Figure 2: DAPPLE 1F1B scheduling.
pub fn fig2() -> ExperimentReport {
    let mut rep = ExperimentReport::new("fig2", "1F1B pipeline scheduling in DAPPLE");
    let sch = Dapple.generate(&Dims::new(4, 4)).unwrap();
    rep.line(
        render(
            &sch,
            &UnitCost {
                fwd: 1.0,
                bwd: 2.0,
                wgrad: 0.0,
            },
        )
        .unwrap(),
    );
    let t = execute(&sch, &UnitCost::ones()).unwrap();
    rep.line(format!(
        "bubble ratio {:.1}% — first stage holds {} micro-batches of activations",
        t.bubble_ratio() * 100.0,
        peak_in_flight(&sch)[0]
    ));
    rep.row(
        "dapple",
        &[
            ("bubble", t.bubble_ratio()),
            ("peak_units", peak_in_flight(&sch)[0] as f64),
        ],
    );
    rep
}

/// Figure 3: TeraPipe slice-level GPipe scheduling.
pub fn fig3() -> ExperimentReport {
    let mut rep = ExperimentReport::new("fig3", "Pipeline scheduling of TeraPipe");
    let sch = TeraPipe.generate(&Dims::new(4, 2).slices(4)).unwrap();
    rep.line(render(&sch, &UnitCost::ones()).unwrap());
    let peaks = peak_in_flight(&sch);
    rep.line(format!(
        "every worker retains all {} slice activations before the first backward",
        peaks[0]
    ));
    rep.row("terapipe", &[("peak_units", peaks[0] as f64)]);
    rep
}

/// Figure 4: SVPP at p=4, s=2, with v=1 (a) and v=2 (b).
pub fn fig4() -> ExperimentReport {
    let mut rep = ExperimentReport::new("fig4", "SVPP scheduling, p=4, s=2, v in {1, 2}");
    for (tag, v, frac) in [("(a) v=1", 1usize, "5/8"), ("(b) v=2", 2, "9/16")] {
        let sch = svpp(4, v, 2, 4, None);
        rep.line(format!("--- {tag}: paper peak {frac}·A ---"));
        rep.line(render(&sch, &UnitCost::ones()).unwrap());
        let peak = peak_in_flight(&sch)[0];
        let units = 4 * 2 * v; // p*s*v units of A per sample... per unit A/(p*s*v).
        rep.line(format!(
            "measured peak: {peak} units of A/{units} = {:.3}·A",
            peak as f64 / units as f64
        ));
        rep.row(tag, &[("peak_units", peak as f64)]);
    }
    rep
}

/// Figure 5: memory-limited SVPP variants (warmup budget sweep).
pub fn fig5() -> ExperimentReport {
    let mut rep = ExperimentReport::new(
        "fig5",
        "SVPP variants: trading bubbles for memory (p=4, v=2, s=2)",
    );
    let base = SvppConfig::new(4, 2, 2).virtual_chunks(2);
    for f in (base.min_warmup()..=base.max_warmup()).rev() {
        let sch = svpp(4, 2, 2, 2, Some(f));
        let t = execute(&sch, &UnitCost::ones()).unwrap();
        let peak = peak_in_flight(&sch)[0];
        if f == base.max_warmup() || f == base.min_warmup() {
            rep.line(format!("--- timeline at f = {f} ---"));
            rep.line(render(&sch, &UnitCost::ones()).unwrap());
        }
        rep.line(format!(
            "f = {f}: peak {peak:>2} units ({:.3}·A), bubble {:.1}%, makespan {}",
            peak as f64 / 16.0,
            t.bubble_ratio() * 100.0,
            t.makespan
        ));
        rep.row(
            &format!("f={f}"),
            &[
                ("peak_units", peak as f64),
                ("bubble", t.bubble_ratio()),
                ("makespan", t.makespan),
            ],
        );
    }
    rep.line("Lower f → less memory, more bubbles (Section 4.2's 50%/50% trade at the floor).");
    rep
}

/// Figure 6: the backward-rescheduling optimisation.
pub fn fig6() -> ExperimentReport {
    let mut rep = ExperimentReport::new(
        "fig6",
        "Backward rescheduling (Section 4.3) on the Figure 5(a) schedule",
    );
    let sch = svpp(4, 2, 2, 2, None);
    let opt = reschedule_backwards(&sch).unwrap();
    let tb = execute(&sch, &UnitCost::ones()).unwrap();
    let ta = execute(&opt, &UnitCost::ones()).unwrap();
    rep.line("--- before ---");
    rep.line(render(&sch, &UnitCost::ones()).unwrap());
    rep.line("--- after rescheduling ---");
    rep.line(render(&opt, &UnitCost::ones()).unwrap());
    rep.line(format!(
        "makespan {} -> {}; peak units {} -> {}",
        tb.makespan,
        ta.makespan,
        peak_in_flight(&sch)[0],
        peak_in_flight(&opt)[0]
    ));
    rep.row(
        "reschedule",
        &[
            ("makespan_before", tb.makespan),
            ("makespan_after", ta.makespan),
            ("peak_before", peak_in_flight(&sch)[0] as f64),
            ("peak_after", peak_in_flight(&opt)[0] as f64),
        ],
    );
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_schedule_figures_render() {
        for rep in [fig2(), fig3(), fig4(), fig5(), fig6()] {
            assert!(rep.body.contains("stage 0"), "{} missing timeline", rep.id);
        }
    }

    #[test]
    fn fig5_monotone_tradeoff() {
        let rep = fig5();
        // Rows are ordered from f_max down: memory falls, bubbles rise.
        let peaks: Vec<f64> = rep
            .rows
            .iter()
            .map(|(_, v)| v.iter().find(|(k, _)| k == "peak_units").unwrap().1)
            .collect();
        assert!(peaks.windows(2).all(|w| w[1] <= w[0]), "{peaks:?}");
        let bubbles: Vec<f64> = rep
            .rows
            .iter()
            .map(|(_, v)| v.iter().find(|(k, _)| k == "bubble").unwrap().1)
            .collect();
        assert!(bubbles.first().unwrap() <= bubbles.last().unwrap());
    }

    #[test]
    fn fig6_reschedule_never_hurts() {
        let rep = fig6();
        let get = |k: &str| rep.rows[0].1.iter().find(|(kk, _)| kk == k).unwrap().1;
        assert!(get("makespan_after") <= get("makespan_before"));
        assert!(get("peak_after") <= get("peak_before"));
    }
}
