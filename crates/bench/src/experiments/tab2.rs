//! Table 2: communication and partitioning comparison of parallel
//! strategies, quantified for Llama-13B.

use mepipe_model::{comm, config::TransformerConfig};

use crate::report::{format_table, ExperimentReport};

/// Runs the experiment.
pub fn run() -> ExperimentReport {
    let mut rep = ExperimentReport::new(
        "tab2",
        "Comparison of parallel strategies (quantified per-worker GB sent per iteration, 13B, group 4, 16 micro-batches)",
    );
    let cfg = TransformerConfig::llama2_13b();
    let rows_data = comm::table2(&cfg, 4, 16);
    let gib = 1024f64.powi(3);
    let mark = |b: bool| if b { "✓" } else { "✗" };
    let mut rows = Vec::new();
    for r in &rows_data {
        rows.push(vec![
            r.name.to_string(),
            format!("{:.2}", r.bytes_per_iteration / gib),
            mark(r.profile.parameters).into(),
            mark(r.profile.activations).into(),
            mark(r.profile.optimizer).into(),
        ]);
        rep.row(r.name, &[("gib_per_iter", r.bytes_per_iteration / gib)]);
    }
    rep.line(format_table(
        &[
            "strategy",
            "GB sent/iter",
            "param part.",
            "act part.",
            "opt part.",
        ],
        &rows,
    ));
    rep.line("Ordering matches the paper's +'s: TP >>> CP > DP > PP = SPP.");
    rep
}

#[cfg(test)]
mod tests {
    #[test]
    fn ordering_matches_paper() {
        let rep = super::run();
        let v: Vec<f64> = rep.rows.iter().map(|(_, r)| r[0].1).collect();
        // TP > CP > DP > PP = SPP.
        assert!(v[0] > v[1] && v[1] > v[2] && v[2] > v[3]);
        assert!((v[3] - v[4]).abs() < 1e-12);
    }
}
