//! Section 9 (Discussion), quantified: failure-recovery overhead on a
//! thousand-GPU 4090 cluster and the electricity break-even horizon
//! against A100 clusters.

use mepipe_hw::{accelerator::AcceleratorSpec, pricing::operating_cost_break_even_years};
use mepipe_train::checkpoint::{failure_overhead, optimal_interval};

use crate::report::{format_table, ExperimentReport};

/// Runs the experiment.
pub fn run() -> ExperimentReport {
    let mut rep = ExperimentReport::new(
        "disc9",
        "Section 9 estimates: failure overhead (<5%) and the power break-even (~24 years)",
    );

    // Failure model: the paper cites MTBF ≈ 12 h for 1000 A100s (OPT logs)
    // and memory-based checkpointing with minute-scale recovery.
    rep.line("--- hardware failures, 1000x RTX 4090, in-memory checkpointing ---");
    let mtbf = 12.0 * 3600.0;
    let mut rows = Vec::new();
    for (ckpt_cost, recovery) in [(5.0f64, 120.0f64), (10.0, 180.0), (30.0, 600.0)] {
        let interval = optimal_interval(mtbf, ckpt_cost);
        let overhead = failure_overhead(mtbf, ckpt_cost, recovery, interval);
        rows.push(vec![
            format!("{ckpt_cost:.0} s"),
            format!("{recovery:.0} s"),
            format!("{:.1} min", interval / 60.0),
            format!("{:.2}%", overhead * 100.0),
        ]);
        rep.row(
            &format!("ckpt{ckpt_cost}_rec{recovery}"),
            &[("overhead", overhead)],
        );
    }
    rep.line(format_table(
        &[
            "checkpoint cost",
            "recovery",
            "optimal interval",
            "lost time",
        ],
        &rows,
    ));
    rep.line("Paper: \"we estimate the cost of hardware failures is less than 5%\". ✓");
    rep.line("");

    // Power economics: 64x4090 (450 W) vs 32xA100 (400 W) at equal
    // delivered compute; capital gap $240k vs $600k; $0.1/kWh.
    rep.line("--- operating-cost break-even, $0.1/kWh industrial rate ---");
    let years = operating_cost_break_even_years(
        &AcceleratorSpec::rtx4090(),
        64,
        240_000.0,
        &AcceleratorSpec::a100_80g(),
        32,
        600_000.0,
        0.1,
    )
    .expect("4090 cluster draws more power");
    rep.line(format!(
        "64x RTX 4090 draws {:.1} kW vs 32x A100 {:.1} kW; the $360k capital gap \
takes {years:.0} years of continuous operation to erase.",
        AcceleratorSpec::rtx4090().power_watts * 64.0 / 1000.0,
        AcceleratorSpec::a100_80g().power_watts * 32.0 / 1000.0,
    ));
    rep.row("break_even", &[("years", years)]);
    rep.line("Paper: \"approximately 24 years\". ✓");
    rep
}

#[cfg(test)]
mod tests {
    #[test]
    fn overheads_below_paper_bound_and_break_even_in_decades() {
        let rep = super::run();
        for (label, vals) in &rep.rows {
            if label.starts_with("ckpt") {
                // The paper's <5% holds for realistic in-memory settings;
                // even the pessimistic row stays near the bound.
                assert!(vals[0].1 < 0.06, "{label}: {}", vals[0].1);
            }
            if label == "ckpt10_rec180" {
                assert!(vals[0].1 < 0.05, "paper's estimate violated: {}", vals[0].1);
            }
            if label == "break_even" {
                assert!(
                    (10.0..60.0).contains(&vals[0].1),
                    "break-even {} years vs paper's ~24",
                    vals[0].1
                );
            }
        }
    }
}
