//! Figures 7, 11 and 12: fine-grained weight-gradient computation.
//!
//! Figure 7 is the concept (imbalanced slices, W GEMMs filling waits);
//! Figures 11/12 are measured per-stage timelines for Llama-13B at GBS 64
//! without and with the technique. The paper reports a 9.4% improvement.

use mepipe_core::svpp::Mepipe;
use mepipe_hw::topology::ClusterSpec;
use mepipe_model::{
    config::TransformerConfig,
    cost::ExecutionCost,
    partition::{PartitionSpec, SequenceSplit},
};
use mepipe_schedule::generator::{Dims, ScheduleGenerator};
use mepipe_sim::{
    engine::{simulate, SimConfig},
    timeline::{render_strips, stage_activity},
    ModelCost, SimCost,
};

use crate::report::ExperimentReport;

/// Figure 7: the mechanism on a synthetic imbalanced pipeline (slice 0
/// forward = 75% of slice 1, as in the paper's illustration).
pub fn fig7() -> ExperimentReport {
    let mut rep = ExperimentReport::new(
        "fig7",
        "Fine-grained weight-gradient computation, p=4, s=2, v=1, n=4 (imbalanced slices)",
    );
    struct Imbalanced;
    impl SimCost for Imbalanced {
        fn duration(&self, _s: usize, op: mepipe_schedule::ir::Op) -> f64 {
            let scale = if op.slice == 0 { 0.75 } else { 1.0 };
            match op.kind {
                mepipe_schedule::ir::OpKind::Forward => scale,
                mepipe_schedule::ir::OpKind::BackwardInput => scale,
                mepipe_schedule::ir::OpKind::Backward => scale + 0.75,
                mepipe_schedule::ir::OpKind::BackwardWeight => 0.75,
            }
        }
        fn transfer_time(&self, _f: usize, _t: usize) -> f64 {
            0.05
        }
        fn wgrad_time(&self, _s: usize, _o: mepipe_schedule::ir::Op) -> f64 {
            0.75
        }
        fn wgrad_units(&self) -> usize {
            7
        }
        fn activation_bytes(&self) -> f64 {
            1.0
        }
        fn deferred_bytes(&self) -> f64 {
            0.5
        }
    }
    let sch = Mepipe::new().generate(&Dims::new(4, 4).slices(2)).unwrap();
    for (tag, dynamic) in [
        ("(a) W immediately after B", false),
        ("(b) W drained into waits", true),
    ] {
        let r = simulate(
            &sch,
            &Imbalanced,
            &SimConfig {
                dynamic_wgrad: dynamic,
                ..Default::default()
            },
        )
        .unwrap();
        rep.line(format!("--- {tag}: makespan {:.2} ---", r.makespan));
        rep.line(render_strips(&r.segments, r.makespan, 96));
        rep.row(
            tag,
            &[("makespan", r.makespan), ("bubble", r.bubble_ratio())],
        );
    }
    rep
}

/// Figures 11/12: measured stage timelines for the 13B GBS-64 MEPipe
/// configuration, w/o and w/ fine-grained weight gradients.
pub fn run() -> ExperimentReport {
    let mut rep = ExperimentReport::new(
        "fig11_12",
        "Per-stage timelines, Llama-13B GBS 64, MEPipe (8, 4, 1) — w/o vs w/ fine-grained W",
    );
    let model = TransformerConfig::llama2_13b();
    let spec = PartitionSpec {
        pp: 8,
        vp: 1,
        dp: 8,
        seq: SequenceSplit::SlicePipeline { slices: 4 },
        recompute: false,
        micro_batch_size: 1,
        global_batch: 64,
    };
    let cost =
        ModelCost::new(ExecutionCost::new(model, spec, &ClusterSpec::rtx4090_cluster()).unwrap());
    let sch = Mepipe::new()
        .generate(&Dims::new(8, spec.micro_batches()).slices(4))
        .unwrap();

    let mut times = Vec::new();
    for (fig, tag, dynamic) in [
        ("Figure 11", "w/o fine-grained W", false),
        ("Figure 12", "w/ fine-grained W", true),
    ] {
        let r = simulate(
            &sch,
            &cost,
            &SimConfig {
                dynamic_wgrad: dynamic,
                ..Default::default()
            },
        )
        .unwrap();
        rep.line(format!(
            "--- {fig} ({tag}): iteration {:.0} ms, bubble {:.1}% ---",
            r.iteration_time * 1e3,
            r.bubble_ratio() * 100.0
        ));
        rep.line(render_strips(&r.segments, r.makespan, 100));
        for (w, segs) in r.segments.iter().enumerate() {
            let a = stage_activity(segs, r.makespan);
            rep.line(format!(
                "  stage {w}: F {:>4.1}%  B {:>4.1}%  W {:>4.1}%  idle {:>4.1}%",
                100.0 * a.forward / a.span,
                100.0 * a.backward / a.span,
                100.0 * a.wgrad / a.span,
                100.0 * a.idle / a.span
            ));
        }
        rep.row(
            tag,
            &[
                ("iter_ms", r.iteration_time * 1e3),
                ("bubble", r.bubble_ratio()),
            ],
        );
        times.push(r.iteration_time);
    }
    let improvement = (times[0] - times[1]) / times[0] * 100.0;
    rep.line(format!(
        "Fine-grained weight-gradient computation improvement: {improvement:.1}% (paper: 9.4%)"
    ));
    rep.row("improvement", &[("percent", improvement)]);
    rep
}

#[cfg(test)]
mod tests {
    #[test]
    fn fine_grained_w_improves_iteration_time() {
        let rep = super::run();
        let imp = rep
            .rows
            .iter()
            .find(|(l, _)| l == "improvement")
            .map(|(_, v)| v[0].1)
            .unwrap();
        assert!(
            (0.5..30.0).contains(&imp),
            "improvement {imp}% out of the plausible band around the paper's 9.4%"
        );
    }

    #[test]
    fn fig7_dynamic_beats_static_on_imbalanced_slices() {
        let rep = super::fig7();
        let m = |l: &str| {
            rep.rows
                .iter()
                .find(|(ll, _)| ll.starts_with(l))
                .map(|(_, v)| v[0].1)
                .unwrap()
        };
        assert!(
            m("(b)") <= m("(a)"),
            "dynamic {} vs static {}",
            m("(b)"),
            m("(a)")
        );
    }
}
