//! Ablation studies for MEPipe's design choices (beyond the paper's own
//! figures, but each one grounded in a claim the paper makes in prose).

use mepipe_core::nonuniform::{balance_slices, Slicing};
use mepipe_core::svpp::{Mepipe, SvppConfig};
use mepipe_hw::topology::ClusterSpec;
use mepipe_model::{
    config::TransformerConfig,
    cost::ExecutionCost,
    partition::{PartitionSpec, SequenceSplit},
};
use mepipe_schedule::generator::{Dims, ScheduleGenerator};
use mepipe_schedule::ir::Op;
use mepipe_sim::{
    engine::{simulate, SimConfig},
    ModelCost, SimCost,
};

use crate::report::{format_table, ExperimentReport};

fn spec_13b(slices: usize, gbs: usize) -> PartitionSpec {
    PartitionSpec {
        pp: 8,
        vp: 1,
        dp: 8,
        seq: SequenceSplit::SlicePipeline { slices },
        recompute: false,
        micro_batch_size: 1,
        global_batch: gbs,
    }
}

fn mepipe_sim(slices: usize, gbs: usize, wgrad_units: usize) -> f64 {
    // A cost wrapper that overrides the weight-gradient granularity.
    struct Granular {
        inner: ModelCost,
        units: usize,
    }
    impl SimCost for Granular {
        fn duration(&self, s: usize, o: Op) -> f64 {
            self.inner.duration(s, o)
        }
        fn transfer_time(&self, a: usize, b: usize) -> f64 {
            self.inner.transfer_time(a, b)
        }
        fn wgrad_time(&self, s: usize, o: Op) -> f64 {
            self.inner.wgrad_time(s, o)
        }
        fn wgrad_units(&self) -> usize {
            self.units
        }
        fn activation_bytes(&self) -> f64 {
            self.inner.activation_bytes()
        }
        fn deferred_bytes(&self) -> f64 {
            self.inner.deferred_bytes()
        }
        fn dp_sync_time(&self) -> f64 {
            self.inner.dp_sync_time()
        }
        fn optimizer_time(&self) -> f64 {
            self.inner.optimizer_time()
        }
    }
    let model = TransformerConfig::llama2_13b();
    let spec = spec_13b(slices, gbs);
    let cost = Granular {
        inner: ModelCost::new(
            ExecutionCost::new(model, spec, &ClusterSpec::rtx4090_cluster()).unwrap(),
        ),
        units: wgrad_units,
    };
    let budget = mepipe_model::memory::activation_budget_bytes(
        &model,
        &spec,
        ClusterSpec::rtx4090_cluster()
            .accelerator
            .usable_memory_bytes(),
    );
    let sch = Mepipe::new()
        .generate(&Dims::new(8, spec.micro_batches()).slices(slices))
        .unwrap();
    simulate(
        &sch,
        &cost,
        &SimConfig {
            dynamic_wgrad: true,
            memory_limit_bytes: Some(budget),
            ..Default::default()
        },
    )
    .unwrap()
    .iteration_time
}

/// Ablation 1: weight-gradient granularity. Section 5 argues for
/// *individual GEMMs*; zero-bubble defers whole backward halves. Sweep
/// the GEMM count per unit and watch the iteration time.
pub fn abl_wgrad() -> ExperimentReport {
    let mut rep = ExperimentReport::new(
        "abl_wgrad",
        "Ablation: weight-gradient scheduling granularity (13B, GBS 64, MEPipe (8,4,1))",
    );
    let mut rows = Vec::new();
    for units in [1usize, 5, 35, 70] {
        let t = mepipe_sim(4, 64, units);
        rows.push(vec![units.to_string(), format!("{:.0} ms", t * 1e3)]);
        rep.row(&format!("units{units}"), &[("iter_ms", t * 1e3)]);
    }
    rep.line(format_table(&["W GEMMs per unit", "iteration time"], &rows));
    rep.line("Finer granularity fills smaller bubbles; 35 = 7 GEMMs x 5 layers is MEPipe's natural unit.");
    rep
}

/// Ablation 2: SPP slice-count sweep. Section 7.3: "larger sequence
/// pipeline sizes yield smaller bubble ratios, \[but\] impair the
/// computation efficiency of operators" — the optimum sits in between.
pub fn abl_slices() -> ExperimentReport {
    let mut rep = ExperimentReport::new(
        "abl_slices",
        "Ablation: SPP slice count vs iteration time (13B, GBS 128, PP 8, DP 8)",
    );
    let mut rows = Vec::new();
    let mut best = (0usize, f64::INFINITY);
    for s in [1usize, 2, 4, 8, 16] {
        let t = mepipe_sim(s, 128, 7 * 5);
        if t < best.1 {
            best = (s, t);
        }
        rows.push(vec![s.to_string(), format!("{:.0} ms", t * 1e3)]);
        rep.row(&format!("s{s}"), &[("iter_ms", t * 1e3)]);
    }
    rep.line(format_table(&["SPP slices", "iteration time"], &rows));
    rep.line(format!(
        "optimum at s = {} — finer slices cut bubbles until operator efficiency dominates",
        best.0
    ));
    rep.row("best", &[("slices", best.0 as f64)]);
    rep
}

/// Ablation 3: SVPP warmup-budget sweep under the real 13B cost model —
/// the production version of Figure 5's unit-cost trade-off.
pub fn abl_variants() -> ExperimentReport {
    let mut rep = ExperimentReport::new(
        "abl_variants",
        "Ablation: SVPP warmup budget f vs time and memory (13B, GBS 128, (8,4,1))",
    );
    let model = TransformerConfig::llama2_13b();
    let spec = spec_13b(4, 128);
    let cost =
        ModelCost::new(ExecutionCost::new(model, spec, &ClusterSpec::rtx4090_cluster()).unwrap());
    let base = SvppConfig::new(8, 4, spec.micro_batches());
    let dims = Dims::new(8, spec.micro_batches()).slices(4);
    let budget = mepipe_model::memory::activation_budget_bytes(
        &model,
        &spec,
        ClusterSpec::rtx4090_cluster()
            .accelerator
            .usable_memory_bytes(),
    );
    let mut rows = Vec::new();
    for f in base.min_warmup()..=base.max_warmup() {
        let sch = Mepipe::new().warmup_cap(f).generate(&dims).unwrap();
        let r = simulate(
            &sch,
            &cost,
            &SimConfig {
                dynamic_wgrad: true,
                memory_limit_bytes: Some(budget),
                ..Default::default()
            },
        )
        .unwrap();
        let peak = r.peak_activation_bytes.iter().copied().fold(0.0, f64::max) / 1024f64.powi(3);
        rows.push(vec![
            f.to_string(),
            format!("{:.0} ms", r.iteration_time * 1e3),
            format!("{peak:.2} GiB"),
        ]);
        rep.row(
            &format!("f{f}"),
            &[("iter_ms", r.iteration_time * 1e3), ("peak_gib", peak)],
        );
    }
    rep.line(format_table(
        &["f", "iteration time", "peak activation"],
        &rows,
    ));
    rep.line("Lower f → less memory, more bubbles; pick the largest f that fits (Section 4.5).");
    rep
}

/// Ablation 5: message-count overhead of slicing. SPP keeps PP's byte
/// volume (Table 2) but multiplies the message count by `s`, each paying
/// the fabric's per-message latency — one of the reasons the useful SPP
/// size saturates.
pub fn abl_messages() -> ExperimentReport {
    use mepipe_hw::link::LinkSpec;
    use mepipe_schedule::stats::message_stats;

    let mut rep = ExperimentReport::new(
        "abl_messages",
        "Ablation: boundary messages vs SPP size (13B, PP 8, GBS 128, DP 8) on IB-100G",
    );
    let link = LinkSpec::ib_100g();
    let mut rows = Vec::new();
    for s in [1usize, 2, 4, 8, 16] {
        let sch = Mepipe::new().generate(&Dims::new(8, 16).slices(s)).unwrap();
        let m = message_stats(&sch);
        // Total latency paid across one pipeline's boundaries, if not
        // hidden by compute.
        let latency_total = m.total() as f64 * link.latency;
        rows.push(vec![
            s.to_string(),
            m.total().to_string(),
            format!("{:.1} ms", latency_total * 1e3),
        ]);
        rep.row(
            &format!("s{s}"),
            &[
                ("messages", m.total() as f64),
                ("latency_ms", latency_total * 1e3),
            ],
        );
    }
    rep.line(format_table(
        &[
            "SPP slices",
            "boundary messages/iter",
            "total per-message latency",
        ],
        &rows,
    ));
    rep.line(
        "Volume is constant (Table 2); the message count — and its latency bill — scales with s.",
    );
    rep
}

/// Ablation 4: uniform vs DP-balanced slicing (Section 5's discussion) at
/// 4k and 128k context.
pub fn abl_nonuniform() -> ExperimentReport {
    let mut rep = ExperimentReport::new(
        "abl_nonuniform",
        "Ablation: uniform vs TeraPipe DP-balanced slicing, per-layer times (13B, s = 8)",
    );
    let peak = 165e12;
    let mut rows = Vec::new();
    for (label, seq, grid) in [("4k", 4096usize, 64usize), ("128k", 131_072, 1024)] {
        let cfg = TransformerConfig {
            seq_len: seq,
            ..TransformerConfig::llama2_13b()
        };
        let uniform = Slicing::uniform(seq, 8);
        let balanced = balance_slices(&cfg, 8, grid, peak);
        let ub = uniform.bottleneck_time(&cfg, peak) * 1e3;
        let bb = balanced.bottleneck_time(&cfg, peak) * 1e3;
        rows.push(vec![
            label.into(),
            format!("{ub:.2} ms"),
            format!("{bb:.2} ms"),
            format!("{:.1}%", (ub - bb) / ub * 100.0),
        ]);
        rep.row(label, &[("uniform_ms", ub), ("balanced_ms", bb)]);
    }
    rep.line(format_table(
        &[
            "context",
            "uniform bottleneck",
            "balanced bottleneck",
            "DP gain",
        ],
        &rows,
    ));
    rep.line("At 4k, tile-aligned uniform slices are already optimal; at 128k the causal imbalance dominates and the DP wins — exactly Section 5's crossover.");
    rep
}

#[cfg(test)]
mod tests {
    #[test]
    fn finer_wgrad_is_never_worse() {
        let rep = super::abl_wgrad();
        let t = |l: &str| {
            rep.rows
                .iter()
                .find(|(ll, _)| ll == l)
                .map(|(_, v)| v[0].1)
                .unwrap()
        };
        assert!(t("units35") <= t("units1") + 1e-9);
    }

    #[test]
    fn slice_sweep_has_an_interior_optimum() {
        let rep = super::abl_slices();
        let best = rep
            .rows
            .iter()
            .find(|(l, _)| l == "best")
            .map(|(_, v)| v[0].1 as usize)
            .unwrap();
        assert!(
            (2..=16).contains(&best),
            "optimum {best} should favour slicing (paper's 13B pick: 4)"
        );
    }

    #[test]
    fn variant_sweep_trades_memory_for_time() {
        let rep = super::abl_variants();
        let first = &rep.rows.first().unwrap().1;
        let last = &rep.rows.last().unwrap().1;
        let mem = |v: &Vec<(String, f64)>| v.iter().find(|(k, _)| k == "peak_gib").unwrap().1;
        let time = |v: &Vec<(String, f64)>| v.iter().find(|(k, _)| k == "iter_ms").unwrap().1;
        assert!(mem(first) < mem(last));
        assert!(time(first) >= time(last) - 1e-9);
    }

    #[test]
    fn message_count_scales_linearly_with_slices() {
        let rep = super::abl_messages();
        let msgs = |l: &str| {
            rep.rows
                .iter()
                .find(|(ll, _)| ll == l)
                .and_then(|(_, v)| v.iter().find(|(k, _)| k == "messages"))
                .map(|(_, m)| *m)
                .unwrap()
        };
        assert!((msgs("s4") / msgs("s1") - 4.0).abs() < 1e-9);
        assert!((msgs("s16") / msgs("s1") - 16.0).abs() < 1e-9);
    }

    #[test]
    fn nonuniform_crossover_matches_section5() {
        let rep = super::abl_nonuniform();
        let gain = |l: &str| {
            let v = &rep.rows.iter().find(|(ll, _)| ll == l).unwrap().1;
            let u = v.iter().find(|(k, _)| k == "uniform_ms").unwrap().1;
            let b = v.iter().find(|(k, _)| k == "balanced_ms").unwrap().1;
            (u - b) / u
        };
        assert!(
            gain("128k") > gain("4k") + 0.05,
            "long-context DP gain must dominate"
        );
    }
}
