//! Figure 9: per-layer transformer performance at CP/SPP sizes 1–8.
//!
//! CP and SPP both shrink the per-GPU token dimension (hurting GEMM and
//! FlashAttention efficiency); CP additionally pays ring collectives for
//! KV every layer. The paper measures a 12.6% per-layer throughput drop
//! for SPP 8 on Llama-13B and a much steeper one for CP.

use mepipe_hw::link::LinkSpec;
use mepipe_model::{config::TransformerConfig, flops, gemm::GemmEfficiency};

use crate::report::{format_table, ExperimentReport};

/// Effective accelerator peak (RTX 4090 with FP32 accumulation).
const PEAK: f64 = 165e12;
/// Memory-bandwidth-bound per-layer overhead factor (bytes/token/hidden).
const VEC_BYTES: f64 = 60.0;
const MEM_BW: f64 = 1008e9;

fn layer_flops_forward(cfg: &TransformerConfig, tokens: usize, ctx: f64) -> f64 {
    flops::dense_forward_flops(cfg, tokens) + 4.0 * tokens as f64 * ctx * cfg.hidden as f64
}

/// Per-GPU throughput (fraction of the size-1 case) for SPP size `k`:
/// one worker processes all `k` slices sequentially.
fn spp_relative(cfg: &TransformerConfig, k: usize) -> f64 {
    let eff = GemmEfficiency::default();
    let seq = cfg.seq_len;
    let t = seq / k;
    let mut time = 0.0;
    for i in 0..k {
        let ctx = flops::causal_context(i * t, t);
        let f = 3.0 * layer_flops_forward(cfg, t, ctx);
        time +=
            eff.gemm_time(f, t, PEAK, 27) + 3.0 * VEC_BYTES * t as f64 * cfg.hidden as f64 / MEM_BW;
    }
    let base = base_time(cfg);
    base / time
}

/// Per-GPU throughput (fraction of the size-1 case) for CP size `k`:
/// `k` workers split the sample, each pays ring KV collectives per layer.
/// Relative per-GPU throughput is `time_1 / (k · time_k)` — `k` workers
/// each did `1/k` of the FLOPs in `time_k`.
fn cp_relative(cfg: &TransformerConfig, k: usize) -> f64 {
    let eff = GemmEfficiency::default();
    let seq = cfg.seq_len;
    let t = seq / k;
    // Megatron's symmetric two-slice assignment balances the causal
    // context, so every worker carries 1/k of the attention-score work.
    let ctx = flops::causal_context(0, seq);
    let per_worker =
        3.0 * (flops::dense_forward_flops(cfg, t) + 4.0 * t as f64 * ctx * cfg.hidden as f64);
    let mut time = eff.gemm_time(per_worker, t, PEAK, 27)
        + 3.0 * VEC_BYTES * t as f64 * cfg.hidden as f64 / MEM_BW;
    if k > 1 {
        let link = LinkSpec::pcie4();
        let kv_bytes = (2 * t * cfg.kv_hidden() * 2) as u64;
        // All-gather forward + reduce-scatter backward per layer, with the
        // host-bridge contention factor of the cost model.
        let contention = (k as f64 / 2.0).max(1.0);
        time += 2.0 * link.ring_all_gather_time(k, kv_bytes) * contention;
    }
    base_time(cfg) / (time * k as f64)
}

fn base_time(cfg: &TransformerConfig) -> f64 {
    let eff = GemmEfficiency::default();
    let seq = cfg.seq_len;
    let ctx = flops::causal_context(0, seq);
    let f = 3.0 * layer_flops_forward(cfg, seq, ctx);
    eff.gemm_time(f, seq, PEAK, 27) + 3.0 * VEC_BYTES * seq as f64 * cfg.hidden as f64 / MEM_BW
}

/// Runs the experiment.
pub fn run() -> ExperimentReport {
    let mut rep = ExperimentReport::new(
        "fig9",
        "Per-layer performance vs CP/SPP size, Llama-13B (relative to size 1)",
    );
    let cfg = TransformerConfig::llama2_13b();
    let mut rows = Vec::new();
    for k in [1usize, 2, 4, 8] {
        let spp = spp_relative(&cfg, k);
        let cp = cp_relative(&cfg, k);
        rows.push(vec![
            k.to_string(),
            format!("{:.1}%", spp * 100.0),
            format!("{:.1}%", cp * 100.0),
        ]);
        rep.row(&format!("size{k}"), &[("spp_rel", spp), ("cp_rel", cp)]);
    }
    rep.line(format_table(
        &["CP/SPP size", "SPP relative perf", "CP relative perf"],
        &rows,
    ));
    rep.line("Paper: SPP 8 loses ~12.6% per layer; CP loses much more (comm).");
    rep
}

#[cfg(test)]
mod tests {
    #[test]
    fn spp8_loses_about_the_paper_amount_and_cp_is_worse() {
        let rep = super::run();
        let get = |label: &str, key: &str| {
            rep.rows
                .iter()
                .find(|(l, _)| l == label)
                .and_then(|(_, v)| v.iter().find(|(k, _)| k == key))
                .map(|(_, v)| *v)
                .unwrap()
        };
        let spp8 = get("size8", "spp_rel");
        assert!(
            (0.80..0.95).contains(&spp8),
            "SPP-8 relative perf {spp8}, paper says ~0.874"
        );
        for k in [2usize, 4, 8] {
            let spp = get(&format!("size{k}"), "spp_rel");
            let cp = get(&format!("size{k}"), "cp_rel");
            assert!(cp < spp, "size {k}: CP {cp} should trail SPP {spp}");
        }
        // Monotone degradation.
        assert!(get("size2", "spp_rel") > get("size8", "spp_rel"));
        assert!((get("size1", "spp_rel") - 1.0).abs() < 1e-9);
    }
}
