//! Schedule-zoo smoke and solver smoke — the `check.sh` gate over the
//! synthesis layer.
//!
//! `zoo` renders and validates every registered generator — the
//! hand-written templates and all three synthesized tiers — at one small
//! Fig-8-style grid point. `solver_smoke` runs the per-worker order
//! solver on a few grid points under a hard wall-clock cap, reporting
//! its seed/beam statistics, so a pruning regression that blows up
//! search time fails the gate instead of silently slowing every search.

use std::time::Instant;

use mepipe_core::{Mepipe, Svpp, Synth};
use mepipe_schedule::{
    exec::{execute, UnitCost},
    generator::{Dapple, Dims, GPipe, Hanayo, ScheduleGenerator, TeraPipe, Vpp, Zb, Zbv},
    render::render,
    validate::{peak_in_flight, validate},
    Blocks, DualPipe,
};

use crate::report::ExperimentReport;

/// Wall-clock budget per solver grid point, in seconds. Generous — the
/// bound-pruned beam finishes these points in well under a second — but
/// hard: `check.sh` runs [`solver`] as its solver smoke, so exceeding
/// the cap fails the offline gate.
const SOLVER_BUDGET_S: f64 = 10.0;

/// Every registered generator with the dims it needs at a `(p, n, s)`
/// grid point (interleaved generators get `v = 2`, DualPipe needs `n`
/// even — same zoo the train-level proptest exercises).
fn generator_zoo(p: usize, n: usize, s: usize) -> Vec<(Box<dyn ScheduleGenerator>, Dims)> {
    let flat = Dims::new(p, n);
    vec![
        (Box::new(GPipe) as Box<dyn ScheduleGenerator>, flat),
        (Box::new(Dapple), flat),
        (Box::new(Zb), flat),
        (Box::new(Vpp), flat.virtual_chunks(2)),
        (Box::new(Hanayo), flat.virtual_chunks(2)),
        (Box::new(Zbv), flat.virtual_chunks(2)),
        (Box::new(TeraPipe), flat.slices(s)),
        (Box::new(Svpp::new()), flat.slices(s)),
        (Box::new(Mepipe::new()), flat.slices(s)),
        (Box::new(DualPipe::new()), flat.virtual_chunks(2).slices(s)),
        (Box::new(Blocks::uniform()), flat.slices(s)),
        (Box::new(Synth::new()), flat.slices(s)),
    ]
}

/// The zoo smoke: generate, validate, render and unit-cost-execute every
/// generator at `p=2, n=4, s=2`.
pub fn run() -> ExperimentReport {
    let mut rep = ExperimentReport::new(
        "zoo",
        "Schedule zoo smoke: every generator validates and renders at p=2, n=4, s=2",
    );
    for (g, dims) in generator_zoo(2, 4, 2) {
        let t0 = Instant::now();
        let sch = g
            .generate(&dims)
            .unwrap_or_else(|e| panic!("{} rejected {dims}: {e}", g.name()));
        validate(&sch).unwrap_or_else(|e| panic!("{} invalid at {dims}: {e}", g.name()));
        let timeline = render(&sch, &UnitCost::ones())
            .unwrap_or_else(|e| panic!("{} failed to render at {dims}: {e}", g.name()));
        assert!(
            timeline.contains("stage 0"),
            "{}: rendered timeline has no stage track",
            g.name()
        );
        let gen_ms = t0.elapsed().as_secs_f64() * 1e3;
        let t = execute(&sch, &UnitCost::ones())
            .unwrap_or_else(|e| panic!("{} failed to execute at {dims}: {e}", g.name()));
        let peak = peak_in_flight(&sch)[0];
        rep.line(format!("--- {} @ {dims} ---", g.name()));
        rep.line(timeline);
        rep.line(format!(
            "bubble {:.1}%, peak {peak} units, generated+checked in {gen_ms:.1} ms",
            t.bubble_ratio() * 100.0
        ));
        rep.row(
            g.name(),
            &[
                ("bubble", t.bubble_ratio()),
                ("peak_units", peak as f64),
                ("gen_ms", gen_ms),
            ],
        );
    }
    rep
}

/// The solver smoke: full synthesis on a few grid points, each under
/// [`SOLVER_BUDGET_S`] wall-clock, schedules validated, beam statistics
/// reported.
pub fn solver() -> ExperimentReport {
    let mut rep = ExperimentReport::new(
        "solver_smoke",
        "Order-solver smoke: full synthesis per grid point under the wall-clock cap",
    );
    for dims in [
        Dims::new(2, 4).slices(2),
        Dims::new(4, 8).slices(2),
        Dims::new(4, 4).virtual_chunks(2).slices(2),
    ] {
        let t0 = Instant::now();
        let syn = Synth::new()
            .synthesize(&dims)
            .unwrap_or_else(|e| panic!("solver rejected {dims}: {e}"));
        let secs = t0.elapsed().as_secs_f64();
        validate(&syn.schedule).unwrap_or_else(|e| panic!("solver invalid at {dims}: {e}"));
        let st = &syn.stats;
        assert!(
            secs <= SOLVER_BUDGET_S,
            "solver blew its budget at {dims}: {secs:.1} s > {SOLVER_BUDGET_S} s"
        );
        assert!(
            st.makespan <= st.seed_makespan + 1e-12,
            "solver regressed past its seed at {dims}"
        );
        rep.line(format!(
            "{dims}: {secs:.2} s ({} seeds, {} expanded, {} pruned), makespan {:.1} \
             (seed {:.1}, floor {:.1}){}",
            st.seeds_tried,
            st.nodes_expanded,
            st.nodes_pruned,
            st.makespan,
            st.seed_makespan,
            st.floor,
            if st.improved { " — improved" } else { "" }
        ));
        rep.row(
            &format!("{dims}"),
            &[
                ("secs", secs),
                ("seeds_tried", st.seeds_tried as f64),
                ("nodes_expanded", st.nodes_expanded as f64),
                ("nodes_pruned", st.nodes_pruned as f64),
                ("makespan", st.makespan),
                ("seed_makespan", st.seed_makespan),
                ("floor", st.floor),
            ],
        );
    }
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zoo_covers_all_generators_and_solver_stays_in_budget() {
        let z = run();
        assert_eq!(z.rows.len(), 12, "zoo rows: {:?}", z.rows);
        let s = solver();
        assert_eq!(s.rows.len(), 3);
        for (dims, vals) in &s.rows {
            let secs = vals.iter().find(|(k, _)| k == "secs").unwrap().1;
            assert!(secs <= SOLVER_BUDGET_S, "{dims}: {secs} s");
        }
    }
}
