//! Figure 1: bubble ratio vs peak activation memory of SOTA schedules on
//! Llama-13B (context 4096, p = 8, virtual pipeline 2, micro-batch size
//! 1, n = 8).

use mepipe_core::analytic::{self, AnalysisParams};
use mepipe_model::{config::TransformerConfig, memory};

use crate::report::{format_table, ExperimentReport};

/// Runs the experiment.
pub fn run() -> ExperimentReport {
    let mut rep = ExperimentReport::new(
        "fig1",
        "Bubble ratio vs peak activation memory, Llama-13B, p=8, v=2, n=8",
    );
    let cfg = TransformerConfig::llama2_13b();
    let a_bytes = memory::sample_activation_bytes(&cfg);
    let gib = 1024f64.powi(3);

    // (label, params, row extractor). DAPPLE and TeraPipe have no virtual
    // chunks; VPP/Hanayo/SVPP use v=2 per the figure's caption.
    let entries: Vec<(&str, analytic::AnalysisRow)> = vec![
        (
            "DAPPLE",
            analytic::dapple(AnalysisParams {
                p: 8,
                v: 1,
                s: 1,
                n: 8,
            }),
        ),
        (
            "VPP",
            analytic::vpp(AnalysisParams {
                p: 8,
                v: 2,
                s: 1,
                n: 8,
            }),
        ),
        (
            "Hanayo",
            analytic::hanayo(AnalysisParams {
                p: 8,
                v: 2,
                s: 1,
                n: 8,
            }),
        ),
        (
            "TeraPipe (s=4)",
            analytic::terapipe(AnalysisParams {
                p: 8,
                v: 1,
                s: 4,
                n: 8,
            }),
        ),
        (
            "SVPP (s=4)",
            analytic::svpp(AnalysisParams {
                p: 8,
                v: 2,
                s: 4,
                n: 8,
            }),
        ),
        (
            "SVPP (s=8)",
            analytic::svpp(AnalysisParams {
                p: 8,
                v: 2,
                s: 8,
                n: 8,
            }),
        ),
    ];

    let mut rows = Vec::new();
    for (label, row) in &entries {
        let bubble = row.bubble_ratio.unwrap_or(f64::NAN);
        let mem_gib = row.memory_fraction.unwrap_or(f64::NAN) * a_bytes / gib;
        rows.push(vec![
            label.to_string(),
            format!("{:.1}%", bubble * 100.0),
            format!("{mem_gib:.2}"),
        ]);
        rep.row(
            label,
            &[("bubble_ratio", bubble), ("peak_act_gib", mem_gib)],
        );
    }
    rep.line(format_table(
        &["method", "bubble ratio", "peak activation (GiB/worker)"],
        &rows,
    ));
    rep.line(format!(
        "A (one sample through the whole model) = {:.1} GiB; the 24 GB card
holds ~22 GiB usable — every whole-micro-batch method is at or above it.",
        a_bytes / gib
    ));
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn svpp_dominates_both_axes() {
        let rep = run();
        let get = |label: &str, key: &str| {
            rep.rows
                .iter()
                .find(|(l, _)| l == label)
                .and_then(|(_, vs)| vs.iter().find(|(k, _)| k == key))
                .map(|(_, v)| *v)
                .unwrap()
        };
        // SVPP (s=8) must beat DAPPLE on memory by >80% (abstract) and
        // have the lowest bubble ratio of all methods.
        let dapple_mem = get("DAPPLE", "peak_act_gib");
        let svpp8_mem = get("SVPP (s=8)", "peak_act_gib");
        assert!(svpp8_mem < 0.2 * dapple_mem * 1.01);
        let svpp_bubble = get("SVPP (s=8)", "bubble_ratio");
        for label in ["DAPPLE", "VPP", "Hanayo", "TeraPipe (s=4)"] {
            assert!(svpp_bubble < get(label, "bubble_ratio"), "{label}");
        }
    }
}
