//! Table 9: A100 vs RTX 4090 — iteration time, achieved TFLOPS, and the
//! 2.5× cost-effectiveness claim.

use mepipe_hw::{
    pricing::{compare_cost_effectiveness, ServerPricing},
    topology::ClusterSpec,
};
use mepipe_model::config::TransformerConfig;
use mepipe_strategy::search_all;

use crate::report::{format_table, ExperimentReport};

fn best_time(model: &TransformerConfig, cluster: &ClusterSpec, gbs: usize) -> Option<(f64, f64)> {
    search_all(model, cluster, gbs)
        .into_iter()
        .filter_map(|(_, e)| e)
        .map(|e| (e.iteration_time, e.mfu))
        .min_by(|a, b| a.0.total_cmp(&b.0))
}

/// Runs the experiment.
pub fn run() -> ExperimentReport {
    let mut rep = ExperimentReport::new(
        "tab9",
        "A100 (32 GPUs) vs RTX 4090 (64 GPUs), GBS 128: iteration time, TFLOPS/GPU, cost-effectiveness",
    );
    let g4090 = ClusterSpec::rtx4090_cluster();
    let a100 = ClusterSpec::a100_cluster();
    let mut rows = Vec::new();
    for (name, model) in [
        ("7B", TransformerConfig::llama2_7b()),
        ("13B", TransformerConfig::llama2_13b()),
        ("34B", TransformerConfig::llama2_34b()),
    ] {
        let (t49, mfu49) = match best_time(&model, &g4090, 128) {
            Some(x) => x,
            None => {
                rows.push(vec![
                    name.into(),
                    "infeasible".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                ]);
                continue;
            }
        };
        let (ta, mfua) = match best_time(&model, &a100, 128) {
            Some(x) => x,
            None => {
                rows.push(vec![
                    name.into(),
                    "-".into(),
                    "-".into(),
                    "infeasible".into(),
                    "-".into(),
                    "-".into(),
                ]);
                continue;
            }
        };
        let tflops49 = mfu49 * 330.0;
        let tflopsa = mfua * 312.0;
        let cost = compare_cost_effectiveness(
            ServerPricing::rtx4090(),
            64,
            t49,
            ServerPricing::a100(),
            32,
            ta,
        );
        rows.push(vec![
            name.into(),
            format!("{:.0} ms", t49 * 1e3),
            format!("{tflops49:.0} TF"),
            format!("{:.0} ms", ta * 1e3),
            format!("{tflopsa:.0} TF"),
            format!("{:.2}x", cost.cost_effectiveness_ratio),
        ]);
        rep.row(
            name,
            &[
                ("iter_4090_ms", t49 * 1e3),
                ("iter_a100_ms", ta * 1e3),
                ("tflops_4090", tflops49),
                ("tflops_a100", tflopsa),
                ("cost_effectiveness", cost.cost_effectiveness_ratio),
            ],
        );
    }
    rep.line(format_table(
        &[
            "model",
            "4090 iter",
            "4090 TFLOPS/GPU",
            "A100 iter",
            "A100 TFLOPS/GPU",
            "4090 cost-effectiveness",
        ],
        &rows,
    ));
    rep.line("Paper: 4090 iteration times comparable to 32x A100 (e.g. 5852 vs 6131 ms on 13B) at ~2.5x better cost-effectiveness.");
    rep
}

#[cfg(test)]
mod tests {
    #[test]
    fn cost_effectiveness_is_about_2_5x() {
        let rep = super::run();
        for (label, vals) in &rep.rows {
            let get = |k: &str| vals.iter().find(|(kk, _)| kk == k).map(|(_, v)| *v);
            let ratio = get("cost_effectiveness").unwrap();
            assert!(
                (1.5..4.0).contains(&ratio),
                "{label}: cost-effectiveness {ratio} far from the paper's 2.5x"
            );
            // Iteration times within 2x of each other ("comparable").
            let t49 = get("iter_4090_ms").unwrap();
            let ta = get("iter_a100_ms").unwrap();
            let rel = t49 / ta;
            assert!(
                (0.5..2.0).contains(&rel),
                "{label}: 4090/A100 time ratio {rel}"
            );
        }
        assert!(!rep.rows.is_empty());
    }
}
