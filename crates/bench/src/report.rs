//! Report plumbing: aligned text tables, CSV, JSON result files.

use std::fs;
use std::path::PathBuf;

/// One regenerated table/figure.
#[derive(Debug, Clone)]
pub struct ExperimentReport {
    /// Experiment id, e.g. `"fig8"`.
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// The rendered text body.
    pub body: String,
    /// Machine-readable rows (label → named values).
    pub rows: Vec<(String, Vec<(String, f64)>)>,
}

impl ExperimentReport {
    /// Creates an empty report.
    pub fn new(id: &str, title: &str) -> Self {
        Self {
            id: id.into(),
            title: title.into(),
            body: String::new(),
            rows: Vec::new(),
        }
    }

    /// Appends a text line to the body.
    pub fn line(&mut self, s: impl AsRef<str>) {
        self.body.push_str(s.as_ref());
        self.body.push('\n');
    }

    /// Records one data row.
    pub fn row(&mut self, label: &str, values: &[(&str, f64)]) {
        self.rows.push((
            label.to_string(),
            values.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
        ));
    }

    /// Full printable form.
    pub fn render(&self) -> String {
        format!("== {} — {} ==\n{}", self.id, self.title, self.body)
    }

    /// Machine-readable JSON form (hand-rolled: the offline build has no
    /// serde). Shape matches the former `#[derive(Serialize)]` output.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"id\": {},\n", json_string(&self.id)));
        out.push_str(&format!("  \"title\": {},\n", json_string(&self.title)));
        out.push_str(&format!("  \"body\": {},\n", json_string(&self.body)));
        out.push_str("  \"rows\": [\n");
        for (i, (label, values)) in self.rows.iter().enumerate() {
            out.push_str(&format!("    [{}, [", json_string(label)));
            for (j, (k, v)) in values.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("[{}, {}]", json_string(k), json_number(*v)));
            }
            out.push_str(if i + 1 < self.rows.len() {
                "]],\n"
            } else {
                "]]\n"
            });
        }
        out.push_str("  ]\n}");
        out
    }
}

/// Escapes a string as a JSON string literal.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats an `f64` as a JSON number (JSON has no NaN/∞: mapped to null).
fn json_number(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Output directory for experiment artifacts.
pub fn output_dir() -> PathBuf {
    let base = std::env::var("CARGO_TARGET_DIR").unwrap_or_else(|_| "target".into());
    PathBuf::from(base).join("experiments")
}

/// Writes a report as `.txt` and `.json` under [`output_dir`]; returns the
/// text path. I/O failures are reported, not fatal (CI may be read-only).
pub fn write_report(report: &ExperimentReport) -> Option<PathBuf> {
    let dir = output_dir();
    if let Err(e) = fs::create_dir_all(&dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return None;
    }
    let txt = dir.join(format!("{}.txt", report.id));
    if let Err(e) = fs::write(&txt, report.render()) {
        eprintln!("warning: cannot write {}: {e}", txt.display());
        return None;
    }
    let _ = fs::write(dir.join(format!("{}.json", report.id)), report.to_json());
    Some(txt)
}

/// Formats a simple aligned table: header + rows of equal arity.
pub fn format_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| {
        let mut line = String::new();
        for (i, c) in cells.iter().enumerate() {
            let pad = widths
                .get(i)
                .copied()
                .unwrap_or(0)
                .saturating_sub(c.chars().count());
            line.push_str(c);
            line.push_str(&" ".repeat(pad + 2));
        }
        line.trim_end().to_string()
    };
    out.push_str(&fmt_row(
        &header.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
        &widths,
    ));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let t = format_table(
            &["name", "value"],
            &[
                vec!["a".into(), "1.0".into()],
                vec!["longer".into(), "2.5".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("a"));
        assert!(lines[3].starts_with("longer"));
    }

    #[test]
    fn report_round_trip() {
        let mut r = ExperimentReport::new("figX", "test");
        r.line("hello");
        r.row("a", &[("t", 1.0)]);
        assert!(r.render().contains("figX"));
        assert!(r.render().contains("hello"));
        assert_eq!(r.rows.len(), 1);
    }

    #[test]
    fn json_escapes_and_shapes() {
        let mut r = ExperimentReport::new("t1", "quote \" and\nnewline");
        r.line("body");
        r.row("a", &[("x", 1.5), ("inf", f64::INFINITY)]);
        r.row("b", &[("y", -2.0)]);
        let j = r.to_json();
        assert!(j.contains("\\\""));
        assert!(j.contains("\\n"));
        assert!(j.contains("[\"x\", 1.5]"));
        // Non-finite values cannot appear in JSON.
        assert!(j.contains("[\"inf\", null]"));
        assert!(j.contains("[\"b\", [[\"y\", -2]]]"));
    }
}
