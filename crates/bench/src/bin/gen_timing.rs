//! Quick timing probe for schedule generation at large shapes.
use mepipe_core::svpp::Mepipe;
use mepipe_schedule::generator::{Dims, ScheduleGenerator};

fn main() {
    use std::time::Instant;
    for (p, v, s, n) in [
        (8usize, 1usize, 4usize, 16usize),
        (16, 1, 16, 32),
        (16, 1, 16, 64),
    ] {
        let dims = Dims::new(p, n).virtual_chunks(v).slices(s);
        let t0 = Instant::now();
        let sch = Mepipe::new().generate(&dims).unwrap();
        println!(
            "p{p} v{v} s{s} n{n}: {} ops in {:?}",
            sch.num_ops(),
            t0.elapsed()
        );
    }
}
