//! Quick timing probe for schedule generation at large shapes.
fn main() {
    use std::time::Instant;
    for (p, v, s, n) in
        [(8usize, 1usize, 4usize, 16usize), (16, 1, 16, 32), (16, 1, 16, 64)]
    {
        let cfg = mepipe_core::svpp::SvppConfig {
            stages: p,
            virtual_chunks: v,
            slices: s,
            micro_batches: n,
            warmup_cap: None,
        };
        let t0 = Instant::now();
        let sch = mepipe_core::svpp::generate_svpp_split(&cfg).unwrap();
        println!("p{p} v{v} s{s} n{n}: {} ops in {:?}", sch.num_ops(), t0.elapsed());
    }
}
