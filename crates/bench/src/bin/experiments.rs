//! Experiment harness: regenerates every table and figure of the paper.
//!
//! ```text
//! experiments            # run everything
//! experiments fig8 tab9  # run a subset
//! experiments --list     # list experiment ids
//! ```
//!
//! Reports print to stdout and are written under `target/experiments/` as
//! `.txt` and `.json`.

use mepipe_bench::{experiments, write_report};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let all = experiments::all();
    if args.iter().any(|a| a == "--list") {
        for (id, _) in &all {
            println!("{id}");
        }
        return;
    }
    let selected: Vec<&mepipe_bench::experiments::Experiment> = if args.is_empty() {
        all.iter().collect()
    } else {
        let sel: Vec<_> = all
            .iter()
            .filter(|(id, _)| args.iter().any(|a| a == id))
            .collect();
        if sel.is_empty() {
            eprintln!("no experiment matches {args:?}; try --list");
            std::process::exit(2);
        }
        sel
    };
    for (id, run) in selected {
        let t0 = std::time::Instant::now();
        let report = run();
        println!("{}", report.render());
        if let Some(path) = write_report(&report) {
            println!(
                "[{id} done in {:.1?}; written to {}]\n",
                t0.elapsed(),
                path.display()
            );
        } else {
            println!("[{id} done in {:.1?}]\n", t0.elapsed());
        }
    }
}
