//! Harness-wide smoke test: every registered experiment runs, produces a
//! non-empty body with data rows, and writes its artifacts.

use mepipe_bench::{experiments, write_report};

#[test]
fn every_experiment_runs_and_writes() {
    let all = experiments::all();
    assert!(
        all.len() >= 20,
        "expected the full experiment roster, got {}",
        all.len()
    );
    for (id, run) in all {
        let rep = run();
        assert_eq!(rep.id, id, "report id mismatch");
        assert!(!rep.body.trim().is_empty(), "{id}: empty body");
        assert!(!rep.rows.is_empty(), "{id}: no data rows");
        let path = write_report(&rep).unwrap_or_else(|| panic!("{id}: write failed"));
        let written = std::fs::read_to_string(&path).unwrap();
        assert!(written.contains(id), "{id}: artifact missing id header");
    }
}
