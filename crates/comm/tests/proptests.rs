//! Property tests for the wire path: codec parity bounds, frame
//! robustness against truncation and corruption, bit-exact f32 frames.

use proptest::prelude::*;

use mepipe_comm::frame::{self, HEADER_BYTES};
use mepipe_comm::{codec, CodecId, MsgKind, StageMsg};
use mepipe_tensor::{Tensor, BF16_MAX_REL_ERR};

/// splitmix64 — deterministic value streams from a seed.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A tensor of arbitrary f32 *bit patterns* (may contain NaN/inf/denormals).
fn raw_bits_tensor(seed: u64, rows: usize, cols: usize) -> Tensor {
    let mut s = seed;
    let data = (0..rows * cols)
        .map(|_| f32::from_bits(splitmix(&mut s) as u32))
        .collect();
    Tensor::from_vec(rows, cols, data)
}

/// A tensor of finite normal-range values (what gradients look like).
fn normal_tensor(seed: u64, rows: usize, cols: usize) -> Tensor {
    let mut s = seed;
    let data = (0..rows * cols)
        .map(|_| {
            let u = splitmix(&mut s);
            let mag = ((u >> 11) as f64 / (1u64 << 53) as f64) as f32 * 100.0 + 1e-3;
            if u & 1 == 0 {
                mag
            } else {
                -mag
            }
        })
        .collect();
    Tensor::from_vec(rows, cols, data)
}

fn data_frame(t: Tensor, id: CodecId) -> Vec<u8> {
    let msg = StageMsg {
        kind: MsgKind::Fwd,
        mb: 1,
        slice: 2,
        g: 3,
        tensor: t,
    };
    let mut out = Vec::new();
    frame::encode_data_into(&mut out, 0, 1, &msg, codec(id));
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The f32 codec is bit-identical through a full frame round trip,
    /// including NaN payloads, infinities and denormals — the property
    /// that makes multi-process training losses match in-process ones
    /// to the last bit.
    #[test]
    fn f32_frames_round_trip_bit_identical(
        seed in 0u64..u64::MAX,
        rows in 1usize..6,
        cols in 1usize..65,
    ) {
        let t = raw_bits_tensor(seed, rows, cols);
        let want: Vec<u32> = t.data().iter().map(|v| v.to_bits()).collect();
        let bytes = data_frame(t, CodecId::F32);
        let h = frame::decode_header(&bytes).unwrap();
        prop_assert!(frame::payload_intact(&h, &bytes));
        let back = frame::decode_payload(&h, &bytes).unwrap();
        let got: Vec<u32> = back.tensor.data().iter().map(|v| v.to_bits()).collect();
        prop_assert_eq!(got, want);
        prop_assert_eq!((back.mb, back.slice, back.g), (1, 2, 3));
    }

    /// The bf16 codec halves the payload and its per-element relative
    /// error stays within the documented bound for normal values.
    #[test]
    fn bf16_frames_halve_bytes_within_error_bound(
        seed in 0u64..u64::MAX,
        rows in 1usize..6,
        cols in 1usize..65,
    ) {
        let t = normal_tensor(seed, rows, cols);
        let want: Vec<f32> = t.data().to_vec();
        let f32_len = data_frame(t.clone(), CodecId::F32).len();
        let bytes = data_frame(t, CodecId::Bf16);
        // Payload = 8-byte tensor header + element bytes; bf16 halves
        // only the element bytes.
        prop_assert_eq!(
            bytes.len() - HEADER_BYTES,
            8 + (f32_len - HEADER_BYTES - 8) / 2,
            "bf16 payload is half the f32 element bytes"
        );
        let h = frame::decode_header(&bytes).unwrap();
        prop_assert!(frame::payload_intact(&h, &bytes));
        let back = frame::decode_payload(&h, &bytes).unwrap();
        for (&got, &want) in back.tensor.data().iter().zip(&want) {
            prop_assert!(
                (got - want).abs() <= want.abs() * BF16_MAX_REL_ERR,
                "bf16 error out of bound: {got} vs {want}"
            );
        }
    }

    /// Every lossy codec honours the error bound it advertises.
    #[test]
    fn lossy_codecs_respect_their_advertised_bound(
        seed in 0u64..u64::MAX,
        cols in 1usize..65,
        id in prop::sample::select(vec![CodecId::Bf16, CodecId::Lossy]),
    ) {
        let c = codec(id);
        let bound = c.max_rel_err();
        prop_assert!(bound > 0.0, "lossy codecs advertise a nonzero bound");
        let t = normal_tensor(seed, 2, cols);
        let want: Vec<f32> = t.data().to_vec();
        let mut enc = Vec::new();
        c.encode_into(&t, &mut enc);
        let (back, used) = c.decode(&enc).unwrap();
        prop_assert_eq!(used, enc.len());
        for (&got, &want) in back.data().iter().zip(&want) {
            prop_assert!((got - want).abs() <= want.abs() * bound);
        }
    }

    /// Truncating a frame anywhere — mid-header or mid-payload — is
    /// rejected structurally, never misdecoded, for every codec.
    #[test]
    fn truncated_frames_are_rejected(
        seed in 0u64..u64::MAX,
        cols in 1usize..33,
        cut_frac in 0.0f64..1.0,
        id in prop::sample::select(vec![CodecId::F32, CodecId::Bf16, CodecId::Lossy]),
    ) {
        let bytes = data_frame(normal_tensor(seed, 2, cols), id);
        let cut = ((bytes.len() - 1) as f64 * cut_frac) as usize;
        prop_assert!(frame::decode_header(&bytes[..cut]).is_err());
    }

    /// Any single corrupted payload byte fails the checksum for every
    /// codec (what drives the reliable layer's retransmit).
    #[test]
    fn corrupt_payload_bytes_are_detected(
        seed in 0u64..u64::MAX,
        cols in 1usize..33,
        pos_frac in 0.0f64..1.0,
        flip in 1u8..=255,
        id in prop::sample::select(vec![CodecId::F32, CodecId::Bf16, CodecId::Lossy]),
    ) {
        let mut bytes = data_frame(normal_tensor(seed, 2, cols), id);
        let payload_len = bytes.len() - HEADER_BYTES;
        let pos = HEADER_BYTES + ((payload_len - 1) as f64 * pos_frac) as usize;
        bytes[pos] ^= flip;
        let h = frame::decode_header(&bytes).unwrap();
        prop_assert!(!frame::payload_intact(&h, &bytes));
    }
}
