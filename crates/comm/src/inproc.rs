//! The in-process backend: bounded, credit-flow-controlled queues
//! between stage threads.
//!
//! This preserves the original runtime's semantics — tensors move
//! between threads by value, no serialization, bit-identical results —
//! while replacing its unbounded channels with *bounded* per-link
//! credits: each sender may have at most `capacity` unconsumed data
//! packets in a receiver's inbox and blocks (accumulating
//! `send_stall_ns`) until the receiver dequeues one. Control packets
//! (acks from a wrapping emulated layer) bypass credits, otherwise the
//! retransmit protocol could deadlock against a full inbox.
//!
//! Shutdown is cooperative: a cleanly closed endpoint flips its inbox
//! shut (late senders get [`CommError::Closed`]); an endpoint dropped
//! *without* closing — a worker that hit an error — raises the shared
//! abort flag, which wakes and fails every blocked send/recv in the
//! transport. That cascade is what replaced the old
//! `expect("channel closed")` panics.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::codec::{codec, CodecId, WireCodec};
use crate::config::CommConfig;
use crate::error::CommError;
use crate::frame::HEADER_BYTES;
use crate::msg::{Packet, StageMsg};
use crate::stats::CommStats;
use crate::{Endpoint, Transport};

/// Condvar re-check period while blocked (bounds reaction time to the
/// abort flag and peer closures).
const POLL: Duration = Duration::from_millis(50);

struct Slot {
    queue: VecDeque<(Instant, Packet)>,
    /// Outstanding data packets per sending stage (the used credits).
    credits_used: Vec<usize>,
    open: bool,
}

struct Inbox {
    slot: Mutex<Slot>,
    recv_cv: Condvar,
    send_cv: Condvar,
}

struct Shared {
    inboxes: Vec<Arc<Inbox>>,
    /// Raised by an endpoint dropped mid-run; fails every blocked wait.
    abort: AtomicBool,
    /// Per-stage clean-close flags (recv gives up when all peers closed).
    closed: Vec<AtomicBool>,
    capacity: usize,
    /// Recycled frame buffers shared by every endpoint: a wrapping
    /// emulated layer lends from here (`lend_tx_buf`), the receiving
    /// side returns consumed frames (`recycle_rx_buf`), so frame bytes
    /// circulate instead of being reallocated per transmission.
    buf_pool: Mutex<Vec<Vec<u8>>>,
    buf_pool_cap: usize,
}

impl Shared {
    fn all_peers_closed(&self, me: usize) -> bool {
        self.closed
            .iter()
            .enumerate()
            .all(|(s, c)| s == me || c.load(Ordering::Acquire))
    }
}

/// The in-process transport: one bounded inbox per stage.
pub struct InProcTransport {
    shared: Arc<Shared>,
    config: CommConfig,
    taken: Mutex<Vec<bool>>,
}

impl InProcTransport {
    /// Creates a transport for `stages` endpoints with `capacity` data
    /// credits per directed link (clamped to at least 1), default knobs.
    pub fn new(stages: usize, capacity: usize) -> Self {
        Self::with_config(stages, capacity, CommConfig::default())
    }

    /// Like [`InProcTransport::new`] with explicit tuning knobs: the
    /// codec (applied as an in-memory round trip so results match the
    /// serializing backends bit-for-bit under lossy codecs), the send
    /// deadline, and the recycle-pool size.
    pub fn with_config(stages: usize, capacity: usize, config: CommConfig) -> Self {
        let inboxes = (0..stages)
            .map(|_| {
                Arc::new(Inbox {
                    slot: Mutex::new(Slot {
                        queue: VecDeque::new(),
                        credits_used: vec![0; stages],
                        open: true,
                    }),
                    recv_cv: Condvar::new(),
                    send_cv: Condvar::new(),
                })
            })
            .collect();
        Self {
            shared: Arc::new(Shared {
                inboxes,
                abort: AtomicBool::new(false),
                closed: (0..stages).map(|_| AtomicBool::new(false)).collect(),
                capacity: capacity.max(1),
                buf_pool: Mutex::new(Vec::new()),
                buf_pool_cap: config.rx_pool,
            }),
            config,
            taken: Mutex::new(vec![false; stages]),
        }
    }

    /// Per-link data credit capacity.
    pub fn capacity(&self) -> usize {
        self.shared.capacity
    }
}

impl Transport for InProcTransport {
    fn stages(&self) -> usize {
        self.shared.inboxes.len()
    }

    fn endpoint(&self, stage: usize) -> Result<Box<dyn Endpoint>, CommError> {
        let mut taken = self.taken.lock().expect("transport lock");
        if stage >= taken.len() {
            return Err(CommError::Protocol(format!(
                "stage {stage} out of range for {} stages",
                taken.len()
            )));
        }
        if std::mem::replace(&mut taken[stage], true) {
            return Err(CommError::Protocol(format!(
                "endpoint for stage {stage} already taken"
            )));
        }
        Ok(Box::new(InProcEndpoint {
            stage,
            shared: Arc::clone(&self.shared),
            codec: self.config.codec,
            send_deadline: self.config.send_deadline,
            scratch: Vec::new(),
            stats: CommStats::new(stage, self.shared.inboxes.len()),
            closed: false,
        }))
    }
}

/// One stage's handle onto the in-process transport.
pub struct InProcEndpoint {
    stage: usize,
    shared: Arc<Shared>,
    codec: CodecId,
    send_deadline: Duration,
    /// Reused encode buffer for the lossy-codec round trip.
    scratch: Vec<u8>,
    stats: CommStats,
    closed: bool,
}

impl InProcEndpoint {
    fn err_if_aborted(&self) -> Result<(), CommError> {
        if self.shared.abort.load(Ordering::Acquire) {
            Err(CommError::Closed { stage: self.stage })
        } else {
            Ok(())
        }
    }

    fn wire_codec(&self) -> &'static dyn WireCodec {
        codec(self.codec)
    }

    /// Approximate wire size of a typed message under this endpoint's
    /// codec, so in-process byte counters are comparable with the
    /// serializing backends.
    fn msg_wire_bytes(&self, msg: &StageMsg) -> u64 {
        (HEADER_BYTES + self.wire_codec().encoded_len(&msg.tensor)) as u64
    }

    /// Applies the codec's loss to `msg` in memory (encode + decode) so
    /// typed in-process delivery matches what a serializing backend
    /// would hand the receiver bit-for-bit. The f32 codec is lossless,
    /// so its round trip is skipped entirely.
    fn apply_codec(&mut self, msg: &mut StageMsg) -> Result<(), CommError> {
        if self.codec == CodecId::F32 {
            return Ok(());
        }
        let c = self.wire_codec();
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.clear();
        c.encode_into(&msg.tensor, &mut scratch);
        let (tensor, _) = c.decode(&scratch)?;
        msg.tensor = tensor;
        self.scratch = scratch;
        Ok(())
    }
}

impl Endpoint for InProcEndpoint {
    fn stage(&self) -> usize {
        self.stage
    }

    fn stages(&self) -> usize {
        self.shared.inboxes.len()
    }

    fn send(&mut self, to: usize, msg: StageMsg) -> Result<(), CommError> {
        let mut msg = msg;
        let precodec = msg.tensor.encoded_len() as u64;
        let t0 = Instant::now();
        self.apply_codec(&mut msg)?;
        let codec_ns = t0.elapsed().as_nanos() as u64;
        let bytes = self.msg_wire_bytes(&msg);
        self.send_packet(
            to,
            Packet::Msg {
                from: self.stage,
                msg,
            },
        )?;
        let link = &mut self.stats.links[to];
        link.tx_messages += 1;
        link.tx_bytes += bytes;
        link.serialize_ns += codec_ns;
        link.payload_bytes_precodec += precodec;
        link.payload_bytes_postcodec += bytes - HEADER_BYTES as u64;
        Ok(())
    }

    fn recv(&mut self) -> Result<StageMsg, CommError> {
        let t0 = Instant::now();
        loop {
            match self.recv_packet(None)? {
                Some(Packet::Msg { from, msg }) => {
                    let bytes = self.msg_wire_bytes(&msg);
                    let link = &mut self.stats.links[from];
                    link.rx_messages += 1;
                    link.rx_bytes += bytes;
                    self.stats.recv_wait_ns += t0.elapsed().as_nanos() as u64;
                    return Ok(msg);
                }
                // Control traffic addressed at a wrapper that isn't
                // there, or a peer closure notice: skip.
                Some(_) => {}
                None => unreachable!("blocking recv_packet returned None"),
            }
        }
    }

    fn try_recv(&mut self) -> Result<Option<StageMsg>, CommError> {
        loop {
            match self.recv_packet(Some(Duration::ZERO))? {
                Some(Packet::Msg { from, msg }) => {
                    let bytes = self.msg_wire_bytes(&msg);
                    let link = &mut self.stats.links[from];
                    link.rx_messages += 1;
                    link.rx_bytes += bytes;
                    return Ok(Some(msg));
                }
                Some(_) => {}
                None => return Ok(None),
            }
        }
    }

    fn send_packet(&mut self, to: usize, pkt: Packet) -> Result<(), CommError> {
        self.err_if_aborted()?;
        let inbox = &self.shared.inboxes[to];
        let takes_credit = pkt.takes_credit();
        let mut slot = inbox.slot.lock().expect("inbox lock");
        let start = Instant::now();
        while slot.open
            && takes_credit
            && slot.credits_used[self.stage] >= self.shared.capacity
            && !self.shared.abort.load(Ordering::Acquire)
        {
            if start.elapsed() > self.send_deadline {
                self.stats.links[to].send_stall_ns += start.elapsed().as_nanos() as u64;
                return Err(CommError::Backpressure { peer: to });
            }
            slot = inbox
                .send_cv
                .wait_timeout(slot, POLL)
                .expect("inbox lock")
                .0;
        }
        self.stats.links[to].send_stall_ns += start.elapsed().as_nanos() as u64;
        if self.shared.abort.load(Ordering::Acquire) || !slot.open {
            return Err(CommError::Closed { stage: self.stage });
        }
        if takes_credit {
            slot.credits_used[self.stage] += 1;
        }
        slot.queue.push_back((Instant::now(), pkt));
        inbox.recv_cv.notify_all();
        Ok(())
    }

    fn recv_packet(&mut self, timeout: Option<Duration>) -> Result<Option<Packet>, CommError> {
        let inbox = Arc::clone(&self.shared.inboxes[self.stage]);
        let start = Instant::now();
        let mut slot = inbox.slot.lock().expect("inbox lock");
        loop {
            if let Some((enqueued, pkt)) = slot.queue.pop_front() {
                let from = pkt.from();
                if pkt.takes_credit() {
                    slot.credits_used[from] -= 1;
                    inbox.send_cv.notify_all();
                }
                drop(slot);
                self.stats.links[from].queue_wait_ns += enqueued.elapsed().as_nanos() as u64;
                return Ok(Some(pkt));
            }
            if self.shared.abort.load(Ordering::Acquire) {
                return Err(CommError::Closed { stage: self.stage });
            }
            if self.shared.all_peers_closed(self.stage) {
                return Err(CommError::Closed { stage: self.stage });
            }
            let wait = match timeout {
                Some(t) => {
                    let elapsed = start.elapsed();
                    if elapsed >= t {
                        return Ok(None);
                    }
                    POLL.min(t - elapsed)
                }
                None => POLL,
            };
            if wait.is_zero() {
                return Ok(None);
            }
            slot = inbox
                .recv_cv
                .wait_timeout(slot, wait)
                .expect("inbox lock")
                .0;
        }
    }

    fn lend_tx_buf(&mut self) -> Vec<u8> {
        self.shared
            .buf_pool
            .lock()
            .expect("buf pool lock")
            .pop()
            .unwrap_or_default()
    }

    fn recycle_rx_buf(&mut self, mut buf: Vec<u8>) {
        let mut pool = self.shared.buf_pool.lock().expect("buf pool lock");
        if pool.len() < self.shared.buf_pool_cap {
            buf.clear();
            pool.push(buf);
        }
    }

    fn stats(&self) -> CommStats {
        self.stats.clone()
    }

    fn close(&mut self) {
        if self.closed {
            return;
        }
        self.closed = true;
        self.shared.closed[self.stage].store(true, Ordering::Release);
        let inbox = &self.shared.inboxes[self.stage];
        let mut slot = inbox.slot.lock().expect("inbox lock");
        slot.open = false;
        drop(slot);
        inbox.send_cv.notify_all();
        // Wake everyone blocked in recv so they re-check peer closures.
        for other in &self.shared.inboxes {
            other.recv_cv.notify_all();
        }
    }
}

impl Drop for InProcEndpoint {
    fn drop(&mut self) {
        if !self.closed {
            // Dropped without a clean close: a worker died mid-run. Fail
            // the whole transport so no peer blocks forever.
            self.shared.abort.store(true, Ordering::Release);
            for inbox in &self.shared.inboxes {
                inbox.recv_cv.notify_all();
                inbox.send_cv.notify_all();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::MsgKind;
    use mepipe_tensor::Tensor;

    fn msg(v: f32) -> StageMsg {
        StageMsg {
            kind: MsgKind::Fwd,
            mb: 0,
            slice: 0,
            g: 1,
            tensor: Tensor::from_vec(1, 1, vec![v]),
        }
    }

    #[test]
    fn round_trip_between_threads() {
        let t = InProcTransport::new(2, 4);
        let mut a = t.endpoint(0).unwrap();
        let mut b = t.endpoint(1).unwrap();
        std::thread::scope(|s| {
            s.spawn(move || {
                a.send(1, msg(42.0)).unwrap();
                a.close();
            });
            let got = b.recv().unwrap();
            assert_eq!(got.tensor.data(), &[42.0]);
            assert_eq!(b.stats().links[0].rx_messages, 1);
            b.close();
        });
    }

    #[test]
    fn credits_block_and_release() {
        let t = InProcTransport::new(2, 1);
        let mut a = t.endpoint(0).unwrap();
        let mut b = t.endpoint(1).unwrap();
        std::thread::scope(|s| {
            s.spawn(move || {
                // Second send must stall until the receiver dequeues.
                a.send(1, msg(1.0)).unwrap();
                a.send(1, msg(2.0)).unwrap();
                let stalled = a.stats().links[1].send_stall_ns;
                assert!(
                    stalled > 10_000_000,
                    "expected a visible stall, got {stalled}ns"
                );
                a.close();
            });
            std::thread::sleep(Duration::from_millis(60));
            assert_eq!(b.recv().unwrap().tensor.data(), &[1.0]);
            assert_eq!(b.recv().unwrap().tensor.data(), &[2.0]);
            b.close();
        });
    }

    #[test]
    fn dirty_drop_aborts_peers() {
        let t = InProcTransport::new(2, 2);
        let a = t.endpoint(0).unwrap();
        let mut b = t.endpoint(1).unwrap();
        std::thread::scope(|s| {
            s.spawn(move || {
                std::thread::sleep(Duration::from_millis(30));
                drop(a); // no close(): simulated worker death
            });
            let err = b.recv().unwrap_err();
            assert!(matches!(err, CommError::Closed { .. }));
        });
    }

    #[test]
    fn clean_close_ends_idle_recv() {
        let t = InProcTransport::new(2, 2);
        let mut a = t.endpoint(0).unwrap();
        let mut b = t.endpoint(1).unwrap();
        std::thread::scope(|s| {
            s.spawn(move || {
                a.close();
            });
            let err = b.recv().unwrap_err();
            assert!(matches!(err, CommError::Closed { .. }));
            b.close();
        });
    }

    #[test]
    fn endpoints_are_exclusive() {
        let t = InProcTransport::new(2, 2);
        let _a = t.endpoint(0).unwrap();
        assert!(t.endpoint(0).is_err());
        assert!(t.endpoint(5).is_err());
    }

    #[test]
    fn try_recv_is_non_blocking() {
        let t = InProcTransport::new(2, 2);
        let mut a = t.endpoint(0).unwrap();
        let mut b = t.endpoint(1).unwrap();
        assert!(b.try_recv().unwrap().is_none());
        a.send(1, msg(7.0)).unwrap();
        assert!(b.try_recv().unwrap().is_some());
        a.close();
        b.close();
    }
}
