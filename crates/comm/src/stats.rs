//! Per-link observability counters.
//!
//! Every endpoint keeps one [`LinkStats`] per peer plus an endpoint-wide
//! receive-wait counter, rolled up into a [`CommStats`]. The runtime
//! surfaces these through `RunStats`, the bench writes them into
//! `BENCH_comm.json`, and `mepipe-sim`'s measured-vs-modeled report
//! validates the emulated wire time against the link cost model.

/// Counters for one directed link (this endpoint ↔ one peer).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Messages sent to the peer.
    pub tx_messages: u64,
    /// Payload + header bytes sent (typed in-process messages count their
    /// would-be wire size so backends are comparable).
    pub tx_bytes: u64,
    /// Messages received from the peer.
    pub rx_messages: u64,
    /// Bytes received from the peer.
    pub rx_bytes: u64,
    /// Time spent serializing tensors for this link, nanoseconds.
    pub serialize_ns: u64,
    /// Time spent deserializing tensors from this link, nanoseconds.
    pub deserialize_ns: u64,
    /// Time sends stalled on flow-control credits or socket writes.
    pub send_stall_ns: u64,
    /// Time packets from this peer sat in the inbox before the stage
    /// dequeued them.
    pub queue_wait_ns: u64,
    /// Emulated wire occupancy: the bandwidth/latency sleeps alone, so
    /// the counter is directly comparable to the alpha–beta link model.
    pub wire_ns: u64,
    /// Time the reliable layer spent waiting for acknowledgements after
    /// a transmission (draining inbound traffic until the peer acks).
    /// Dominated by the *receiver's* schedule, not the link, so it is
    /// kept apart from `wire_ns`.
    pub ack_wait_ns: u64,
    /// Retransmissions performed by the reliable layer.
    pub retries: u64,
    /// Frames the fault injector dropped.
    pub injected_drops: u64,
    /// Frames the fault injector corrupted.
    pub injected_corrupts: u64,
    /// Frames the fault injector delayed.
    pub injected_delays: u64,
    /// Frames this endpoint refused to ack because the checksum failed.
    pub rejected_checksums: u64,
    /// Tensor payload bytes before the wire codec ran (raw f32 size).
    pub payload_bytes_precodec: u64,
    /// Tensor payload bytes after the wire codec ran (what actually hit
    /// the wire). Equal to `payload_bytes_precodec` under the f32 codec;
    /// roughly half under bf16.
    pub payload_bytes_postcodec: u64,
    /// Serialization time that overlapped an in-flight wire write
    /// (double-buffered sends encoding frame k+1 while frame k is on the
    /// wire), nanoseconds. A subset of `serialize_ns`.
    pub encode_overlap_ns: u64,
}

impl LinkStats {
    /// Element-wise sum.
    #[must_use]
    pub fn merged(&self, o: &LinkStats) -> LinkStats {
        LinkStats {
            tx_messages: self.tx_messages + o.tx_messages,
            tx_bytes: self.tx_bytes + o.tx_bytes,
            rx_messages: self.rx_messages + o.rx_messages,
            rx_bytes: self.rx_bytes + o.rx_bytes,
            serialize_ns: self.serialize_ns + o.serialize_ns,
            deserialize_ns: self.deserialize_ns + o.deserialize_ns,
            send_stall_ns: self.send_stall_ns + o.send_stall_ns,
            queue_wait_ns: self.queue_wait_ns + o.queue_wait_ns,
            wire_ns: self.wire_ns + o.wire_ns,
            ack_wait_ns: self.ack_wait_ns + o.ack_wait_ns,
            retries: self.retries + o.retries,
            injected_drops: self.injected_drops + o.injected_drops,
            injected_corrupts: self.injected_corrupts + o.injected_corrupts,
            injected_delays: self.injected_delays + o.injected_delays,
            rejected_checksums: self.rejected_checksums + o.rejected_checksums,
            payload_bytes_precodec: self.payload_bytes_precodec + o.payload_bytes_precodec,
            payload_bytes_postcodec: self.payload_bytes_postcodec + o.payload_bytes_postcodec,
            encode_overlap_ns: self.encode_overlap_ns + o.encode_overlap_ns,
        }
    }
}

/// All counters of one endpoint: per-peer links plus endpoint-wide waits.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CommStats {
    /// The stage this endpoint belongs to.
    pub stage: usize,
    /// Per-peer counters, indexed by peer stage (`links[stage]` unused).
    pub links: Vec<LinkStats>,
    /// Time the stage spent blocked in `recv`/`try_recv` waiting for any
    /// message, nanoseconds (not attributable to a single peer).
    pub recv_wait_ns: u64,
}

impl CommStats {
    /// Zeroed counters for a `stages`-wide endpoint on `stage`.
    pub fn new(stage: usize, stages: usize) -> Self {
        Self {
            stage,
            links: vec![LinkStats::default(); stages],
            recv_wait_ns: 0,
        }
    }

    /// All links folded into one aggregate.
    pub fn total(&self) -> LinkStats {
        self.links
            .iter()
            .fold(LinkStats::default(), |a, l| a.merged(l))
    }

    /// Element-wise sum with another endpoint's counters (layered
    /// backends merge their own counters over the inner backend's).
    #[must_use]
    pub fn merged(&self, o: &CommStats) -> CommStats {
        let n = self.links.len().max(o.links.len());
        let mut links = vec![LinkStats::default(); n];
        for (i, l) in links.iter_mut().enumerate() {
            if let Some(a) = self.links.get(i) {
                *l = l.merged(a);
            }
            if let Some(b) = o.links.get(i) {
                *l = l.merged(b);
            }
        }
        CommStats {
            stage: self.stage,
            links,
            recv_wait_ns: self.recv_wait_ns + o.recv_wait_ns,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_is_element_wise() {
        let mut a = CommStats::new(0, 2);
        a.links[1].tx_messages = 3;
        a.recv_wait_ns = 10;
        let mut b = CommStats::new(0, 2);
        b.links[1].tx_messages = 4;
        b.links[1].retries = 2;
        let m = a.merged(&b);
        assert_eq!(m.links[1].tx_messages, 7);
        assert_eq!(m.links[1].retries, 2);
        assert_eq!(m.recv_wait_ns, 10);
        assert_eq!(m.total().tx_messages, 7);
    }
}
