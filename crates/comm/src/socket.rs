//! The socket backend: length-prefixed frames over Unix-domain sockets
//! or localhost TCP, one duplex stream per stage pair.
//!
//! This is the backend that lets each pipeline stage run as a separate
//! OS process (`mepipe-worker`): all state crossing a stage boundary is
//! explicit bytes. The mesh is rendezvoused deterministically — stage
//! `i` binds its listener first, then *connects* to every stage `j < i`
//! (with retry, since peers race to bind) and *accepts* from every
//! `j > i`; a one-byte hello identifies the connecting stage.
//!
//! The wire path is zero-copy in both directions and involves no relay
//! threads on the hot path:
//!
//! * **Sends** lend a recycled buffer ([`Endpoint::lend_tx_buf`]),
//!   encode the frame in place, and put it on the wire with one
//!   vectored write (length prefix + frame, no concatenation copy).
//!   Frames up to `CommConfig::inline_max_bytes` are written
//!   synchronously on the sending thread while the writer is idle —
//!   the kernel socket buffer absorbs them and delivers asynchronously,
//!   so a thread handoff would only add a context switch. Larger
//!   frames go to a single writer thread through a bounded queue
//!   (depth `CommConfig::tx_depth`): encoding microbatch `k+1` then
//!   overlaps the wire time of microbatch `k`, and the overlapped
//!   portion is counted in `LinkStats::encode_overlap_ns`.
//! * **Receives** happen directly on the stage thread: `recv` performs
//!   timed reads over the peer streams, reassembling length-prefixed
//!   frames into pooled buffers (frames may straddle read boundaries)
//!   that are recycled after decode via [`Endpoint::recycle_rx_buf`].
//!   Decoding runs where the stage's `TensorArena` is installed, so
//!   receive tensors are pooled like every other tensor (see
//!   `mepipe_tensor::wire`). Compared to the previous per-peer reader
//!   threads this removes two scheduler hops per message — on a busy
//!   machine a frame otherwise waits in the kernel buffer for the
//!   reader thread, then in its inbox for the stage thread.
//!
//! Shutdown: a clean close puts a goodbye frame behind any in-flight
//! data, joins the writer, then closes the streams. A receiver hitting
//! EOF *without* having seen the goodbye reports the peer as dead,
//! which fails the local stage fast instead of leaving it blocked on a
//! message that will never arrive.

use std::collections::VecDeque;
use std::io::{IoSlice, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::codec::{codec, CodecId};
use crate::config::CommConfig;
use crate::error::CommError;
use crate::frame::{self, FrameKind};
use crate::msg::{Packet, StageMsg};
use crate::stats::CommStats;
use crate::{Endpoint, Transport};

/// Upper bound for one blocking read when a single peer is live (also
/// bounds the reaction time to closure checks).
const POLL: Duration = Duration::from_millis(50);

/// Nap bounds between non-blocking sweeps while multiplexing several
/// live peers on the stage thread. Without `poll(2)` (no libc) there is
/// no way to block on "any of these streams", so the thread sweeps all
/// peers non-blockingly and naps between empty sweeps, doubling from
/// `RX_NAP_MIN` to `RX_NAP_MAX` — short enough that a frame is noticed
/// promptly, long enough that an idle wait cedes the core to the peer
/// stages actually producing the data.
const RX_NAP_MIN: Duration = Duration::from_micros(20);
const RX_NAP_MAX: Duration = Duration::from_micros(250);

/// Empty multi-peer sweeps that merely yield the core before the sweep
/// loop starts napping (a yield is free when nothing else is runnable
/// and exactly right when a peer stage is).
const RX_YIELD_SWEEPS: usize = 4;

/// Speculative read size: one read may pull several small frames.
const READ_CHUNK: usize = 16 * 1024;

/// Where the mesh lives.
#[derive(Debug, Clone)]
pub enum SocketMode {
    /// Unix-domain sockets `<dir>/mepipe-stage-<i>.sock`.
    Uds(PathBuf),
    /// Localhost TCP, stage `i` listening on `127.0.0.1:(base + i)`.
    Tcp(u16),
}

/// The socket transport: stage processes (or threads) rendezvous into a
/// full mesh of framed streams.
#[derive(Debug, Clone)]
pub struct SocketTransport {
    mode: SocketMode,
    stages: usize,
    config: CommConfig,
}

impl SocketTransport {
    /// Creates a transport description with default knobs (no sockets
    /// opened yet; each [`SocketTransport::endpoint`] call performs its
    /// stage's side of the rendezvous).
    pub fn new(mode: SocketMode, stages: usize) -> Self {
        Self::with_config(mode, stages, CommConfig::default())
    }

    /// Like [`SocketTransport::new`] with explicit tuning knobs: wire
    /// codec, writer-queue depth, inline-write cutoff, receive-buffer
    /// pool size, and the rendezvous/send deadlines.
    pub fn with_config(mode: SocketMode, stages: usize, config: CommConfig) -> Self {
        Self {
            mode,
            stages,
            config,
        }
    }

    fn uds_path(dir: &std::path::Path, stage: usize) -> PathBuf {
        dir.join(format!("mepipe-stage-{stage}.sock"))
    }
}

/// One duplex byte stream of either flavour.
enum Stream {
    Unix(UnixStream),
    Tcp(TcpStream),
}

impl Stream {
    fn try_clone(&self) -> std::io::Result<Stream> {
        Ok(match self {
            Stream::Unix(s) => Stream::Unix(s.try_clone()?),
            Stream::Tcp(s) => Stream::Tcp(s.try_clone()?),
        })
    }

    fn set_read_timeout(&self, t: Option<Duration>) -> std::io::Result<()> {
        match self {
            Stream::Unix(s) => s.set_read_timeout(t),
            Stream::Tcp(s) => s.set_read_timeout(t),
        }
    }

    fn set_nonblocking(&self, nb: bool) -> std::io::Result<()> {
        match self {
            Stream::Unix(s) => s.set_nonblocking(nb),
            Stream::Tcp(s) => s.set_nonblocking(nb),
        }
    }

    fn shutdown(&self) {
        match self {
            Stream::Unix(s) => {
                let _ = s.shutdown(Shutdown::Both);
            }
            Stream::Tcp(s) => {
                let _ = s.shutdown(Shutdown::Both);
            }
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Stream::Unix(s) => s.read(buf),
            Stream::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Stream::Unix(s) => s.write(buf),
            Stream::Tcp(s) => s.write(buf),
        }
    }

    fn write_vectored(&mut self, bufs: &[IoSlice<'_>]) -> std::io::Result<usize> {
        match self {
            Stream::Unix(s) => s.write_vectored(bufs),
            Stream::Tcp(s) => s.write_vectored(bufs),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Stream::Unix(s) => s.flush(),
            Stream::Tcp(s) => s.flush(),
        }
    }
}

/// Writer-thread state: the bounded frame queue plus the tx buffer pool.
struct TxState {
    q: VecDeque<(usize, Vec<u8>)>,
    /// Frames queued or currently on the writer's wire.
    in_flight: usize,
    err: Option<CommError>,
    shutdown: bool,
    pool: Vec<Vec<u8>>,
    pool_cap: usize,
}

struct TxShared {
    state: Mutex<TxState>,
    /// Writer waits here for work (or shutdown).
    cv_send: Condvar,
    /// Senders wait here for queue room (or error).
    cv_room: Condvar,
}

impl Transport for SocketTransport {
    fn stages(&self) -> usize {
        self.stages
    }

    fn endpoint(&self, stage: usize) -> Result<Box<dyn Endpoint>, CommError> {
        if stage >= self.stages {
            return Err(CommError::Protocol(format!(
                "stage {stage} out of range for {} stages",
                self.stages
            )));
        }
        let p = self.stages;
        // 1. Bind my listener before connecting anywhere, so peers can
        // reach me no matter the startup order.
        let (listener, uds_path) = match &self.mode {
            SocketMode::Uds(dir) => {
                let path = Self::uds_path(dir, stage);
                let _ = std::fs::remove_file(&path);
                std::fs::create_dir_all(dir)?;
                (Listener::Unix(UnixListener::bind(&path)?), Some(path))
            }
            SocketMode::Tcp(base) => (
                Listener::Tcp(TcpListener::bind((
                    "127.0.0.1",
                    base + u16::try_from(stage).expect("stage fits in u16"),
                ))?),
                None,
            ),
        };

        let mut streams: Vec<Option<Stream>> = (0..p).map(|_| None).collect();
        // 2. Connect to every lower stage, retrying until it has bound.
        // Backoff starts tiny: losing the startup race by a hair must
        // not cost milliseconds (endpoints are also rebuilt per
        // benchmark iteration, where a long retry sleep would dominate).
        for (peer, slot) in streams.iter_mut().enumerate().take(stage) {
            let deadline = Instant::now() + self.config.connect_timeout;
            let mut backoff = Duration::from_micros(100);
            let mut s = loop {
                let attempt = match &self.mode {
                    SocketMode::Uds(dir) => {
                        UnixStream::connect(Self::uds_path(dir, peer)).map(Stream::Unix)
                    }
                    SocketMode::Tcp(base) => TcpStream::connect((
                        "127.0.0.1",
                        base + u16::try_from(peer).expect("stage fits in u16"),
                    ))
                    .map(Stream::Tcp),
                };
                match attempt {
                    Ok(s) => break s,
                    Err(e) => {
                        if Instant::now() > deadline {
                            return Err(CommError::Io(format!(
                                "stage {stage} could not reach stage {peer}: {e}"
                            )));
                        }
                        std::thread::sleep(backoff);
                        backoff = (backoff * 2).min(Duration::from_millis(2));
                    }
                }
            };
            if let Stream::Tcp(t) = &s {
                let _ = t.set_nodelay(true);
            }
            s.write_all(&[u8::try_from(stage).expect("stage fits in u8")])?;
            *slot = Some(s);
        }
        // 3. Accept one connection from every higher stage.
        for _ in stage + 1..p {
            let mut s = listener.accept()?;
            if let Stream::Tcp(t) = &s {
                let _ = t.set_nodelay(true);
            }
            let mut hello = [0u8; 1];
            s.read_exact(&mut hello)?;
            let peer = hello[0] as usize;
            if peer <= stage || peer >= p || streams[peer].is_some() {
                return Err(CommError::Protocol(format!(
                    "unexpected hello from stage {peer}"
                )));
            }
            streams[peer] = Some(s);
        }

        // 4. Split each stream: the stage thread keeps the read half
        // (frames are reassembled in `recv` itself), the writer thread
        // shares the write half, and a shutdown handle lets close/drop
        // cut the stream even while a read or write is blocked on it.
        let mut writers: Vec<Option<Arc<Mutex<Stream>>>> = (0..p).map(|_| None).collect();
        let mut shut: Vec<Option<Stream>> = (0..p).map(|_| None).collect();
        let mut rx: Vec<Option<PeerRx>> = (0..p).map(|_| None).collect();
        for (peer, slot) in streams.into_iter().enumerate() {
            let Some(s) = slot else { continue };
            rx[peer] = Some(PeerRx::new(s.try_clone()?));
            shut[peer] = Some(s.try_clone()?);
            writers[peer] = Some(Arc::new(Mutex::new(s)));
        }
        let tx = Arc::new(TxShared {
            state: Mutex::new(TxState {
                q: VecDeque::new(),
                in_flight: 0,
                err: None,
                shutdown: false,
                pool: Vec::new(),
                pool_cap: self.config.rx_pool,
            }),
            cv_send: Condvar::new(),
            cv_room: Condvar::new(),
        });
        Ok(Box::new(SocketEndpoint {
            stage,
            stages: p,
            codec: self.config.codec,
            tx_depth: self.config.tx_depth.max(1),
            inline_max: self.config.inline_max_bytes,
            send_deadline: self.config.send_deadline,
            tx,
            writers,
            writer: None,
            shut,
            rx,
            rx_cursor: 0,
            rx_pool: Vec::new(),
            rx_pool_cap: self.config.rx_pool,
            peer_closed: vec![false; p],
            next_seq: vec![0; p],
            stats: CommStats::new(stage, p),
            closed: false,
            uds_path,
        }))
    }
}

enum Listener {
    Unix(UnixListener),
    Tcp(TcpListener),
}

impl Listener {
    fn accept(&self) -> std::io::Result<Stream> {
        Ok(match self {
            Listener::Unix(l) => Stream::Unix(l.accept()?.0),
            Listener::Tcp(l) => Stream::Tcp(l.accept()?.0),
        })
    }
}

/// One vectored write for the length prefix plus the frame body, with a
/// manual continuation loop for partial writes. Replaces the old
/// concatenate-into-a-fresh-`Vec` path: no per-send allocation.
fn write_frame(w: &mut Stream, body: &[u8]) -> std::io::Result<()> {
    let len = u32::try_from(body.len())
        .expect("frame fits u32")
        .to_le_bytes();
    let mut prefix_done = 0usize;
    let mut body_done = 0usize;
    while prefix_done < len.len() || body_done < body.len() {
        let n = if prefix_done < len.len() {
            w.write_vectored(&[IoSlice::new(&len[prefix_done..]), IoSlice::new(body)])?
        } else {
            w.write(&body[body_done..])?
        };
        if n == 0 {
            return Err(std::io::ErrorKind::WriteZero.into());
        }
        let p = n.min(len.len() - prefix_done);
        prefix_done += p;
        body_done += n - p;
    }
    Ok(())
}

/// The endpoint's writer thread: drains the bounded frame queue in
/// order (frames above the inline cutoff, and everything queued behind
/// them) and recycles frame buffers afterwards.
fn write_loop(writers: &[Option<Arc<Mutex<Stream>>>], tx: &TxShared) {
    loop {
        let (to, buf, failed) = {
            let mut st = tx.state.lock().expect("tx lock");
            loop {
                if let Some((to, buf)) = st.q.pop_front() {
                    break (to, buf, st.err.is_some());
                }
                if st.shutdown || st.err.is_some() {
                    return;
                }
                st = tx.cv_send.wait(st).expect("tx lock");
            }
        };
        let res = if failed {
            // Sink the remaining queue after a wire error; senders see
            // the stored error, not a hang.
            Ok(())
        } else {
            match &writers[to] {
                Some(w) => write_frame(&mut w.lock().expect("stream lock"), &buf),
                None => Err(std::io::Error::new(
                    std::io::ErrorKind::NotConnected,
                    format!("no stream to stage {to}"),
                )),
            }
        };
        let mut st = tx.state.lock().expect("tx lock");
        st.in_flight -= 1;
        match res {
            Ok(()) => {
                if st.pool.len() < st.pool_cap {
                    let mut b = buf;
                    b.clear();
                    st.pool.push(b);
                }
            }
            Err(e) => {
                st.err = Some(CommError::Io(e.to_string()));
            }
        }
        drop(st);
        tx.cv_room.notify_all();
    }
}

/// What one pump of a peer stream produced.
enum Pump {
    /// A complete frame (pooled buffer, no length prefix).
    Frame(Vec<u8>),
    /// The read timed out before a complete frame arrived.
    Idle,
    /// EOF — classified against the goodbye by the caller.
    Eof,
}

/// The read half of one peer stream plus its reassembly buffer: frames
/// straddle read boundaries, so unconsumed bytes persist here between
/// `recv` calls.
struct PeerRx {
    stream: Stream,
    /// Raw inbound bytes not yet parsed into frames.
    acc: Vec<u8>,
    /// Parse cursor into `acc` (consumed prefix, compacted lazily).
    pos: usize,
    /// The read mode currently set on the socket (cached to avoid a
    /// setsockopt per read).
    mode: Option<RxMode>,
}

/// How the next read on a peer stream waits. A zero-budget probe must
/// be a *nonblocking* read, not a micro-timeout one: timed reads are
/// subject to kernel timer slack (~50µs by default), which would turn
/// every `try_recv` poll in the W-drain loop into a sleep.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum RxMode {
    NonBlocking,
    Timed(Duration),
}

impl PeerRx {
    fn new(stream: Stream) -> Self {
        Self {
            stream,
            acc: Vec::new(),
            pos: 0,
            mode: None,
        }
    }

    fn set_mode(&mut self, mode: RxMode) -> std::io::Result<()> {
        if self.mode == Some(mode) {
            return Ok(());
        }
        match mode {
            RxMode::NonBlocking => self.stream.set_nonblocking(true)?,
            RxMode::Timed(t) => {
                if !matches!(self.mode, Some(RxMode::Timed(_))) {
                    self.stream.set_nonblocking(false)?;
                }
                self.stream.set_read_timeout(Some(t))?;
            }
        }
        self.mode = Some(mode);
        Ok(())
    }

    /// Extracts the next complete frame from `acc` into a pooled
    /// buffer, if one is fully buffered.
    fn buffered_frame(&mut self, pool: &mut Vec<Vec<u8>>) -> Option<Vec<u8>> {
        let avail = self.acc.len() - self.pos;
        if avail < 4 {
            return None;
        }
        let len = u32::from_le_bytes(
            self.acc[self.pos..self.pos + 4]
                .try_into()
                .expect("4 bytes"),
        ) as usize;
        if avail < 4 + len {
            return None;
        }
        let mut buf = pool.pop().unwrap_or_default();
        buf.clear();
        buf.extend_from_slice(&self.acc[self.pos + 4..self.pos + 4 + len]);
        self.pos += 4 + len;
        if self.pos == self.acc.len() {
            self.acc.clear();
            self.pos = 0;
        }
        Some(buf)
    }

    /// Pumps the stream until a complete frame is buffered, the wait
    /// budget runs out, or the peer goes away.
    fn pump(&mut self, mode: RxMode, pool: &mut Vec<Vec<u8>>) -> std::io::Result<Pump> {
        loop {
            if let Some(frame) = self.buffered_frame(pool) {
                return Ok(Pump::Frame(frame));
            }
            // Keep the parse cursor from pinning consumed bytes.
            if self.pos > 0 {
                self.acc.drain(..self.pos);
                self.pos = 0;
            }
            self.set_mode(mode)?;
            let old = self.acc.len();
            self.acc.resize(old + READ_CHUNK, 0);
            match self.stream.read(&mut self.acc[old..]) {
                Ok(0) => {
                    self.acc.truncate(old);
                    return Ok(Pump::Eof);
                }
                Ok(n) => {
                    self.acc.truncate(old + n);
                    // Loop: the read may have completed a frame.
                }
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    self.acc.truncate(old);
                    return Ok(Pump::Idle);
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {
                    self.acc.truncate(old);
                }
                Err(e) => {
                    self.acc.truncate(old);
                    return Err(e);
                }
            }
        }
    }
}

/// One stage's endpoint on the socket mesh.
pub struct SocketEndpoint {
    stage: usize,
    stages: usize,
    codec: CodecId,
    tx_depth: usize,
    inline_max: usize,
    send_deadline: Duration,
    tx: Arc<TxShared>,
    /// Write halves, shared with the writer thread. The stream mutex is
    /// uncontended on the inline path: the writer only locks a stream
    /// while draining its queue, and the inline path runs only when
    /// that queue is empty.
    writers: Vec<Option<Arc<Mutex<Stream>>>>,
    /// Async writer, spawned lazily by the first above-inline-size
    /// frame; `None` until then.
    writer: Option<std::thread::JoinHandle<()>>,
    /// Shutdown handles (stream clones) so close/drop can cut every
    /// stream even while a read or write is blocked on it.
    shut: Vec<Option<Stream>>,
    /// Read halves + reassembly state, polled by the stage thread.
    rx: Vec<Option<PeerRx>>,
    /// Round-robin start position over live peers.
    rx_cursor: usize,
    /// Recycled receive-frame buffers.
    rx_pool: Vec<Vec<u8>>,
    rx_pool_cap: usize,
    peer_closed: Vec<bool>,
    next_seq: Vec<u64>,
    stats: CommStats,
    closed: bool,
    uds_path: Option<PathBuf>,
}

impl SocketEndpoint {
    /// Puts an encoded frame on the wire: written synchronously right
    /// here when it is small and the async writer is idle (no handoff,
    /// no context switch — the kernel socket buffer already overlaps
    /// delivery with the caller), handed to the writer thread otherwise
    /// (blocking while the bounded queue is full; that wait is the
    /// backpressure the double buffer exerts and lands in
    /// `send_stall_ns`).
    fn dispatch_frame(&mut self, to: usize, buf: Vec<u8>) -> Result<(), CommError> {
        if self.writers[to].is_none() {
            return Err(CommError::Closed { stage: to });
        }
        let start = Instant::now();
        let mut st = self.tx.state.lock().expect("tx lock");
        while st.err.is_none() && !st.shutdown && st.in_flight >= self.tx_depth {
            if start.elapsed() > self.send_deadline {
                drop(st);
                self.stats.links[to].send_stall_ns += start.elapsed().as_nanos() as u64;
                return Err(CommError::Backpressure { peer: to });
            }
            st = self.tx.cv_room.wait_timeout(st, POLL).expect("tx lock").0;
        }
        if let Some(e) = &st.err {
            return Err(e.clone());
        }
        if st.shutdown {
            return Err(CommError::Closed { stage: self.stage });
        }
        if st.in_flight == 0 && buf.len() <= self.inline_max {
            // Inline fast path. The queue is empty and this thread is
            // the only enqueuer, so the writer stays parked and frame
            // order is preserved.
            drop(st);
            let w = Arc::clone(self.writers[to].as_ref().expect("connected stream"));
            let res = write_frame(&mut w.lock().expect("stream lock"), &buf);
            let mut st = self.tx.state.lock().expect("tx lock");
            if st.pool.len() < st.pool_cap {
                let mut b = buf;
                b.clear();
                st.pool.push(b);
            }
            if let Err(e) = res {
                let err = CommError::Io(e.to_string());
                st.err = Some(err.clone());
                return Err(err);
            }
            drop(st);
            self.stats.links[to].send_stall_ns += start.elapsed().as_nanos() as u64;
            return Ok(());
        }
        st.in_flight += 1;
        st.q.push_back((to, buf));
        drop(st);
        // The writer thread exists only once a frame actually needs it
        // (a workload of inline-sized frames never spawns one).
        if self.writer.is_none() {
            let tx2 = Arc::clone(&self.tx);
            let writers2 = self.writers.clone();
            self.writer = Some(
                std::thread::Builder::new()
                    .name(format!("mepipe-comm-tx-{}", self.stage))
                    .spawn(move || write_loop(&writers2, &tx2))
                    .expect("spawn writer thread"),
            );
        }
        self.tx.cv_send.notify_all();
        self.stats.links[to].send_stall_ns += start.elapsed().as_nanos() as u64;
        Ok(())
    }

    /// True while the writer has frames queued or on the wire — i.e.
    /// encoding now would overlap wire time.
    fn wire_busy(&self) -> bool {
        self.tx.state.lock().expect("tx lock").in_flight > 0
    }

    fn all_peers_closed(&self) -> bool {
        self.peer_closed
            .iter()
            .enumerate()
            .all(|(s, &c)| s == self.stage || c)
    }

    /// Handles a data frame on the stage thread: checksum + decode,
    /// then the frame buffer goes back to the receive pool.
    fn open_frame(&mut self, from: usize, bytes: Vec<u8>) -> Result<StageMsg, CommError> {
        let h = frame::decode_header(&bytes)?;
        if !frame::payload_intact(&h, &bytes) {
            // The bare socket backend has no retransmit protocol to
            // recover through (wrap it in Emulated for that).
            self.stats.links[from].rejected_checksums += 1;
            return Err(CommError::Corrupt { peer: from });
        }
        let t0 = Instant::now();
        let msg = frame::decode_payload(&h, &bytes)?;
        let n = bytes.len() as u64;
        self.recycle_rx_buf(bytes);
        let link = &mut self.stats.links[from];
        link.deserialize_ns += t0.elapsed().as_nanos() as u64;
        link.rx_messages += 1;
        link.rx_bytes += n;
        Ok(msg)
    }
}

impl Endpoint for SocketEndpoint {
    fn stage(&self) -> usize {
        self.stage
    }

    fn stages(&self) -> usize {
        self.stages
    }

    fn send(&mut self, to: usize, msg: StageMsg) -> Result<(), CommError> {
        let overlapped = self.wire_busy();
        let mut buf = self.lend_tx_buf();
        let c = codec(self.codec);
        let t0 = Instant::now();
        self.next_seq[to] += 1;
        frame::encode_data_into(&mut buf, self.stage, self.next_seq[to], &msg, c);
        let ser_ns = t0.elapsed().as_nanos() as u64;
        let n = buf.len() as u64;
        let precodec = msg.tensor.encoded_len() as u64;
        self.dispatch_frame(to, buf)?;
        let link = &mut self.stats.links[to];
        link.serialize_ns += ser_ns;
        if overlapped {
            link.encode_overlap_ns += ser_ns;
        }
        link.tx_messages += 1;
        link.tx_bytes += n;
        link.payload_bytes_precodec += precodec;
        link.payload_bytes_postcodec += n - frame::HEADER_BYTES as u64;
        Ok(())
    }

    fn recv(&mut self) -> Result<StageMsg, CommError> {
        let t0 = Instant::now();
        loop {
            match self.recv_packet(None)? {
                Some(Packet::Frame { from, bytes }) => {
                    self.stats.recv_wait_ns += t0.elapsed().as_nanos() as u64;
                    return self.open_frame(from, bytes);
                }
                Some(_) => {} // acks: a wrapping layer's business
                None => unreachable!("blocking recv_packet returned None"),
            }
        }
    }

    fn try_recv(&mut self) -> Result<Option<StageMsg>, CommError> {
        loop {
            match self.recv_packet(Some(Duration::ZERO))? {
                Some(Packet::Frame { from, bytes }) => {
                    return self.open_frame(from, bytes).map(Some);
                }
                Some(_) => {}
                None => return Ok(None),
            }
        }
    }

    fn send_packet(&mut self, to: usize, pkt: Packet) -> Result<(), CommError> {
        match pkt {
            Packet::Frame { bytes, .. } => self.dispatch_frame(to, bytes),
            Packet::Ack { from, seq } => {
                let mut buf = self.lend_tx_buf();
                frame::encode_ack_into(&mut buf, from, seq);
                self.dispatch_frame(to, buf)
            }
            Packet::Msg { msg, .. } => self.send(to, msg),
            Packet::Closed { .. } | Packet::Fault { .. } => Err(CommError::Protocol(
                "closure packets are not sendable".into(),
            )),
        }
    }

    fn recv_packet(&mut self, timeout: Option<Duration>) -> Result<Option<Packet>, CommError> {
        let start = Instant::now();
        let mut nap = RX_NAP_MIN;
        let mut sweeps = 0usize;
        loop {
            if self.all_peers_closed() {
                return Err(CommError::Closed { stage: self.stage });
            }
            let live = (0..self.stages)
                .filter(|&p| self.rx[p].is_some() && !self.peer_closed[p])
                .count();
            // With one live peer, blocking on its stream is exactly
            // right. With several there is nothing to block *on* (no
            // poll without libc): parking a timed read on peer A while
            // peer B's frame sits in the kernel buffer convoys the whole
            // pipeline, so sweep every peer non-blockingly and nap
            // between empty sweeps instead.
            let single = live == 1;
            self.rx_cursor = self.rx_cursor.wrapping_add(1);
            'peers: for idx in 0..self.stages {
                let peer = (self.rx_cursor + idx) % self.stages;
                if self.rx[peer].is_none() || self.peer_closed[peer] {
                    continue 'peers;
                }
                let mode = if !single {
                    RxMode::NonBlocking
                } else {
                    match timeout {
                        // An expired budget still does one nonblocking
                        // read so kernel-buffered frames are seen, not
                        // just already-reassembled ones.
                        Some(t) => match t.saturating_sub(start.elapsed()) {
                            Duration::ZERO => RxMode::NonBlocking,
                            remaining => RxMode::Timed(POLL.min(remaining)),
                        },
                        None => RxMode::Timed(POLL),
                    }
                };
                let rx = self.rx[peer].as_mut().expect("live peer stream");
                let pumped = rx
                    .pump(mode, &mut self.rx_pool)
                    .map_err(|e| CommError::Io(e.to_string()))?;
                match pumped {
                    Pump::Frame(bytes) => {
                        let h = frame::decode_header(&bytes).inspect_err(|_| {
                            // A structurally broken stream has no
                            // recovery path: treat the peer as dead.
                            self.peer_closed[peer] = true;
                        })?;
                        match h.kind {
                            FrameKind::Bye => {
                                self.recycle_rx_buf(bytes);
                                self.peer_closed[peer] = true;
                                break; // live set changed: recompute
                            }
                            FrameKind::Ack => {
                                self.recycle_rx_buf(bytes);
                                return Ok(Some(Packet::Ack {
                                    from: peer,
                                    seq: h.seq,
                                }));
                            }
                            FrameKind::Data(_) => {
                                return Ok(Some(Packet::Frame { from: peer, bytes }));
                            }
                        }
                    }
                    Pump::Idle => {}
                    Pump::Eof => {
                        // EOF without a goodbye: the peer died dirty.
                        self.peer_closed[peer] = true;
                        return Err(CommError::Closed { stage: peer });
                    }
                }
            }
            if let Some(t) = timeout {
                if start.elapsed() >= t {
                    return Ok(None);
                }
            }
            if !single {
                // Empty sweep: cede the core (2-CPU boxes run several
                // stages per core). The first few empty sweeps only
                // yield — if a peer stage is runnable it gets the core
                // and its frame arrives by the next sweep — then fall
                // back to naps with doubling backoff, which survive the
                // kernel's ~50us timer slack without busy-spinning.
                sweeps += 1;
                if sweeps <= RX_YIELD_SWEEPS {
                    std::thread::yield_now();
                } else {
                    let mut d = nap;
                    if let Some(t) = timeout {
                        d = d.min(t.saturating_sub(start.elapsed()));
                    }
                    if !d.is_zero() {
                        std::thread::sleep(d);
                    }
                    nap = (nap * 2).min(RX_NAP_MAX);
                }
            }
        }
    }

    fn lend_tx_buf(&mut self) -> Vec<u8> {
        self.tx
            .state
            .lock()
            .expect("tx lock")
            .pool
            .pop()
            .unwrap_or_default()
    }

    fn recycle_rx_buf(&mut self, mut buf: Vec<u8>) {
        if self.rx_pool.len() < self.rx_pool_cap {
            buf.clear();
            self.rx_pool.push(buf);
        }
    }

    fn stats(&self) -> CommStats {
        self.stats.clone()
    }

    fn close(&mut self) {
        if self.closed {
            return;
        }
        self.closed = true;
        // Let the writer drain every data frame still in flight, then
        // take the tx machinery down before the goodbyes go out.
        {
            let start = Instant::now();
            let mut st = self.tx.state.lock().expect("tx lock");
            while st.err.is_none() && st.in_flight > 0 && start.elapsed() < self.send_deadline {
                st = self.tx.cv_room.wait_timeout(st, POLL).expect("tx lock").0;
            }
            st.shutdown = true;
        }
        self.tx.cv_send.notify_all();
        if let Some(w) = self.writer.take() {
            let _ = w.join();
        }
        // Goodbyes go straight onto each stream, best-effort *per peer*:
        // routing them through the shared tx queue would let one
        // already-departed peer poison the queue's error state and
        // suppress the goodbyes to peers still listening. That matters
        // under bidirectional schedules, where the middle stages finish
        // and close first — the end stages outlive some of their peers
        // and must still say goodbye to each other.
        for to in 0..self.stages {
            if let Some(w) = &self.writers[to] {
                let mut buf = Vec::new();
                frame::encode_bye_into(&mut buf, self.stage);
                let _ = write_frame(&mut w.lock().expect("stream lock"), &buf);
            }
        }
        for s in self.shut.iter().flatten() {
            s.shutdown();
        }
        if let Some(p) = &self.uds_path {
            let _ = std::fs::remove_file(p);
        }
    }
}

impl Drop for SocketEndpoint {
    fn drop(&mut self) {
        if !self.closed {
            // Dirty death: cut the streams without a goodbye so peers
            // see a fault and fail fast. The shutdown unblocks the
            // writer (its writes fail), so the join cannot hang.
            {
                let mut st = self.tx.state.lock().expect("tx lock");
                st.shutdown = true;
            }
            self.tx.cv_send.notify_all();
            for s in self.shut.iter().flatten() {
                s.shutdown();
            }
            if let Some(w) = self.writer.take() {
                let _ = w.join();
            }
            if let Some(p) = &self.uds_path {
                let _ = std::fs::remove_file(p);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::MsgKind;
    use mepipe_tensor::Tensor;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("mepipe-comm-test-{}-{tag}", std::process::id()));
        let _ = std::fs::create_dir_all(&dir);
        dir
    }

    fn msg(v: f32, g: u32) -> StageMsg {
        StageMsg {
            kind: MsgKind::Fwd,
            mb: 0,
            slice: 0,
            g,
            tensor: Tensor::from_vec(1, 2, vec![v, -v]),
        }
    }

    #[test]
    fn uds_mesh_round_trips_in_threads() {
        let dir = tmp_dir("rt");
        let t = SocketTransport::new(SocketMode::Uds(dir.clone()), 3);
        std::thread::scope(|s| {
            let t0 = &t;
            s.spawn(move || {
                let mut e = t0.endpoint(0).unwrap();
                e.send(1, msg(1.5, 1)).unwrap();
                e.send(2, msg(2.5, 2)).unwrap();
                e.close();
            });
            s.spawn(move || {
                let mut e = t0.endpoint(1).unwrap();
                let m = e.recv().unwrap();
                assert_eq!(m.tensor.data(), &[1.5, -1.5]);
                e.send(2, msg(9.0, 2)).unwrap();
                e.close();
            });
            let mut e = t0.endpoint(2).unwrap();
            let mut seen = Vec::new();
            for _ in 0..2 {
                seen.push(e.recv().unwrap().tensor.data()[0]);
            }
            seen.sort_by(f32::total_cmp);
            assert_eq!(seen, vec![2.5, 9.0]);
            assert!(e.stats().total().rx_messages == 2);
            e.close();
        });
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn tcp_mode_round_trips() {
        let t = SocketTransport::new(SocketMode::Tcp(38731), 2);
        std::thread::scope(|s| {
            let t0 = &t;
            s.spawn(move || {
                let mut e = t0.endpoint(1).unwrap();
                let m = e.recv().unwrap();
                assert_eq!(m.tensor.data()[0], 3.0);
                e.close();
            });
            let mut e = t0.endpoint(0).unwrap();
            e.send(1, msg(3.0, 1)).unwrap();
            e.close();
        });
    }

    #[test]
    fn bf16_codec_halves_payload_bytes() {
        let dir = tmp_dir("bf16");
        let t = SocketTransport::with_config(
            SocketMode::Uds(dir.clone()),
            2,
            CommConfig::new().with_codec(CodecId::Bf16),
        );
        std::thread::scope(|s| {
            let t0 = &t;
            s.spawn(move || {
                let mut e = t0.endpoint(0).unwrap();
                let big = StageMsg {
                    kind: MsgKind::Fwd,
                    mb: 0,
                    slice: 0,
                    g: 1,
                    tensor: Tensor::from_vec(4, 64, (0..256).map(|i| i as f32 * 0.37).collect()),
                };
                e.send(1, big).unwrap();
                let link = e.stats().links[1];
                assert_eq!(link.payload_bytes_precodec, 8 + 4 * 256);
                assert_eq!(link.payload_bytes_postcodec, 8 + 2 * 256);
                e.close();
            });
            let mut e = t0.endpoint(1).unwrap();
            let m = e.recv().unwrap();
            assert_eq!(m.tensor.rows(), 4);
            for (i, &v) in m.tensor.data().iter().enumerate() {
                let want = i as f32 * 0.37;
                assert!((v - want).abs() <= want.abs() * mepipe_tensor::BF16_MAX_REL_ERR);
            }
            e.close();
        });
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn large_frames_take_the_async_writer() {
        // Frames above the inline cutoff must flow through the writer
        // thread; back-to-back sends then overlap encode with wire
        // time, which the stats witness.
        let dir = tmp_dir("async");
        let t = SocketTransport::with_config(
            SocketMode::Uds(dir.clone()),
            2,
            CommConfig::new().with_inline_max_bytes(0).with_tx_depth(4),
        );
        std::thread::scope(|s| {
            let t0 = &t;
            s.spawn(move || {
                let mut e = t0.endpoint(0).unwrap();
                for i in 0..16 {
                    e.send(1, msg(i as f32, 1)).unwrap();
                }
                e.close();
            });
            let mut e = t0.endpoint(1).unwrap();
            for i in 0..16 {
                assert_eq!(e.recv().unwrap().tensor.data()[0], i as f32);
            }
            e.close();
        });
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn recycled_buffers_circulate() {
        let dir = tmp_dir("pool");
        let t = SocketTransport::new(SocketMode::Uds(dir.clone()), 2);
        std::thread::scope(|s| {
            let t0 = &t;
            s.spawn(move || {
                let mut e = t0.endpoint(0).unwrap();
                for i in 0..8 {
                    e.send(1, msg(i as f32, 1)).unwrap();
                }
                // Inline writes recycle synchronously, so the pool must
                // already hold a buffer with real capacity.
                assert!(
                    e.lend_tx_buf().capacity() > 0,
                    "tx pool never recycled a buffer"
                );
                e.close();
            });
            let mut e = t0.endpoint(1).unwrap();
            for _ in 0..8 {
                e.recv().unwrap();
            }
            // All frames arrived through the pooled rx path.
            assert_eq!(e.stats().total().rx_messages, 8);
            e.close();
        });
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn dirty_peer_death_is_a_fault() {
        let dir = tmp_dir("fault");
        let t = SocketTransport::new(SocketMode::Uds(dir.clone()), 2);
        std::thread::scope(|s| {
            let t0 = &t;
            s.spawn(move || {
                let e = t0.endpoint(0).unwrap();
                std::thread::sleep(Duration::from_millis(30));
                drop(e); // no close, no goodbye
            });
            let mut e = t0.endpoint(1).unwrap();
            let err = e.recv().unwrap_err();
            assert!(matches!(err, CommError::Closed { .. }));
        });
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn clean_close_ends_idle_recv() {
        let dir = tmp_dir("clean");
        let t = SocketTransport::new(SocketMode::Uds(dir.clone()), 2);
        std::thread::scope(|s| {
            let t0 = &t;
            s.spawn(move || {
                let mut e = t0.endpoint(0).unwrap();
                e.close();
            });
            let mut e = t0.endpoint(1).unwrap();
            let err = e.recv().unwrap_err();
            assert!(matches!(err, CommError::Closed { .. }));
            e.close();
        });
        let _ = std::fs::remove_dir_all(dir);
    }
}
