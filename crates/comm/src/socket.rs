//! The socket backend: length-prefixed frames over Unix-domain sockets
//! or localhost TCP, one duplex stream per stage pair.
//!
//! This is the backend that lets each pipeline stage run as a separate
//! OS process (`mepipe-worker`): all state crossing a stage boundary is
//! explicit bytes. The mesh is rendezvoused deterministically — stage
//! `i` binds its listener first, then *connects* to every stage `j < i`
//! (with retry, since peers race to bind) and *accepts* from every
//! `j > i`; a one-byte hello identifies the connecting stage.
//!
//! Each peer stream gets a reader thread that does blocking reads and
//! pushes complete frames into the endpoint's inbox. Reader threads
//! never decode tensor payloads: decoding happens on the *stage* thread
//! inside `recv`, where the stage's `TensorArena` is installed, so
//! receive buffers are pooled like every other tensor (see
//! `mepipe_tensor::wire`).
//!
//! Shutdown: a clean close writes a goodbye frame to every peer before
//! closing the stream. A reader hitting EOF *without* having seen the
//! goodbye reports the peer as dead ([`Packet::Fault`]), which fails the
//! local stage fast instead of leaving it blocked on a message that will
//! never arrive.

use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::error::CommError;
use crate::frame::{self, FrameKind};
use crate::msg::{Packet, StageMsg};
use crate::stats::CommStats;
use crate::{Endpoint, Transport};

/// Re-check period while blocked on an empty inbox.
const POLL: Duration = Duration::from_millis(50);

/// Where the mesh lives.
#[derive(Debug, Clone)]
pub enum SocketMode {
    /// Unix-domain sockets `<dir>/mepipe-stage-<i>.sock`.
    Uds(PathBuf),
    /// Localhost TCP, stage `i` listening on `127.0.0.1:(base + i)`.
    Tcp(u16),
}

/// The socket transport: stage processes (or threads) rendezvous into a
/// full mesh of framed streams.
#[derive(Debug, Clone)]
pub struct SocketTransport {
    mode: SocketMode,
    stages: usize,
    connect_timeout: Duration,
}

impl SocketTransport {
    /// Creates a transport description (no sockets opened yet; each
    /// [`SocketTransport::endpoint`] call performs its stage's side of
    /// the rendezvous).
    pub fn new(mode: SocketMode, stages: usize) -> Self {
        Self {
            mode,
            stages,
            connect_timeout: Duration::from_secs(20),
        }
    }

    /// Overrides how long a stage waits for its peers to appear.
    #[must_use]
    pub fn with_connect_timeout(mut self, t: Duration) -> Self {
        self.connect_timeout = t;
        self
    }

    fn uds_path(dir: &std::path::Path, stage: usize) -> PathBuf {
        dir.join(format!("mepipe-stage-{stage}.sock"))
    }
}

/// One duplex byte stream of either flavour.
enum Stream {
    Unix(UnixStream),
    Tcp(TcpStream),
}

impl Stream {
    fn try_clone(&self) -> std::io::Result<Stream> {
        Ok(match self {
            Stream::Unix(s) => Stream::Unix(s.try_clone()?),
            Stream::Tcp(s) => Stream::Tcp(s.try_clone()?),
        })
    }

    fn shutdown(&self) {
        match self {
            Stream::Unix(s) => {
                let _ = s.shutdown(Shutdown::Both);
            }
            Stream::Tcp(s) => {
                let _ = s.shutdown(Shutdown::Both);
            }
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Stream::Unix(s) => s.read(buf),
            Stream::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Stream::Unix(s) => s.write(buf),
            Stream::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Stream::Unix(s) => s.flush(),
            Stream::Tcp(s) => s.flush(),
        }
    }
}

struct SharedQueue {
    q: Mutex<VecDeque<(Instant, Packet)>>,
    cv: Condvar,
}

impl SharedQueue {
    fn push(&self, pkt: Packet) {
        self.q
            .lock()
            .expect("inbox lock")
            .push_back((Instant::now(), pkt));
        self.cv.notify_all();
    }
}

impl Transport for SocketTransport {
    fn stages(&self) -> usize {
        self.stages
    }

    fn endpoint(&self, stage: usize) -> Result<Box<dyn Endpoint>, CommError> {
        if stage >= self.stages {
            return Err(CommError::Protocol(format!(
                "stage {stage} out of range for {} stages",
                self.stages
            )));
        }
        let p = self.stages;
        // 1. Bind my listener before connecting anywhere, so peers can
        // reach me no matter the startup order.
        let (listener, uds_path) = match &self.mode {
            SocketMode::Uds(dir) => {
                let path = Self::uds_path(dir, stage);
                let _ = std::fs::remove_file(&path);
                std::fs::create_dir_all(dir)?;
                (Listener::Unix(UnixListener::bind(&path)?), Some(path))
            }
            SocketMode::Tcp(base) => (
                Listener::Tcp(TcpListener::bind((
                    "127.0.0.1",
                    base + u16::try_from(stage).expect("stage fits in u16"),
                ))?),
                None,
            ),
        };

        let mut streams: Vec<Option<Stream>> = (0..p).map(|_| None).collect();
        // 2. Connect to every lower stage, retrying until it has bound.
        for (peer, slot) in streams.iter_mut().enumerate().take(stage) {
            let deadline = Instant::now() + self.connect_timeout;
            let mut s = loop {
                let attempt = match &self.mode {
                    SocketMode::Uds(dir) => {
                        UnixStream::connect(Self::uds_path(dir, peer)).map(Stream::Unix)
                    }
                    SocketMode::Tcp(base) => TcpStream::connect((
                        "127.0.0.1",
                        base + u16::try_from(peer).expect("stage fits in u16"),
                    ))
                    .map(Stream::Tcp),
                };
                match attempt {
                    Ok(s) => break s,
                    Err(e) => {
                        if Instant::now() > deadline {
                            return Err(CommError::Io(format!(
                                "stage {stage} could not reach stage {peer}: {e}"
                            )));
                        }
                        std::thread::sleep(Duration::from_millis(5));
                    }
                }
            };
            if let Stream::Tcp(t) = &s {
                let _ = t.set_nodelay(true);
            }
            s.write_all(&[u8::try_from(stage).expect("stage fits in u8")])?;
            *slot = Some(s);
        }
        // 3. Accept one connection from every higher stage.
        for _ in stage + 1..p {
            let mut s = listener.accept()?;
            if let Stream::Tcp(t) = &s {
                let _ = t.set_nodelay(true);
            }
            let mut hello = [0u8; 1];
            s.read_exact(&mut hello)?;
            let peer = hello[0] as usize;
            if peer <= stage || peer >= p || streams[peer].is_some() {
                return Err(CommError::Protocol(format!(
                    "unexpected hello from stage {peer}"
                )));
            }
            streams[peer] = Some(s);
        }

        // 4. Split each stream: writer stays here, reader thread feeds
        // the inbox.
        let queue = Arc::new(SharedQueue {
            q: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
        });
        let mut writers: Vec<Option<Stream>> = (0..p).map(|_| None).collect();
        for (peer, slot) in streams.into_iter().enumerate() {
            let Some(s) = slot else { continue };
            let reader = s.try_clone()?;
            writers[peer] = Some(s);
            let q = Arc::clone(&queue);
            std::thread::Builder::new()
                .name(format!("mepipe-comm-rx-{stage}-{peer}"))
                .spawn(move || read_loop(reader, peer, &q))
                .expect("spawn reader thread");
        }
        Ok(Box::new(SocketEndpoint {
            stage,
            stages: p,
            writers,
            queue,
            peer_closed: vec![false; p],
            next_seq: vec![0; p],
            stats: CommStats::new(stage, p),
            closed: false,
            uds_path,
        }))
    }
}

enum Listener {
    Unix(UnixListener),
    Tcp(TcpListener),
}

impl Listener {
    fn accept(&self) -> std::io::Result<Stream> {
        Ok(match self {
            Listener::Unix(l) => Stream::Unix(l.accept()?.0),
            Listener::Tcp(l) => Stream::Tcp(l.accept()?.0),
        })
    }
}

/// Blocking per-peer reader: length-prefixed frames into the inbox.
fn read_loop(mut stream: Stream, peer: usize, queue: &SharedQueue) {
    let mut clean = false;
    loop {
        let mut len_buf = [0u8; 4];
        if stream.read_exact(&mut len_buf).is_err() {
            break;
        }
        let len = u32::from_le_bytes(len_buf) as usize;
        let mut bytes = vec![0u8; len];
        if stream.read_exact(&mut bytes).is_err() {
            break;
        }
        match frame::decode_header(&bytes) {
            Ok(h) if h.kind == FrameKind::Bye => {
                clean = true;
                break;
            }
            Ok(h) if h.kind == FrameKind::Ack => {
                queue.push(Packet::Ack {
                    from: peer,
                    seq: h.seq,
                });
            }
            Ok(_) => queue.push(Packet::Frame { from: peer, bytes }),
            Err(_) => break, // structurally broken stream: treat as death
        }
    }
    queue.push(if clean {
        Packet::Closed { from: peer }
    } else {
        Packet::Fault { from: peer }
    });
}

/// One stage's endpoint on the socket mesh.
pub struct SocketEndpoint {
    stage: usize,
    stages: usize,
    writers: Vec<Option<Stream>>,
    queue: Arc<SharedQueue>,
    peer_closed: Vec<bool>,
    next_seq: Vec<u64>,
    stats: CommStats,
    closed: bool,
    uds_path: Option<PathBuf>,
}

impl SocketEndpoint {
    fn write_frame(&mut self, to: usize, bytes: &[u8]) -> Result<(), CommError> {
        let w = self.writers[to]
            .as_mut()
            .ok_or(CommError::Closed { stage: to })?;
        let t0 = Instant::now();
        let mut buf = Vec::with_capacity(4 + bytes.len());
        buf.extend_from_slice(&(u32::try_from(bytes.len()).expect("frame fits u32")).to_le_bytes());
        buf.extend_from_slice(bytes);
        w.write_all(&buf)
            .map_err(|e| CommError::Io(e.to_string()))?;
        // Byte counting stays with the caller (typed `send`, or a
        // wrapping emulated layer) so retransmissions and layering
        // don't double count.
        self.stats.links[to].send_stall_ns += t0.elapsed().as_nanos() as u64;
        Ok(())
    }

    fn all_peers_closed(&self) -> bool {
        self.peer_closed
            .iter()
            .enumerate()
            .all(|(s, &c)| s == self.stage || c)
    }

    /// Handles a data frame on the stage thread: checksum + decode.
    fn open_frame(&mut self, from: usize, bytes: Vec<u8>) -> Result<StageMsg, CommError> {
        let h = frame::decode_header(&bytes)?;
        if !frame::payload_intact(&h, &bytes) {
            // The bare socket backend has no retransmit protocol to
            // recover through (wrap it in Emulated for that).
            self.stats.links[from].rejected_checksums += 1;
            return Err(CommError::Corrupt { peer: from });
        }
        let t0 = Instant::now();
        let msg = frame::decode_payload(&h, &bytes)?;
        let link = &mut self.stats.links[from];
        link.deserialize_ns += t0.elapsed().as_nanos() as u64;
        link.rx_messages += 1;
        link.rx_bytes += bytes.len() as u64;
        Ok(msg)
    }
}

impl Endpoint for SocketEndpoint {
    fn stage(&self) -> usize {
        self.stage
    }

    fn stages(&self) -> usize {
        self.stages
    }

    fn send(&mut self, to: usize, msg: StageMsg) -> Result<(), CommError> {
        let t0 = Instant::now();
        self.next_seq[to] += 1;
        let bytes = frame::encode_data(self.stage, self.next_seq[to], &msg);
        self.stats.links[to].serialize_ns += t0.elapsed().as_nanos() as u64;
        let n = bytes.len() as u64;
        self.write_frame(to, &bytes)?;
        let link = &mut self.stats.links[to];
        link.tx_messages += 1;
        link.tx_bytes += n;
        Ok(())
    }

    fn recv(&mut self) -> Result<StageMsg, CommError> {
        let t0 = Instant::now();
        loop {
            match self.recv_packet(None)? {
                Some(Packet::Frame { from, bytes }) => {
                    self.stats.recv_wait_ns += t0.elapsed().as_nanos() as u64;
                    return self.open_frame(from, bytes);
                }
                Some(_) => {} // acks/closures: state updated in recv_packet
                None => unreachable!("blocking recv_packet returned None"),
            }
        }
    }

    fn try_recv(&mut self) -> Result<Option<StageMsg>, CommError> {
        loop {
            match self.recv_packet(Some(Duration::ZERO))? {
                Some(Packet::Frame { from, bytes }) => {
                    return self.open_frame(from, bytes).map(Some);
                }
                Some(_) => {}
                None => return Ok(None),
            }
        }
    }

    fn send_packet(&mut self, to: usize, pkt: Packet) -> Result<(), CommError> {
        match pkt {
            Packet::Frame { bytes, .. } => self.write_frame(to, &bytes),
            Packet::Ack { from, seq } => {
                let bytes = frame::encode_ack(from, seq);
                self.write_frame(to, &bytes)
            }
            Packet::Msg { msg, .. } => self.send(to, msg),
            Packet::Closed { .. } | Packet::Fault { .. } => Err(CommError::Protocol(
                "closure packets are not sendable".into(),
            )),
        }
    }

    fn recv_packet(&mut self, timeout: Option<Duration>) -> Result<Option<Packet>, CommError> {
        let start = Instant::now();
        let queue = Arc::clone(&self.queue);
        let mut q = queue.q.lock().expect("inbox lock");
        loop {
            if let Some((enqueued, pkt)) = q.pop_front() {
                drop(q);
                let from = pkt.from();
                self.stats.links[from].queue_wait_ns += enqueued.elapsed().as_nanos() as u64;
                match &pkt {
                    Packet::Closed { from } => self.peer_closed[*from] = true,
                    Packet::Fault { from } => {
                        // A peer died dirty: fail fast.
                        self.peer_closed[*from] = true;
                        return Err(CommError::Closed { stage: *from });
                    }
                    _ => {}
                }
                return Ok(Some(pkt));
            }
            if self.all_peers_closed() {
                return Err(CommError::Closed { stage: self.stage });
            }
            let wait = match timeout {
                Some(t) => {
                    let elapsed = start.elapsed();
                    if elapsed >= t {
                        return Ok(None);
                    }
                    POLL.min(t - elapsed)
                }
                None => POLL,
            };
            if wait.is_zero() {
                return Ok(None);
            }
            q = queue.cv.wait_timeout(q, wait).expect("inbox lock").0;
        }
    }

    fn stats(&self) -> CommStats {
        self.stats.clone()
    }

    fn close(&mut self) {
        if self.closed {
            return;
        }
        self.closed = true;
        let bye = frame::encode_bye(self.stage);
        for to in 0..self.stages {
            if self.writers[to].is_some() {
                let _ = self.write_frame(to, &bye);
            }
        }
        for w in self.writers.iter().flatten() {
            w.shutdown();
        }
        if let Some(p) = &self.uds_path {
            let _ = std::fs::remove_file(p);
        }
    }
}

impl Drop for SocketEndpoint {
    fn drop(&mut self) {
        if !self.closed {
            // Dirty death: shut the streams without a goodbye so peers
            // see a fault and fail fast.
            for w in self.writers.iter().flatten() {
                w.shutdown();
            }
            if let Some(p) = &self.uds_path {
                let _ = std::fs::remove_file(p);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::MsgKind;
    use mepipe_tensor::Tensor;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("mepipe-comm-test-{}-{tag}", std::process::id()));
        let _ = std::fs::create_dir_all(&dir);
        dir
    }

    fn msg(v: f32, g: u32) -> StageMsg {
        StageMsg {
            kind: MsgKind::Fwd,
            mb: 0,
            slice: 0,
            g,
            tensor: Tensor::from_vec(1, 2, vec![v, -v]),
        }
    }

    #[test]
    fn uds_mesh_round_trips_in_threads() {
        let dir = tmp_dir("rt");
        let t = SocketTransport::new(SocketMode::Uds(dir.clone()), 3);
        std::thread::scope(|s| {
            let t0 = &t;
            s.spawn(move || {
                let mut e = t0.endpoint(0).unwrap();
                e.send(1, msg(1.5, 1)).unwrap();
                e.send(2, msg(2.5, 2)).unwrap();
                e.close();
            });
            s.spawn(move || {
                let mut e = t0.endpoint(1).unwrap();
                let m = e.recv().unwrap();
                assert_eq!(m.tensor.data(), &[1.5, -1.5]);
                e.send(2, msg(9.0, 2)).unwrap();
                e.close();
            });
            let mut e = t0.endpoint(2).unwrap();
            let mut seen = Vec::new();
            for _ in 0..2 {
                seen.push(e.recv().unwrap().tensor.data()[0]);
            }
            seen.sort_by(f32::total_cmp);
            assert_eq!(seen, vec![2.5, 9.0]);
            assert!(e.stats().total().rx_messages == 2);
            e.close();
        });
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn tcp_mode_round_trips() {
        let t = SocketTransport::new(SocketMode::Tcp(38731), 2);
        std::thread::scope(|s| {
            let t0 = &t;
            s.spawn(move || {
                let mut e = t0.endpoint(1).unwrap();
                let m = e.recv().unwrap();
                assert_eq!(m.tensor.data()[0], 3.0);
                e.close();
            });
            let mut e = t0.endpoint(0).unwrap();
            e.send(1, msg(3.0, 1)).unwrap();
            e.close();
        });
    }

    #[test]
    fn dirty_peer_death_is_a_fault() {
        let dir = tmp_dir("fault");
        let t = SocketTransport::new(SocketMode::Uds(dir.clone()), 2);
        std::thread::scope(|s| {
            let t0 = &t;
            s.spawn(move || {
                let e = t0.endpoint(0).unwrap();
                std::thread::sleep(Duration::from_millis(30));
                drop(e); // no close, no goodbye
            });
            let mut e = t0.endpoint(1).unwrap();
            let err = e.recv().unwrap_err();
            assert!(matches!(err, CommError::Closed { .. }));
        });
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn clean_close_ends_idle_recv() {
        let dir = tmp_dir("clean");
        let t = SocketTransport::new(SocketMode::Uds(dir.clone()), 2);
        std::thread::scope(|s| {
            let t0 = &t;
            s.spawn(move || {
                let mut e = t0.endpoint(0).unwrap();
                e.close();
            });
            let mut e = t0.endpoint(1).unwrap();
            let err = e.recv().unwrap_err();
            assert!(matches!(err, CommError::Closed { .. }));
            e.close();
        });
        let _ = std::fs::remove_dir_all(dir);
    }
}
