//! The typed error surface of the transport layer.
//!
//! Every failure mode a link can hit — peer gone, retransmit budget
//! exhausted, unrecoverable corruption, backpressure deadline, raw I/O —
//! maps to one [`CommError`] variant. The pipeline runtime propagates
//! these out of `run_iteration` instead of panicking, which is what turns
//! a dead stage into a graceful whole-pipeline shutdown.

use std::fmt;

use mepipe_tensor::WireError;

/// A transport-layer failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommError {
    /// The peer endpoint (or the whole transport) has shut down.
    Closed {
        /// Stage whose endpoint observed the closure.
        stage: usize,
    },
    /// A reliable send exhausted its retransmit budget without an ack.
    Timeout {
        /// Peer stage the send was addressed to.
        peer: usize,
        /// Transmission attempts made (first try + retries).
        attempts: u32,
    },
    /// A frame failed checksum or structural validation on a backend
    /// with no retransmit path to recover through.
    Corrupt {
        /// Peer stage the frame claimed to come from.
        peer: usize,
    },
    /// A send stalled on flow-control credits past the deadline.
    Backpressure {
        /// Peer stage whose inbox never freed a credit.
        peer: usize,
    },
    /// An operating-system I/O failure (socket backends).
    Io(String),
    /// A malformed frame or a protocol-state violation.
    Protocol(String),
    /// The peer speaks a different frame format: its version byte (or
    /// codec id) is not one this build understands. Distinct from
    /// [`CommError::Protocol`] so mixed-version deployments fail with an
    /// actionable error instead of a checksum or parse failure.
    Version {
        /// The version or codec byte the peer sent.
        got: u8,
        /// The frame version this build speaks.
        want: u8,
    },
}

impl fmt::Display for CommError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommError::Closed { stage } => {
                write!(f, "transport closed (observed on stage {stage})")
            }
            CommError::Timeout { peer, attempts } => {
                write!(f, "no ack from stage {peer} after {attempts} attempts")
            }
            CommError::Corrupt { peer } => {
                write!(f, "unrecoverable corrupt frame from stage {peer}")
            }
            CommError::Backpressure { peer } => {
                write!(
                    f,
                    "send to stage {peer} stalled past the backpressure deadline"
                )
            }
            CommError::Io(e) => write!(f, "transport i/o error: {e}"),
            CommError::Protocol(e) => write!(f, "transport protocol error: {e}"),
            CommError::Version { got, want } => {
                write!(
                    f,
                    "peer wire format {got} is not the supported version {want}"
                )
            }
        }
    }
}

impl std::error::Error for CommError {}

impl From<std::io::Error> for CommError {
    fn from(e: std::io::Error) -> Self {
        CommError::Io(e.to_string())
    }
}

impl From<WireError> for CommError {
    fn from(e: WireError) -> Self {
        CommError::Protocol(e.to_string())
    }
}
