//! The length-delimited wire frame: header, checksum, tensor payload.
//!
//! Layout (all little-endian, 40-byte header):
//!
//! ```text
//! offset  field        type  meaning
//!      0  magic        u32   0x4D455043 ("MEPC")
//!      4  version      u8    format version, currently 2
//!      5  kind         u8    0 = fwd data, 1 = bwd data, 2 = ack, 3 = bye
//!      6  from         u8    sending stage
//!      7  codec        u8    payload codec id (see [`crate::codec`])
//!      8  seq          u64   per-link data sequence number (1-based)
//!     16  mb           u32   micro-batch tag
//!     20  slice        u32   slice tag
//!     24  g            u32   destination global position tag
//!     28  payload_len  u32   tensor payload bytes after the header
//!     32  checksum     u64   lane-parallel word FNV-1a over the payload
//!     40  payload      ...   codec-encoded tensor (control frames: empty)
//! ```
//!
//! Version 2 repurposed the reserved flags byte (offset 7) as the codec
//! id, which is why the version bumped: a v1 receiver would silently
//! misdecode a bf16 payload as f32. Version (or codec) bytes this build
//! does not speak are rejected with the typed [`CommError::Version`] —
//! never a checksum failure, so mixed-version deployments fail with an
//! actionable error.
//!
//! Encoding is scatter-gather in place: [`encode_data_into`] writes the
//! header with a length/checksum placeholder into the caller's buffer,
//! appends the codec-encoded payload directly behind it, then patches
//! the two fields — no intermediate payload vector, no concatenation
//! copy. Callers lend buffers through `Endpoint::lend_tx_buf` and the
//! endpoint recycles them after the write, so steady-state sends
//! allocate nothing.
//!
//! The checksum covers the payload only: the emulated fault injector
//! corrupts payload bytes, and a receiver that sees a checksum mismatch
//! silently refuses to ack, which is what drives the sender's
//! retransmit. Structural header damage is caught by the magic/version/
//! length validation instead. On stream transports the frame is preceded
//! by a `u32` length prefix (see [`crate::socket`]).

use crate::codec::{codec_from_wire, WireCodec};
use crate::error::CommError;
use crate::msg::{MsgKind, StageMsg};

/// Frame magic, "MEPC".
pub const MAGIC: u32 = 0x4D45_5043;
/// Current frame format version (2: flags byte became the codec id).
pub const VERSION: u8 = 2;
/// Header length in bytes.
pub const HEADER_BYTES: usize = 40;
/// `kind` byte of an ack frame (data frames use [`MsgKind::to_wire`]).
const KIND_ACK: u8 = 2;
/// `kind` byte of a goodbye frame (clean shutdown announcement).
const KIND_BYE: u8 = 3;

/// What a frame carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// A boundary tensor moving in `MsgKind`'s direction.
    Data(MsgKind),
    /// A link-level cumulative acknowledgement.
    Ack,
    /// A clean-shutdown goodbye: the sender finished its schedule.
    Bye,
}

const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;
const FNV_BASIS: u64 = 0xcbf2_9ce4_8422_2325;

/// The payload checksum: FNV-1a run over 8-byte words in four
/// independent lanes, folded together at the end. Byte-serial FNV is a
/// multiply-latency chain per *byte*; four word lanes cut that to ~1/30
/// on multi-KiB payloads, and every payload is hashed twice (sender
/// stamp, receiver verify), putting the hash squarely on the wire hot
/// path. Any single corrupted word still flips its lane (xor then
/// multiply by an odd prime is injective mod 2^64) and therefore the
/// folded sum. The tail word carries a length tag so truncation into
/// the zero padding is not silent.
pub fn checksum(bytes: &[u8]) -> u64 {
    let mut lanes = [
        FNV_BASIS,
        FNV_BASIS ^ 0x9E37_79B9_7F4A_7C15,
        FNV_BASIS ^ 0xC2B2_AE3D_27D4_EB4F,
        FNV_BASIS ^ 0x1656_67B1_9E37_79F9,
    ];
    let mut blocks = bytes.chunks_exact(32);
    for block in blocks.by_ref() {
        for (lane, word) in lanes.iter_mut().zip(block.chunks_exact(8)) {
            *lane ^= u64::from_le_bytes(word.try_into().expect("8 bytes"));
            *lane = lane.wrapping_mul(FNV_PRIME);
        }
    }
    let mut h = lanes[0];
    for &lane in &lanes[1..] {
        h ^= lane;
        h = h.wrapping_mul(FNV_PRIME);
    }
    let mut words = blocks.remainder().chunks_exact(8);
    for word in words.by_ref() {
        h ^= u64::from_le_bytes(word.try_into().expect("8 bytes"));
        h = h.wrapping_mul(FNV_PRIME);
    }
    let tail = words.remainder();
    if !tail.is_empty() {
        let mut t = [0u8; 8];
        t[..tail.len()].copy_from_slice(tail);
        t[7] = tail.len() as u8;
        h ^= u64::from_le_bytes(t);
        h = h.wrapping_mul(FNV_PRIME);
    }
    // Final avalanche so short payloads spread across all 64 bits.
    h ^= h >> 32;
    h.wrapping_mul(FNV_PRIME)
}

/// A decoded frame header (payload still raw).
#[derive(Debug, Clone, Copy)]
pub struct Header {
    /// What the frame carries.
    pub kind: FrameKind,
    /// Sending stage.
    pub from: usize,
    /// Payload codec id byte (resolved lazily by [`decode_payload`] so
    /// control frames never need a known codec).
    pub codec: u8,
    /// Per-link sequence number.
    pub seq: u64,
    /// Micro-batch tag (data frames).
    pub mb: u32,
    /// Slice tag (data frames).
    pub slice: u32,
    /// Global-position tag (data frames).
    pub g: u32,
    /// Payload byte count.
    pub payload_len: usize,
    /// Stored payload checksum.
    pub checksum: u64,
}

/// Encodes a data frame carrying `msg` in place: clears `out`, writes
/// the header, appends the codec-encoded payload directly behind it and
/// patches the length/checksum fields. `out` ends up holding the
/// complete frame, ready for a vectored stream write.
pub fn encode_data_into(
    out: &mut Vec<u8>,
    from: usize,
    seq: u64,
    msg: &StageMsg,
    codec: &dyn WireCodec,
) {
    out.clear();
    out.reserve(HEADER_BYTES + codec.encoded_len(&msg.tensor));
    push_header(
        out,
        msg.kind.to_wire(),
        from,
        codec.id().to_wire(),
        seq,
        msg.mb,
        msg.slice,
        msg.g,
    );
    codec.encode_into(&msg.tensor, out);
    patch_payload_fields(out);
}

/// Encodes an ack frame for link sequence `seq` from stage `from` into
/// `out` (cleared first).
pub fn encode_ack_into(out: &mut Vec<u8>, from: usize, seq: u64) {
    out.clear();
    push_header(out, KIND_ACK, from, 0, seq, 0, 0, 0);
    patch_payload_fields(out);
}

/// Encodes a goodbye frame from stage `from` (clean shutdown) into
/// `out` (cleared first).
pub fn encode_bye_into(out: &mut Vec<u8>, from: usize) {
    out.clear();
    push_header(out, KIND_BYE, from, 0, 0, 0, 0, 0);
    patch_payload_fields(out);
}

/// Writes the fixed header with zeroed payload_len/checksum fields;
/// [`patch_payload_fields`] fills them once the payload is in place.
#[allow(clippy::too_many_arguments)]
fn push_header(
    out: &mut Vec<u8>,
    kind: u8,
    from: usize,
    codec: u8,
    seq: u64,
    mb: u32,
    slice: u32,
    g: u32,
) {
    out.extend_from_slice(&MAGIC.to_le_bytes());
    out.push(VERSION);
    out.push(kind);
    out.push(u8::try_from(from).expect("stage fits in u8"));
    out.push(codec);
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(&mb.to_le_bytes());
    out.extend_from_slice(&slice.to_le_bytes());
    out.extend_from_slice(&g.to_le_bytes());
    out.extend_from_slice(&[0u8; 12]); // payload_len + checksum, patched
}

/// Stamps the payload length and checksum over the placeholder written
/// by [`push_header`], after the payload has been appended in place.
fn patch_payload_fields(out: &mut [u8]) {
    let payload_len = out.len() - HEADER_BYTES;
    let sum = checksum(&out[HEADER_BYTES..]);
    out[28..32].copy_from_slice(&(payload_len as u32).to_le_bytes());
    out[32..40].copy_from_slice(&sum.to_le_bytes());
}

fn le_u32(b: &[u8]) -> u32 {
    u32::from_le_bytes(b.try_into().unwrap())
}

fn le_u64(b: &[u8]) -> u64 {
    u64::from_le_bytes(b.try_into().unwrap())
}

/// Validates the structural header of `bytes` (magic, version, length).
///
/// # Errors
///
/// Returns [`CommError::Version`] when the version byte is not ours
/// (e.g. a pre-codec v1 sender), [`CommError::Protocol`] on any other
/// structural mismatch. Checksum validation is separate
/// ([`payload_intact`]) because a bad checksum is a *recoverable*
/// condition (refuse to ack, wait for retransmit) while a bad header is
/// not.
pub fn decode_header(bytes: &[u8]) -> Result<Header, CommError> {
    if bytes.len() < HEADER_BYTES {
        return Err(CommError::Protocol(format!(
            "frame shorter than header: {} bytes",
            bytes.len()
        )));
    }
    if le_u32(&bytes[0..4]) != MAGIC {
        return Err(CommError::Protocol("bad frame magic".into()));
    }
    if bytes[4] != VERSION {
        return Err(CommError::Version {
            got: bytes[4],
            want: VERSION,
        });
    }
    let kind = match bytes[5] {
        KIND_ACK => FrameKind::Ack,
        KIND_BYE => FrameKind::Bye,
        k => FrameKind::Data(
            MsgKind::from_wire(k)
                .ok_or_else(|| CommError::Protocol(format!("unknown frame kind {k}")))?,
        ),
    };
    let payload_len = le_u32(&bytes[28..32]) as usize;
    if bytes.len() != HEADER_BYTES + payload_len {
        return Err(CommError::Protocol(format!(
            "frame length {} disagrees with payload_len {payload_len}",
            bytes.len()
        )));
    }
    Ok(Header {
        kind,
        from: bytes[6] as usize,
        codec: bytes[7],
        seq: le_u64(&bytes[8..16]),
        mb: le_u32(&bytes[16..20]),
        slice: le_u32(&bytes[20..24]),
        g: le_u32(&bytes[24..28]),
        payload_len,
        checksum: le_u64(&bytes[32..40]),
    })
}

/// Whether the payload bytes match the header's stored checksum.
pub fn payload_intact(header: &Header, bytes: &[u8]) -> bool {
    checksum(&bytes[HEADER_BYTES..]) == header.checksum
}

/// Decodes the tensor payload of a validated data frame into a
/// [`StageMsg`], dispatching on the header's codec id. Call on the
/// receiving *stage* thread so the tensor is served by its arena.
///
/// # Errors
///
/// Returns [`CommError::Version`] for an unknown codec id,
/// [`CommError::Protocol`] if the payload is not a well-formed tensor
/// encoding or the frame is an ack.
pub fn decode_payload(header: &Header, bytes: &[u8]) -> Result<StageMsg, CommError> {
    let FrameKind::Data(kind) = header.kind else {
        return Err(CommError::Protocol("control frame has no payload".into()));
    };
    let codec = codec_from_wire(header.codec)?;
    let (tensor, used) = codec.decode(&bytes[HEADER_BYTES..])?;
    if used != header.payload_len {
        return Err(CommError::Protocol(format!(
            "payload has {} trailing bytes",
            header.payload_len - used
        )));
    }
    Ok(StageMsg {
        kind,
        mb: header.mb,
        slice: header.slice,
        g: header.g,
        tensor,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{codec, CodecId};
    use mepipe_tensor::Tensor;

    fn msg() -> StageMsg {
        StageMsg {
            kind: MsgKind::Fwd,
            mb: 3,
            slice: 1,
            g: 2,
            tensor: Tensor::from_vec(2, 2, vec![1.0, -2.0, f32::NAN, 0.5]),
        }
    }

    fn data_frame(codec_id: CodecId) -> Vec<u8> {
        let mut out = Vec::new();
        encode_data_into(&mut out, 1, 7, &msg(), codec(codec_id));
        out
    }

    #[test]
    fn data_frame_round_trips() {
        let bytes = data_frame(CodecId::F32);
        let h = decode_header(&bytes).unwrap();
        assert_eq!((h.from, h.seq, h.mb, h.slice, h.g), (1, 7, 3, 1, 2));
        assert_eq!(h.codec, CodecId::F32.to_wire());
        assert!(payload_intact(&h, &bytes));
        let back = decode_payload(&h, &bytes).unwrap();
        assert_eq!(back.kind, MsgKind::Fwd);
        assert_eq!(back.tensor.data()[0], 1.0);
        assert!(back.tensor.data()[2].is_nan());
    }

    #[test]
    fn bf16_frame_is_smaller_and_decodes_via_header_codec() {
        let f32_frame = data_frame(CodecId::F32);
        let bf16_frame = data_frame(CodecId::Bf16);
        assert!(bf16_frame.len() < f32_frame.len());
        let h = decode_header(&bf16_frame).unwrap();
        assert_eq!(h.codec, CodecId::Bf16.to_wire());
        let back = decode_payload(&h, &bf16_frame).unwrap();
        assert_eq!(back.tensor.data()[0], 1.0);
        assert!(back.tensor.data()[2].is_nan());
    }

    #[test]
    fn encode_into_reuses_the_buffer_without_reallocating() {
        let mut buf = Vec::new();
        encode_data_into(&mut buf, 0, 1, &msg(), codec(CodecId::F32));
        let cap = buf.capacity();
        let ptr = buf.as_ptr();
        encode_data_into(&mut buf, 0, 2, &msg(), codec(CodecId::F32));
        assert_eq!(buf.capacity(), cap);
        assert_eq!(buf.as_ptr(), ptr, "second encode reused the allocation");
    }

    #[test]
    fn ack_and_bye_frames_round_trip() {
        let mut bytes = Vec::new();
        encode_ack_into(&mut bytes, 2, 41);
        let h = decode_header(&bytes).unwrap();
        assert_eq!(h.kind, FrameKind::Ack);
        assert_eq!((h.from, h.seq), (2, 41));
        assert!(payload_intact(&h, &bytes));
        let mut bye_bytes = Vec::new();
        encode_bye_into(&mut bye_bytes, 3);
        let bye = decode_header(&bye_bytes).unwrap();
        assert_eq!(bye.kind, FrameKind::Bye);
        assert_eq!(bye.from, 3);
    }

    #[test]
    fn corrupt_payload_fails_checksum_not_header() {
        for codec_id in [CodecId::F32, CodecId::Bf16] {
            let mut bytes = data_frame(codec_id);
            let last = bytes.len() - 1;
            bytes[last] ^= 0xFF;
            let h = decode_header(&bytes).unwrap();
            assert!(!payload_intact(&h, &bytes));
        }
    }

    #[test]
    fn structural_damage_is_a_protocol_error() {
        let bytes = data_frame(CodecId::F32);
        assert!(decode_header(&bytes[..HEADER_BYTES - 1]).is_err());
        let mut bad_magic = bytes.clone();
        bad_magic[0] ^= 1;
        assert!(decode_header(&bad_magic).is_err());
        let mut bad_len = bytes;
        bad_len.pop();
        assert!(decode_header(&bad_len).is_err());
    }

    #[test]
    fn old_version_frames_are_rejected_typed() {
        let mut bytes = data_frame(CodecId::F32);
        bytes[4] = 1; // a v1 sender
        assert!(matches!(
            decode_header(&bytes),
            Err(CommError::Version {
                got: 1,
                want: VERSION
            })
        ));
    }

    #[test]
    fn unknown_codec_is_rejected_typed_at_decode() {
        let mut bytes = data_frame(CodecId::F32);
        bytes[7] = 0x7E; // unknown codec id; header still parses
        let h = decode_header(&bytes).unwrap();
        assert!(matches!(
            decode_payload(&h, &bytes),
            Err(CommError::Version { got: 0x7E, .. })
        ));
    }
}
