//! The length-delimited wire frame: header, checksum, tensor payload.
//!
//! Layout (all little-endian, 40-byte header):
//!
//! ```text
//! offset  field        type  meaning
//!      0  magic        u32   0x4D455043 ("MEPC")
//!      4  version      u8    format version, currently 1
//!      5  kind         u8    0 = fwd data, 1 = bwd data, 2 = ack, 3 = bye
//!      6  from         u8    sending stage
//!      7  flags        u8    reserved, 0
//!      8  seq          u64   per-link data sequence number (1-based)
//!     16  mb           u32   micro-batch tag
//!     20  slice        u32   slice tag
//!     24  g            u32   destination global position tag
//!     28  payload_len  u32   tensor payload bytes after the header
//!     32  checksum     u64   FNV-1a over the payload bytes
//!     40  payload      ...   [`Tensor`] wire encoding (acks: empty)
//! ```
//!
//! The checksum covers the payload only: the emulated fault injector
//! corrupts payload bytes, and a receiver that sees a checksum mismatch
//! silently refuses to ack, which is what drives the sender's
//! retransmit. Structural header damage is caught by the magic/version/
//! length validation instead. On stream transports the frame is preceded
//! by a `u32` length prefix (see [`crate::socket`]).

use mepipe_tensor::Tensor;

use crate::error::CommError;
use crate::msg::{MsgKind, StageMsg};

/// Frame magic, "MEPC".
pub const MAGIC: u32 = 0x4D45_5043;
/// Current frame format version.
pub const VERSION: u8 = 1;
/// Header length in bytes.
pub const HEADER_BYTES: usize = 40;
/// `kind` byte of an ack frame (data frames use [`MsgKind::to_wire`]).
const KIND_ACK: u8 = 2;
/// `kind` byte of a goodbye frame (clean shutdown announcement).
const KIND_BYE: u8 = 3;

/// What a frame carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// A boundary tensor moving in `MsgKind`'s direction.
    Data(MsgKind),
    /// A link-level cumulative acknowledgement.
    Ack,
    /// A clean-shutdown goodbye: the sender finished its schedule.
    Bye,
}

/// FNV-1a 64-bit over a byte slice — the payload checksum.
pub fn checksum(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// A decoded frame header (payload still raw).
#[derive(Debug, Clone, Copy)]
pub struct Header {
    /// What the frame carries.
    pub kind: FrameKind,
    /// Sending stage.
    pub from: usize,
    /// Per-link sequence number.
    pub seq: u64,
    /// Micro-batch tag (data frames).
    pub mb: u32,
    /// Slice tag (data frames).
    pub slice: u32,
    /// Global-position tag (data frames).
    pub g: u32,
    /// Payload byte count.
    pub payload_len: usize,
    /// Stored payload checksum.
    pub checksum: u64,
}

/// Encodes a data frame carrying `msg` from stage `from` with link
/// sequence number `seq`.
pub fn encode_data(from: usize, seq: u64, msg: &StageMsg) -> Vec<u8> {
    let mut payload = Vec::with_capacity(msg.tensor.encoded_len());
    msg.tensor.encode_into(&mut payload);
    let mut out = Vec::with_capacity(HEADER_BYTES + payload.len());
    push_header(
        &mut out,
        msg.kind.to_wire(),
        from,
        seq,
        msg.mb,
        msg.slice,
        msg.g,
        &payload,
    );
    out.extend_from_slice(&payload);
    out
}

/// Encodes an ack frame for link sequence `seq` from stage `from`.
pub fn encode_ack(from: usize, seq: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_BYTES);
    push_header(&mut out, KIND_ACK, from, seq, 0, 0, 0, &[]);
    out
}

/// Encodes a goodbye frame from stage `from` (clean shutdown).
pub fn encode_bye(from: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_BYTES);
    push_header(&mut out, KIND_BYE, from, 0, 0, 0, 0, &[]);
    out
}

#[allow(clippy::too_many_arguments)]
fn push_header(
    out: &mut Vec<u8>,
    kind: u8,
    from: usize,
    seq: u64,
    mb: u32,
    slice: u32,
    g: u32,
    payload: &[u8],
) {
    out.extend_from_slice(&MAGIC.to_le_bytes());
    out.push(VERSION);
    out.push(kind);
    out.push(u8::try_from(from).expect("stage fits in u8"));
    out.push(0);
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(&mb.to_le_bytes());
    out.extend_from_slice(&slice.to_le_bytes());
    out.extend_from_slice(&g.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&checksum(payload).to_le_bytes());
}

fn le_u32(b: &[u8]) -> u32 {
    u32::from_le_bytes(b.try_into().unwrap())
}

fn le_u64(b: &[u8]) -> u64 {
    u64::from_le_bytes(b.try_into().unwrap())
}

/// Validates the structural header of `bytes` (magic, version, length).
///
/// # Errors
///
/// Returns [`CommError::Protocol`] on any structural mismatch. Checksum
/// validation is separate ([`payload_intact`]) because a bad checksum is
/// a *recoverable* condition (refuse to ack, wait for retransmit) while
/// a bad header is not.
pub fn decode_header(bytes: &[u8]) -> Result<Header, CommError> {
    if bytes.len() < HEADER_BYTES {
        return Err(CommError::Protocol(format!(
            "frame shorter than header: {} bytes",
            bytes.len()
        )));
    }
    if le_u32(&bytes[0..4]) != MAGIC {
        return Err(CommError::Protocol("bad frame magic".into()));
    }
    if bytes[4] != VERSION {
        return Err(CommError::Protocol(format!(
            "unknown frame version {}",
            bytes[4]
        )));
    }
    let kind = match bytes[5] {
        KIND_ACK => FrameKind::Ack,
        KIND_BYE => FrameKind::Bye,
        k => FrameKind::Data(
            MsgKind::from_wire(k)
                .ok_or_else(|| CommError::Protocol(format!("unknown frame kind {k}")))?,
        ),
    };
    let payload_len = le_u32(&bytes[28..32]) as usize;
    if bytes.len() != HEADER_BYTES + payload_len {
        return Err(CommError::Protocol(format!(
            "frame length {} disagrees with payload_len {payload_len}",
            bytes.len()
        )));
    }
    Ok(Header {
        kind,
        from: bytes[6] as usize,
        seq: le_u64(&bytes[8..16]),
        mb: le_u32(&bytes[16..20]),
        slice: le_u32(&bytes[20..24]),
        g: le_u32(&bytes[24..28]),
        payload_len,
        checksum: le_u64(&bytes[32..40]),
    })
}

/// Whether the payload bytes match the header's stored checksum.
pub fn payload_intact(header: &Header, bytes: &[u8]) -> bool {
    checksum(&bytes[HEADER_BYTES..]) == header.checksum
}

/// Decodes the tensor payload of a validated data frame into a
/// [`StageMsg`]. Call on the receiving *stage* thread so the tensor is
/// served by its arena.
///
/// # Errors
///
/// Returns [`CommError::Protocol`] if the payload is not a well-formed
/// tensor encoding or the frame is an ack.
pub fn decode_payload(header: &Header, bytes: &[u8]) -> Result<StageMsg, CommError> {
    let FrameKind::Data(kind) = header.kind else {
        return Err(CommError::Protocol("control frame has no payload".into()));
    };
    let (tensor, used) = Tensor::decode(&bytes[HEADER_BYTES..])?;
    if used != header.payload_len {
        return Err(CommError::Protocol(format!(
            "payload has {} trailing bytes",
            header.payload_len - used
        )));
    }
    Ok(StageMsg {
        kind,
        mb: header.mb,
        slice: header.slice,
        g: header.g,
        tensor,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg() -> StageMsg {
        StageMsg {
            kind: MsgKind::Fwd,
            mb: 3,
            slice: 1,
            g: 2,
            tensor: Tensor::from_vec(2, 2, vec![1.0, -2.0, f32::NAN, 0.5]),
        }
    }

    #[test]
    fn data_frame_round_trips() {
        let bytes = encode_data(1, 7, &msg());
        let h = decode_header(&bytes).unwrap();
        assert_eq!((h.from, h.seq, h.mb, h.slice, h.g), (1, 7, 3, 1, 2));
        assert!(payload_intact(&h, &bytes));
        let back = decode_payload(&h, &bytes).unwrap();
        assert_eq!(back.kind, MsgKind::Fwd);
        assert_eq!(back.tensor.data()[0], 1.0);
        assert!(back.tensor.data()[2].is_nan());
    }

    #[test]
    fn ack_and_bye_frames_round_trip() {
        let bytes = encode_ack(2, 41);
        let h = decode_header(&bytes).unwrap();
        assert_eq!(h.kind, FrameKind::Ack);
        assert_eq!((h.from, h.seq), (2, 41));
        assert!(payload_intact(&h, &bytes));
        let bye = decode_header(&encode_bye(3)).unwrap();
        assert_eq!(bye.kind, FrameKind::Bye);
        assert_eq!(bye.from, 3);
    }

    #[test]
    fn corrupt_payload_fails_checksum_not_header() {
        let mut bytes = encode_data(0, 1, &msg());
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        let h = decode_header(&bytes).unwrap();
        assert!(!payload_intact(&h, &bytes));
    }

    #[test]
    fn structural_damage_is_a_protocol_error() {
        let bytes = encode_data(0, 1, &msg());
        assert!(decode_header(&bytes[..HEADER_BYTES - 1]).is_err());
        let mut bad_magic = bytes.clone();
        bad_magic[0] ^= 1;
        assert!(decode_header(&bad_magic).is_err());
        let mut bad_len = bytes;
        bad_len.pop();
        assert!(decode_header(&bad_len).is_err());
    }
}
