//! Builder-style tuning knobs shared by every transport backend.
//!
//! [`CommConfig`] replaces the positional constructor arguments the
//! backends used to take (connect timeouts, retry budgets, fault specs)
//! with one `#[non_exhaustive]` builder, following the `Dims` /
//! `SvppConfig` convention: construct with [`CommConfig::new`], chain
//! `with_*` methods, pass the result to a backend's `with_config`
//! constructor (or set it on `TransportConfig::comm` and let
//! `build_transport` thread it through). Being non-exhaustive, new knobs
//! can be added without breaking callers.

use std::time::Duration;

use crate::codec::CodecId;
use crate::emulated::FaultSpec;

/// Tuning knobs for a transport backend. Which fields matter depends on
/// the backend: sockets use the codec, tx depth, rx pool and connect
/// timeout; the in-process queues use the codec and send deadline; the
/// emulated reliable layer uses the codec, RTO bounds, retry budget and
/// fault spec.
#[non_exhaustive]
#[derive(Debug, Clone, PartialEq)]
pub struct CommConfig {
    /// Payload codec stamped on outgoing data frames.
    pub codec: CodecId,
    /// Frames a socket endpoint's async writer may hold in flight before
    /// `send` blocks (the double-buffering depth). Minimum 1.
    pub tx_depth: usize,
    /// Largest frame written synchronously on the sending thread when
    /// the async writer is idle. Small frames fit the kernel socket
    /// buffer — which already delivers them asynchronously — so handing
    /// them to the writer thread would cost a context switch for
    /// nothing; frames above this size go through the writer so
    /// encoding the next message overlaps their wire time.
    pub inline_max_bytes: usize,
    /// Receive-side frame buffers kept for recycling per endpoint.
    pub rx_pool: usize,
    /// How long a socket stage waits for its peers during rendezvous.
    pub connect_timeout: Duration,
    /// How long a send may stall on flow control before failing with
    /// `CommError::Backpressure`.
    pub send_deadline: Duration,
    /// Initial retransmission timeout of the emulated reliable layer.
    pub rto_initial: Duration,
    /// Backoff ceiling for the retransmission timeout.
    pub rto_max: Duration,
    /// Retransmission budget per message.
    pub max_retries: u32,
    /// Deterministic fault-injection plan (inert by default).
    pub faults: FaultSpec,
}

impl Default for CommConfig {
    fn default() -> Self {
        Self {
            codec: CodecId::F32,
            tx_depth: 2,
            inline_max_bytes: 32 * 1024,
            rx_pool: 32,
            connect_timeout: Duration::from_secs(20),
            send_deadline: Duration::from_secs(60),
            rto_initial: Duration::from_millis(20),
            rto_max: Duration::from_secs(1),
            max_retries: 16,
            faults: FaultSpec::default(),
        }
    }
}

impl CommConfig {
    /// Default knobs: f32 codec, depth-2 double buffering, inert faults.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the payload codec.
    #[must_use]
    pub fn with_codec(mut self, codec: CodecId) -> Self {
        self.codec = codec;
        self
    }

    /// Sets the async-send queue depth (clamped to at least 1).
    #[must_use]
    pub fn with_tx_depth(mut self, depth: usize) -> Self {
        self.tx_depth = depth.max(1);
        self
    }

    /// Sets the inline-write size cutoff (`0` forces every frame
    /// through the async writer).
    #[must_use]
    pub fn with_inline_max_bytes(mut self, n: usize) -> Self {
        self.inline_max_bytes = n;
        self
    }

    /// Sets how many receive buffers an endpoint keeps for recycling.
    #[must_use]
    pub fn with_rx_pool(mut self, n: usize) -> Self {
        self.rx_pool = n;
        self
    }

    /// Sets the socket rendezvous timeout.
    #[must_use]
    pub fn with_connect_timeout(mut self, t: Duration) -> Self {
        self.connect_timeout = t;
        self
    }

    /// Sets the flow-control stall deadline.
    #[must_use]
    pub fn with_send_deadline(mut self, t: Duration) -> Self {
        self.send_deadline = t;
        self
    }

    /// Sets the reliable layer's retransmission timeout bounds.
    #[must_use]
    pub fn with_rto(mut self, initial: Duration, max: Duration) -> Self {
        self.rto_initial = initial;
        self.rto_max = max;
        self
    }

    /// Sets the per-message retransmission budget.
    #[must_use]
    pub fn with_max_retries(mut self, n: u32) -> Self {
        self.max_retries = n;
        self
    }

    /// Sets the fault-injection plan.
    #[must_use]
    pub fn with_faults(mut self, faults: FaultSpec) -> Self {
        self.faults = faults;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chains_and_clamps() {
        let c = CommConfig::new()
            .with_codec(CodecId::Bf16)
            .with_tx_depth(0)
            .with_inline_max_bytes(1024)
            .with_rx_pool(7)
            .with_connect_timeout(Duration::from_secs(3))
            .with_send_deadline(Duration::from_secs(9))
            .with_rto(Duration::from_millis(5), Duration::from_millis(50))
            .with_max_retries(3)
            .with_faults(FaultSpec {
                drop_first_n: 1,
                ..FaultSpec::default()
            });
        assert_eq!(c.codec, CodecId::Bf16);
        assert_eq!(c.tx_depth, 1, "depth clamps to 1");
        assert_eq!(c.inline_max_bytes, 1024);
        assert_eq!(c.rx_pool, 7);
        assert_eq!(c.connect_timeout, Duration::from_secs(3));
        assert_eq!(c.send_deadline, Duration::from_secs(9));
        assert_eq!(c.rto_initial, Duration::from_millis(5));
        assert_eq!(c.rto_max, Duration::from_millis(50));
        assert_eq!(c.max_retries, 3);
        assert!(c.faults.is_active());
    }
}
