//! Message and packet types moved between stage endpoints.
//!
//! The public unit is [`StageMsg`] — a boundary tensor plus the
//! `(direction, micro_batch, slice, global_pos)` tag the runtime routes
//! on. Underneath, endpoints exchange [`Packet`]s: either a typed message
//! (the in-process fast path, tensor moved by value, no copy), a raw
//! serialized frame (the socket wire unit, and what the emulated layer
//! injects faults into), or a link-level ack for reliable delivery.

use mepipe_tensor::Tensor;

/// Direction of a boundary tensor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MsgKind {
    /// Forward activation, moving to the next global position.
    Fwd,
    /// Output gradient, moving to the previous global position.
    Bwd,
}

impl MsgKind {
    /// Wire tag byte.
    pub(crate) fn to_wire(self) -> u8 {
        match self {
            MsgKind::Fwd => 0,
            MsgKind::Bwd => 1,
        }
    }

    /// Inverse of [`MsgKind::to_wire`].
    pub(crate) fn from_wire(b: u8) -> Option<Self> {
        match b {
            0 => Some(MsgKind::Fwd),
            1 => Some(MsgKind::Bwd),
            _ => None,
        }
    }
}

/// One boundary tensor in flight between pipeline stages.
#[derive(Debug)]
pub struct StageMsg {
    /// Forward activation or backward gradient.
    pub kind: MsgKind,
    /// Micro-batch index.
    pub mb: u32,
    /// Sequence-slice index.
    pub slice: u32,
    /// Destination global chunk position along the forward chain.
    pub g: u32,
    /// The boundary tensor itself.
    pub tensor: Tensor,
}

/// The transport-internal unit of exchange.
///
/// Backends move packets; wrappers (the emulated layer) speak the packet
/// interface of their inner backend, which is how emulation composes
/// over both the in-process and the socket transports.
#[derive(Debug)]
pub enum Packet {
    /// Typed fast path: the tensor crosses by value (in-process only).
    Msg {
        /// Sending stage.
        from: usize,
        /// The message.
        msg: StageMsg,
    },
    /// A serialized frame (header + checksum + tensor payload bytes).
    Frame {
        /// Sending stage (as claimed by the envelope, pre-validation).
        from: usize,
        /// Complete frame bytes, [`crate::frame`] layout.
        bytes: Vec<u8>,
    },
    /// Link-level cumulative ack: `seq` (and everything before it on this
    /// link) arrived intact.
    Ack {
        /// Acknowledging stage.
        from: usize,
        /// Highest contiguous data sequence number received.
        seq: u64,
    },
    /// The peer's endpoint shut down *cleanly* (it finished its schedule
    /// and said goodbye before closing).
    Closed {
        /// Stage that went away.
        from: usize,
    },
    /// The peer vanished without a goodbye — a worker death. Receivers
    /// fail fast instead of waiting for messages that will never come.
    Fault {
        /// Stage that died.
        from: usize,
    },
}

impl Packet {
    /// Whether this packet consumes a flow-control credit (data does,
    /// control traffic must not — acks that can't enter the queue would
    /// deadlock the retransmit protocol against a full inbox).
    pub(crate) fn takes_credit(&self) -> bool {
        matches!(self, Packet::Msg { .. } | Packet::Frame { .. })
    }

    /// The sending stage of any packet variant.
    pub(crate) fn from(&self) -> usize {
        match self {
            Packet::Msg { from, .. }
            | Packet::Frame { from, .. }
            | Packet::Ack { from, .. }
            | Packet::Closed { from }
            | Packet::Fault { from } => *from,
        }
    }
}
