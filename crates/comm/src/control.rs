//! Control-channel protocol between `mepipe-ctl` and its clients.
//!
//! One request or response per line, encoded as a flat JSON object.
//! Encoding is hand-rolled (the vendored `serde_json` shim only
//! parses); decoding goes through that shim, so the wire format is
//! real JSON and a human can drive the daemon with `nc -U`.
//!
//! Requests: `{"cmd":"submit","spec":"<job document>"}`,
//! `{"cmd":"status"}`, `{"cmd":"drain","node":"node-1"}`,
//! `{"cmd":"add_node","slots":4}`, `{"cmd":"shutdown"}`.
//! Responses: `{"ok":true,"detail":"..."}` or
//! `{"ok":false,"reason":"..."}`.

use serde_json::Value;

/// A client-to-daemon control command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Submit a job: `spec` is the raw job document (JSON or TOML),
    /// parsed daemon-side so clients stay format-agnostic.
    Submit {
        /// The job-spec document text, verbatim.
        spec: String,
    },
    /// Ask for a human-readable snapshot of queue and fleet state.
    Status,
    /// Drain a node: running gangs migrate off, no new work lands.
    Drain {
        /// Fleet node name, e.g. `node-1`.
        node: String,
    },
    /// Grow the fleet by one node with the given slot count.
    AddNode {
        /// Accelerator slots on the new node.
        slots: usize,
    },
    /// Finish running jobs, then exit the serve loop.
    Shutdown,
}

/// The daemon's one-line reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// The command was accepted; `detail` is free-form text (the status
    /// snapshot, the new node's name, the submitted job's id, ...).
    Ok(String),
    /// The command was rejected with a reason.
    Err(String),
}

/// Escapes `s` as the inside of a JSON string literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl Request {
    /// Encodes the request as one line of JSON (no trailing newline).
    pub fn encode(&self) -> String {
        match self {
            Request::Submit { spec } => {
                format!("{{\"cmd\":\"submit\",\"spec\":\"{}\"}}", escape(spec))
            }
            Request::Status => "{\"cmd\":\"status\"}".to_string(),
            Request::Drain { node } => {
                format!("{{\"cmd\":\"drain\",\"node\":\"{}\"}}", escape(node))
            }
            Request::AddNode { slots } => {
                format!("{{\"cmd\":\"add_node\",\"slots\":{slots}}}")
            }
            Request::Shutdown => "{\"cmd\":\"shutdown\"}".to_string(),
        }
    }

    /// Parses one request line.
    ///
    /// # Errors
    ///
    /// Returns a message naming what is malformed or missing.
    pub fn parse(line: &str) -> Result<Self, String> {
        let v: Value = serde_json::from_str(line.trim())
            .map_err(|e| format!("control request is not JSON: {e}"))?;
        let cmd = v
            .get("cmd")
            .and_then(Value::as_str)
            .ok_or("control request missing \"cmd\"")?;
        let str_field = |name: &str| -> Result<String, String> {
            v.get(name)
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("{cmd} request missing \"{name}\""))
        };
        match cmd {
            "submit" => Ok(Request::Submit {
                spec: str_field("spec")?,
            }),
            "status" => Ok(Request::Status),
            "drain" => Ok(Request::Drain {
                node: str_field("node")?,
            }),
            "add_node" => Ok(Request::AddNode {
                slots: v
                    .get("slots")
                    .and_then(Value::as_u64)
                    .ok_or("add_node request missing \"slots\"")? as usize,
            }),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(format!("unknown control command {other:?}")),
        }
    }
}

impl Response {
    /// Encodes the response as one line of JSON (no trailing newline).
    pub fn encode(&self) -> String {
        match self {
            Response::Ok(detail) => {
                format!("{{\"ok\":true,\"detail\":\"{}\"}}", escape(detail))
            }
            Response::Err(reason) => {
                format!("{{\"ok\":false,\"reason\":\"{}\"}}", escape(reason))
            }
        }
    }

    /// Parses one response line.
    ///
    /// # Errors
    ///
    /// Returns a message naming what is malformed or missing.
    pub fn parse(line: &str) -> Result<Self, String> {
        let v: Value = serde_json::from_str(line.trim())
            .map_err(|e| format!("control response is not JSON: {e}"))?;
        match v.get("ok").and_then(Value::as_bool) {
            Some(true) => Ok(Response::Ok(
                v.get("detail")
                    .and_then(Value::as_str)
                    .unwrap_or_default()
                    .to_string(),
            )),
            Some(false) => Ok(Response::Err(
                v.get("reason")
                    .and_then(Value::as_str)
                    .unwrap_or("unspecified")
                    .to_string(),
            )),
            None => Err("control response missing \"ok\"".to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip_through_real_json() {
        let cases = [
            Request::Submit {
                spec: "name = \"j1\"\niters = 8\n# with \"quotes\"".to_string(),
            },
            Request::Status,
            Request::Drain {
                node: "node-1".to_string(),
            },
            Request::AddNode { slots: 4 },
            Request::Shutdown,
        ];
        for req in cases {
            let line = req.encode();
            assert!(!line.contains('\n'), "one request per line: {line}");
            assert_eq!(Request::parse(&line).unwrap(), req);
        }
    }

    #[test]
    fn responses_round_trip() {
        for resp in [
            Response::Ok("job-0 queued\nfleet: 4 free".to_string()),
            Response::Err("no such node".to_string()),
        ] {
            assert_eq!(Response::parse(&resp.encode()).unwrap(), resp);
        }
    }

    #[test]
    fn malformed_lines_are_rejected_with_context() {
        assert!(Request::parse("not json").is_err());
        assert!(Request::parse("{\"cmd\":\"warp\"}").is_err());
        assert!(Request::parse("{\"cmd\":\"drain\"}")
            .unwrap_err()
            .contains("node"));
        assert!(Request::parse("{\"cmd\":\"add_node\"}")
            .unwrap_err()
            .contains("slots"));
        assert!(Response::parse("{}").is_err());
    }
}
