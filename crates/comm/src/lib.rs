//! `mepipe-comm`: pluggable stage-to-stage messaging for the pipeline
//! runtime.
//!
//! The training runtime routes boundary tensors between pipeline stages
//! through an abstract [`Endpoint`], obtained from a [`Transport`]. Three
//! backends implement the pair:
//!
//! * [`inproc::InProcTransport`] — bounded, credit-flow-controlled queues
//!   between threads of one process. Tensors move by value; this is the
//!   fast path and is bit-identical to the original channel runtime.
//! * [`socket::SocketTransport`] — length-prefixed frames over Unix-domain
//!   sockets or localhost TCP, so each stage can run as a separate OS
//!   process (see the `mepipe-worker` binary in `mepipe-train`).
//! * [`emulated::EmulatedTransport`] — wraps either of the above with
//!   alpha–beta link timing from a [`LinkSpec`], deterministic seeded
//!   fault injection, and stop-and-wait reliable delivery (retransmit on
//!   drop or checksum rejection).
//!
//! The layering works because endpoints expose two levels: the typed
//! [`Endpoint::send`]/[`Endpoint::recv`] used by the runtime, and the
//! packet-level [`Endpoint::send_packet`]/[`Endpoint::recv_packet`] that
//! wrappers use to move raw frames through the inner backend. The wire
//! path is zero-copy by construction: senders lend a recycled buffer
//! ([`Endpoint::lend_tx_buf`]), encode the frame in place
//! ([`frame::encode_data_into`] — header and codec-encoded payload in
//! one buffer, no concatenation) and hand it back with
//! [`Endpoint::send_frame`]; receivers recycle consumed frame buffers
//! through [`Endpoint::recycle_rx_buf`]. Payloads travel in the wire
//! codec negotiated per link ([`codec`] — raw f32 by default, bf16 to
//! halve the bytes), and the socket backend double-buffers sends on an
//! async writer so encoding microbatch *k+1* overlaps the wire time of
//! *k*. Backend tuning lives in the builder-style [`CommConfig`].
//!
//! Every backend reports uniform per-link counters ([`CommStats`]):
//! bytes, messages, serialize/deserialize time, send stalls, queue wait,
//! emulated wire occupancy, and fault/retry counts.
//!
//! Failure semantics replace the old `expect("channel closed")` panics:
//! a cleanly closed peer ends blocked receives with
//! [`CommError::Closed`] once all peers are done, and a peer that dies
//! *without* closing (process crash, dirty drop) fails every blocked
//! operation in the transport promptly instead of hanging.

pub mod codec;
pub mod config;
pub mod control;
pub mod emulated;
pub mod error;
pub mod frame;
pub mod inproc;
pub mod msg;
pub mod socket;
pub mod stats;

use std::path::PathBuf;
use std::time::Duration;

pub use codec::{codec, Bf16Codec, CodecId, F32Codec, LossyCodec, WireCodec};
pub use config::CommConfig;
pub use emulated::{EmulatedTransport, FaultSpec};
pub use error::CommError;
pub use inproc::InProcTransport;
pub use msg::{MsgKind, Packet, StageMsg};
pub use socket::{SocketMode, SocketTransport};
pub use stats::{CommStats, LinkStats};

use mepipe_hw::LinkSpec;

/// A factory of per-stage [`Endpoint`]s over one communication fabric.
///
/// A transport is created once for a `stages`-wide pipeline; each stage
/// then claims its endpoint (from its own thread or process) and all
/// further traffic goes through that endpoint.
pub trait Transport: Send + Sync {
    /// Number of stages this transport connects.
    fn stages(&self) -> usize;

    /// Claims the endpoint for `stage`.
    ///
    /// # Errors
    ///
    /// Fails if `stage` is out of range, already claimed (in-process),
    /// or the fabric cannot be established (socket rendezvous).
    fn endpoint(&self, stage: usize) -> Result<Box<dyn Endpoint>, CommError>;
}

/// One stage's handle for exchanging boundary tensors with its peers.
///
/// Endpoints are owned by their stage's thread and are deliberately
/// `&mut self`: all waiting, retransmission, and tensor decoding happens
/// on the stage thread, where the stage's `TensorArena` is installed.
pub trait Endpoint: Send {
    /// The stage this endpoint belongs to.
    fn stage(&self) -> usize;

    /// Total stages on the fabric.
    fn stages(&self) -> usize;

    /// Sends `msg` to stage `to`, blocking on flow control (and, for
    /// reliable backends, on acknowledgement).
    ///
    /// # Errors
    ///
    /// [`CommError::Closed`] if the fabric is shut down,
    /// [`CommError::Backpressure`] if flow control stalls past its
    /// deadline, [`CommError::Timeout`] if a reliable layer exhausts its
    /// retransmission budget, [`CommError::Io`] on socket failures.
    fn send(&mut self, to: usize, msg: StageMsg) -> Result<(), CommError>;

    /// Receives the next message from any peer, blocking until one
    /// arrives.
    ///
    /// # Errors
    ///
    /// [`CommError::Closed`] once every peer has cleanly closed (normal
    /// end of run) or a peer died dirty; [`CommError::Corrupt`] if an
    /// unreliable backend received a frame failing its checksum.
    fn recv(&mut self) -> Result<StageMsg, CommError>;

    /// Like [`Endpoint::recv`] but returns `Ok(None)` immediately when no
    /// message is waiting.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Endpoint::recv`].
    fn try_recv(&mut self) -> Result<Option<StageMsg>, CommError>;

    /// Packet-level send, used by wrapping backends to move raw frames
    /// and control traffic through this backend.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Endpoint::send`].
    fn send_packet(&mut self, to: usize, pkt: Packet) -> Result<(), CommError>;

    /// Packet-level receive with an optional timeout (`None` blocks).
    /// Returns `Ok(None)` on timeout.
    ///
    /// # Errors
    ///
    /// [`CommError::Closed`] when the fabric is finished or a peer died.
    fn recv_packet(&mut self, timeout: Option<Duration>) -> Result<Option<Packet>, CommError>;

    /// Lends a cleared transmit buffer to encode a frame into. Backends
    /// with a recycle pool hand back a previously sent buffer (so
    /// steady-state sends allocate nothing); the default mints a fresh
    /// one. Pass the filled buffer to [`Endpoint::send_frame`], which
    /// reclaims it.
    fn lend_tx_buf(&mut self) -> Vec<u8> {
        Vec::new()
    }

    /// Sends a complete encoded frame to stage `to`, consuming `frame`
    /// back into the lend pool once it has been written (or queued on an
    /// async writer). This is the zero-copy path wrapping layers use:
    /// `lend_tx_buf` → `frame::encode_*_into` → `send_frame`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Endpoint::send`].
    fn send_frame(&mut self, to: usize, frame: Vec<u8>) -> Result<(), CommError> {
        let from = self.stage();
        self.send_packet(to, Packet::Frame { from, bytes: frame })
    }

    /// Returns a consumed receive buffer to the endpoint's recycle pool
    /// so the reading side can reuse it instead of allocating. No-op by
    /// default.
    fn recycle_rx_buf(&mut self, _buf: Vec<u8>) {}

    /// Snapshot of this endpoint's counters.
    fn stats(&self) -> CommStats;

    /// Cleanly closes this endpoint: announces completion to peers so
    /// their blocked receives can finish, then releases resources.
    /// Idempotent. Dropping an endpoint *without* closing signals a
    /// dirty death to peers instead.
    fn close(&mut self);
}

/// Which backend a [`TransportConfig`] builds.
#[derive(Debug, Clone, Default, PartialEq)]
pub enum Backend {
    /// Threads in one process, bounded queues, no serialization.
    #[default]
    InProc,
    /// Unix-domain sockets under the given directory (multi-process).
    Uds(PathBuf),
    /// Localhost TCP from the given base port (multi-process).
    Tcp(u16),
}

/// Declarative transport selection, consumed by `build_transport`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TransportConfig {
    /// Which fabric to build.
    pub backend: Backend,
    /// Per-link data credits for the in-process backend (0 = a
    /// runtime-chosen default from the schedule's peak in-flight count).
    pub capacity: usize,
    /// When set, wrap the fabric in link emulation with this spec.
    pub link: Option<LinkSpec>,
    /// Fault-injection plan (only meaningful with emulation; a default
    /// spec injects nothing).
    pub faults: FaultSpec,
    /// Backend tuning knobs (codec, buffer depths, timeouts). The fault
    /// plan in `faults` takes precedence over `comm.faults`.
    pub comm: CommConfig,
}

impl TransportConfig {
    /// In-process transport with runtime-chosen capacity, no emulation —
    /// the drop-in equivalent of the original channel runtime.
    pub fn in_proc() -> Self {
        Self::default()
    }

    /// Emulates every link as `link` (wrapping whatever backend is set).
    #[must_use]
    pub fn with_link(mut self, link: LinkSpec) -> Self {
        self.link = Some(link);
        self
    }

    /// Sets the fault plan and ensures emulation is on (faults need the
    /// reliable layer; defaults to a zero-cost loopback link).
    #[must_use]
    pub fn with_faults(mut self, faults: FaultSpec) -> Self {
        self.faults = faults;
        if self.link.is_none() {
            self.link = Some(LinkSpec::loopback());
        }
        self
    }

    /// Sets the wire codec for every link of the transport.
    #[must_use]
    pub fn with_codec(mut self, codec: CodecId) -> Self {
        self.comm.codec = codec;
        self
    }

    /// Replaces the backend tuning knobs wholesale.
    #[must_use]
    pub fn with_comm(mut self, comm: CommConfig) -> Self {
        self.comm = comm;
        self
    }

    /// Whether this config needs the reliable emulated layer.
    pub fn emulated(&self) -> bool {
        self.link.is_some() || self.faults.is_active()
    }
}

/// Builds the transport described by `config` for a `stages`-wide
/// pipeline. `default_capacity` is used when `config.capacity` is 0
/// (callers derive it from the schedule's peak in-flight message count).
///
/// # Errors
///
/// Currently infallible in practice (socket rendezvous errors surface at
/// [`Transport::endpoint`] time), but returns `Result` so future
/// backends can fail fast.
pub fn build_transport(
    config: &TransportConfig,
    stages: usize,
    default_capacity: usize,
) -> Result<Box<dyn Transport>, CommError> {
    let capacity = if config.capacity == 0 {
        default_capacity.max(1)
    } else {
        config.capacity
    };
    // The dedicated faults field wins over whatever the knob struct
    // carries, preserving the pre-CommConfig behaviour of
    // `TransportConfig::with_faults`.
    let comm = if config.faults.is_active() {
        config.comm.clone().with_faults(config.faults)
    } else {
        config.comm.clone()
    };
    let base: Box<dyn Transport> = match &config.backend {
        Backend::InProc => Box::new(InProcTransport::with_config(stages, capacity, comm.clone())),
        Backend::Uds(dir) => Box::new(SocketTransport::with_config(
            SocketMode::Uds(dir.clone()),
            stages,
            comm.clone(),
        )),
        Backend::Tcp(port) => Box::new(SocketTransport::with_config(
            SocketMode::Tcp(*port),
            stages,
            comm.clone(),
        )),
    };
    if config.emulated() {
        let link = config.link.clone().unwrap_or_else(LinkSpec::loopback);
        Ok(Box::new(EmulatedTransport::with_config(base, link, comm)))
    } else {
        Ok(base)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_builds_each_backend() {
        let t = build_transport(&TransportConfig::in_proc(), 3, 4).unwrap();
        assert_eq!(t.stages(), 3);
        let cfg = TransportConfig::in_proc().with_link(LinkSpec::pcie4());
        assert!(cfg.emulated());
        let t = build_transport(&cfg, 2, 4).unwrap();
        assert_eq!(t.stages(), 2);
        let cfg = TransportConfig {
            backend: Backend::Uds(std::env::temp_dir().join("mepipe-cfg-test")),
            ..TransportConfig::default()
        };
        assert!(!cfg.emulated());
        assert_eq!(build_transport(&cfg, 4, 1).unwrap().stages(), 4);
    }

    #[test]
    fn faults_imply_emulation() {
        let cfg = TransportConfig::in_proc().with_faults(FaultSpec {
            drop_first_n: 1,
            ..FaultSpec::default()
        });
        assert!(cfg.emulated());
        assert!(cfg.link.is_some());
    }
}
