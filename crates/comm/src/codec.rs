//! Pluggable wire codecs for tensor payloads.
//!
//! The frame header carries a one-byte codec id (see [`crate::frame`]),
//! so each link negotiates its payload representation independently: the
//! sender encodes with its configured codec and stamps the id, the
//! receiver dispatches on the stamped id. A receiver that does not know
//! the id rejects the frame with a typed [`CommError::Version`] — the
//! same treatment as an unknown frame version, because both mean the two
//! ends disagree about the wire format.
//!
//! Three codecs exist:
//!
//! * [`CodecId::F32`] — raw little-endian f32 bit patterns, bit-identical
//!   round trips, the default. Loss under this codec is provably the
//!   in-process loss (the backend-equivalence proptests assert it).
//! * [`CodecId::Bf16`] — truncate-with-round-to-nearest-even to bf16,
//!   halving payload bytes. Relative error per element is bounded by
//!   [`mepipe_tensor::BF16_MAX_REL_ERR`] (2^-8) for normal values.
//! * [`CodecId::Lossy`] — block minifloat quantization: each 64-element
//!   block travels as one byte per element (sign + 4-bit exponent biased
//!   against the block maximum + 3-bit mantissa), with a per-block bf16
//!   fallback for nonfinite, subnormal, or wider-than-14-octave blocks.
//!   Relative error per normal element is bounded by
//!   [`mepipe_tensor::LOSSY_MAX_REL_ERR`] (2^-4); payload is ~0.26x of
//!   f32 on gradient-like data, ≤ 0.52x worst case.
//!
//! Codecs are stateless singletons: [`codec`] maps an id to a
//! `&'static dyn WireCodec`, which is what the endpoints store.

use mepipe_tensor::{Tensor, WireError};

use crate::error::CommError;

/// Wire identifier of a payload codec (the frame header's codec byte).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[repr(u8)]
pub enum CodecId {
    /// Raw f32 bit patterns: lossless, bit-identical round trips.
    #[default]
    F32 = 0,
    /// bf16 truncation with round-to-nearest-even: half the bytes,
    /// relative error ≤ 2^-8 per normal element.
    Bf16 = 1,
    /// Error-bounded block-minifloat compression: ~1 byte per element,
    /// relative error ≤ 2^-4 per normal element.
    Lossy = 2,
}

impl CodecId {
    /// The header byte for this codec.
    pub fn to_wire(self) -> u8 {
        self as u8
    }

    /// Inverse of [`CodecId::to_wire`].
    pub fn from_wire(b: u8) -> Option<Self> {
        match b {
            0 => Some(CodecId::F32),
            1 => Some(CodecId::Bf16),
            2 => Some(CodecId::Lossy),
            _ => None,
        }
    }

    /// Parses the names accepted by CLI flags and scripts.
    pub fn parse(name: &str) -> Option<Self> {
        match name {
            "f32" => Some(CodecId::F32),
            "bf16" => Some(CodecId::Bf16),
            "lossy" => Some(CodecId::Lossy),
            _ => None,
        }
    }

    /// Stable lower-case name (inverse of [`CodecId::parse`]).
    pub fn name(self) -> &'static str {
        match self {
            CodecId::F32 => "f32",
            CodecId::Bf16 => "bf16",
            CodecId::Lossy => "lossy",
        }
    }
}

/// A payload representation for boundary tensors on the wire.
///
/// Implementations are stateless and shared (`&'static`); all buffers
/// come from the caller, which is what lets the lend/recycle send path
/// encode without allocating.
pub trait WireCodec: Send + Sync {
    /// The id stamped into frame headers for payloads of this codec.
    fn id(&self) -> CodecId;

    /// Exact byte length [`WireCodec::encode_into`] appends for `t`.
    fn encoded_len(&self, t: &Tensor) -> usize;

    /// Appends the payload encoding of `t` to `out`.
    fn encode_into(&self, t: &Tensor, out: &mut Vec<u8>);

    /// Decodes one tensor from the front of `bytes`, returning it plus
    /// bytes consumed. Runs on the stage thread so the output is served
    /// by the installed arena.
    ///
    /// # Errors
    ///
    /// [`WireError`] on truncated or implausible payloads.
    fn decode(&self, bytes: &[u8]) -> Result<(Tensor, usize), WireError>;

    /// Maximum relative round-trip error for normal values (0 for a
    /// lossless codec). Documented-bound parity tests assert against
    /// this value.
    fn max_rel_err(&self) -> f32;
}

/// Raw f32 bit patterns (lossless).
pub struct F32Codec;

impl WireCodec for F32Codec {
    fn id(&self) -> CodecId {
        CodecId::F32
    }

    fn encoded_len(&self, t: &Tensor) -> usize {
        t.encoded_len()
    }

    fn encode_into(&self, t: &Tensor, out: &mut Vec<u8>) {
        t.encode_into(out);
    }

    fn decode(&self, bytes: &[u8]) -> Result<(Tensor, usize), WireError> {
        Tensor::decode(bytes)
    }

    fn max_rel_err(&self) -> f32 {
        0.0
    }
}

/// bf16 truncation (round-to-nearest-even).
pub struct Bf16Codec;

impl WireCodec for Bf16Codec {
    fn id(&self) -> CodecId {
        CodecId::Bf16
    }

    fn encoded_len(&self, t: &Tensor) -> usize {
        t.encoded_len_bf16()
    }

    fn encode_into(&self, t: &Tensor, out: &mut Vec<u8>) {
        t.encode_bf16_into(out);
    }

    fn decode(&self, bytes: &[u8]) -> Result<(Tensor, usize), WireError> {
        Tensor::decode_bf16(bytes)
    }

    fn max_rel_err(&self) -> f32 {
        mepipe_tensor::BF16_MAX_REL_ERR
    }
}

/// Error-bounded block-minifloat compression (the
/// [`Tensor::encode_lossy_into`] format): one byte per element in
/// 64-element blocks quantized against the block maximum, falling back
/// to bf16 per block when minifloat cannot honour the bound. Roughly a
/// quarter of the f32 payload on gradient-like data, while every normal
/// element stays within `2^-4` relative error.
pub struct LossyCodec;

impl WireCodec for LossyCodec {
    fn id(&self) -> CodecId {
        CodecId::Lossy
    }

    fn encoded_len(&self, t: &Tensor) -> usize {
        t.encoded_len_lossy()
    }

    fn encode_into(&self, t: &Tensor, out: &mut Vec<u8>) {
        t.encode_lossy_into(out);
    }

    fn decode(&self, bytes: &[u8]) -> Result<(Tensor, usize), WireError> {
        Tensor::decode_lossy(bytes)
    }

    fn max_rel_err(&self) -> f32 {
        mepipe_tensor::LOSSY_MAX_REL_ERR
    }
}

/// The codec singleton for `id`.
pub fn codec(id: CodecId) -> &'static dyn WireCodec {
    match id {
        CodecId::F32 => &F32Codec,
        CodecId::Bf16 => &Bf16Codec,
        CodecId::Lossy => &LossyCodec,
    }
}

/// Resolves a header codec byte to its codec, rejecting unknown bytes
/// with the same typed error as a version mismatch.
///
/// # Errors
///
/// [`CommError::Version`] when `byte` names no known codec.
pub fn codec_from_wire(byte: u8) -> Result<&'static dyn WireCodec, CommError> {
    CodecId::from_wire(byte)
        .map(codec)
        .ok_or(CommError::Version {
            got: byte,
            want: crate::frame::VERSION,
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_round_trip_the_wire_byte() {
        for id in [CodecId::F32, CodecId::Bf16, CodecId::Lossy] {
            assert_eq!(CodecId::from_wire(id.to_wire()), Some(id));
            assert_eq!(CodecId::parse(id.name()), Some(id));
            assert_eq!(codec(id).id(), id);
        }
        assert_eq!(CodecId::from_wire(0xFF), None);
        assert!(matches!(
            codec_from_wire(0xFF),
            Err(CommError::Version { got: 0xFF, .. })
        ));
    }

    #[test]
    fn lossy_codec_beats_bf16_bytes_on_gradient_like_data() {
        let data: Vec<f32> = (0..256).map(|i| 0.1 + (i % 13) as f32 * 0.05).collect();
        let t = Tensor::from_vec(4, 64, data);
        let lossy = codec(CodecId::Lossy);
        let bf16 = codec(CodecId::Bf16);
        assert!(lossy.encoded_len(&t) < bf16.encoded_len(&t));
        let mut buf = Vec::new();
        lossy.encode_into(&t, &mut buf);
        assert_eq!(buf.len(), lossy.encoded_len(&t));
        let (back, _) = lossy.decode(&buf).unwrap();
        for (&a, &b) in t.data().iter().zip(back.data()) {
            assert!((a - b).abs() <= a.abs() * lossy.max_rel_err());
        }
    }

    #[test]
    fn f32_codec_is_lossless_and_bf16_is_bounded() {
        let t = Tensor::from_vec(1, 4, vec![3.15, -2.5e-3, 7.0e8, f32::NAN]);
        for id in [CodecId::F32, CodecId::Bf16, CodecId::Lossy] {
            let c = codec(id);
            let mut buf = Vec::new();
            c.encode_into(&t, &mut buf);
            assert_eq!(buf.len(), c.encoded_len(&t));
            let (back, used) = c.decode(&buf).unwrap();
            assert_eq!(used, buf.len());
            for (&a, &b) in t.data().iter().zip(back.data()) {
                if a.is_nan() {
                    assert!(b.is_nan());
                } else if c.max_rel_err() == 0.0 {
                    assert_eq!(a.to_bits(), b.to_bits());
                } else {
                    assert!(((a - b) / a).abs() <= c.max_rel_err());
                }
            }
        }
    }
}
