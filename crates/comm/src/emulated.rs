//! The emulated backend: link-cost enforcement, seeded fault injection,
//! and a stop-and-wait reliable-delivery protocol, layered over any
//! inner transport.
//!
//! The emulated endpoint serializes every message into a wire frame
//! (even over the in-process backend), holds the "wire" for the alpha–
//! beta transfer time of the configured [`LinkSpec`], and passes the
//! frame through a deterministic fault injector that may drop it,
//! corrupt a payload byte, or delay it. Reliability is stop-and-wait:
//! the sender retransmits with exponential backoff until the frame is
//! acknowledged, and the receiver refuses to acknowledge frames whose
//! payload checksum fails — so a corrupted frame is recovered by the
//! same retransmit path as a dropped one. Duplicate deliveries (a lost
//! ack) are filtered by per-link sequence numbers.
//!
//! While a sender waits for its ack it keeps draining inbound packets —
//! acknowledging and stashing peer data frames — so two stages sending
//! to each other concurrently cannot deadlock.
//!
//! Fault injection is seeded per endpoint (seed mixed with the stage
//! index) and advances only with that stage's own send sequence, so a
//! given `(seed, schedule)` pair injects exactly the same faults on
//! every run regardless of thread or process interleaving — which is
//! what lets the fault smoke test demand a bit-identical final loss.

use std::collections::VecDeque;
use std::time::{Duration, Instant};

use mepipe_hw::LinkSpec;

use crate::codec::{codec, CodecId};
use crate::config::CommConfig;
use crate::error::CommError;
use crate::frame::{self, FrameKind, HEADER_BYTES};
use crate::msg::{Packet, StageMsg};
use crate::stats::CommStats;
use crate::{Endpoint, Transport};

/// Deterministic fault-injection plan (all off by default).
///
/// The permille knobs are evaluated per transmission by a seeded LCG
/// private to each endpoint; `drop_first_n` unconditionally drops each
/// endpoint's first `n` data transmissions, which gives smoke tests a
/// guaranteed fault independent of the random stream.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultSpec {
    /// Probability, in permille, of dropping a data transmission.
    pub drop_permille: u32,
    /// Probability, in permille, of flipping a payload byte.
    pub corrupt_permille: u32,
    /// Probability, in permille, of delaying a transmission by `delay_us`.
    pub delay_permille: u32,
    /// Injected delay duration in microseconds.
    pub delay_us: u64,
    /// Unconditionally drop each endpoint's first `n` data transmissions.
    pub drop_first_n: u32,
    /// Base seed for the per-endpoint random streams.
    pub seed: u64,
}

impl FaultSpec {
    /// Whether any fault can ever fire under this spec.
    pub fn is_active(&self) -> bool {
        self.drop_permille > 0
            || self.corrupt_permille > 0
            || self.delay_permille > 0
            || self.drop_first_n > 0
    }
}

/// The emulated transport: wraps an inner transport with link timing,
/// fault injection, and reliable delivery.
pub struct EmulatedTransport {
    inner: Box<dyn Transport>,
    link: LinkSpec,
    config: CommConfig,
}

impl EmulatedTransport {
    /// Wraps `inner`, emulating every stage-to-stage link as `link`,
    /// with default knobs.
    pub fn new(inner: Box<dyn Transport>, link: LinkSpec) -> Self {
        Self::with_config(inner, link, CommConfig::default())
    }

    /// Like [`EmulatedTransport::new`] with explicit tuning knobs: wire
    /// codec, fault plan, retransmission timeouts, and retry budget.
    pub fn with_config(inner: Box<dyn Transport>, link: LinkSpec, config: CommConfig) -> Self {
        Self {
            inner,
            link,
            config,
        }
    }
}

impl Transport for EmulatedTransport {
    fn stages(&self) -> usize {
        self.inner.stages()
    }

    fn endpoint(&self, stage: usize) -> Result<Box<dyn Endpoint>, CommError> {
        let inner = self.inner.endpoint(stage)?;
        let stages = self.inner.stages();
        Ok(Box::new(EmulatedEndpoint {
            stage,
            stages,
            inner,
            link: self.link.clone(),
            codec: self.config.codec,
            faults: self.config.faults,
            max_retries: self.config.max_retries,
            rto_initial: self.config.rto_initial,
            rto_max: self.config.rto_max,
            rng: seed_for_stage(self.config.faults.seed, stage),
            tx_attempts: 0,
            next_seq: vec![0; stages],
            acked: vec![0; stages],
            delivered: vec![0; stages],
            pending: VecDeque::new(),
            frame_buf: Vec::new(),
            stats: CommStats::new(stage, stages),
        }))
    }
}

/// SplitMix64 of `seed ^ stage`: decorrelates per-stage streams even for
/// small seeds.
fn seed_for_stage(seed: u64, stage: usize) -> u64 {
    let mut z = (seed ^ (stage as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One stage's endpoint on the emulated link.
pub struct EmulatedEndpoint {
    stage: usize,
    stages: usize,
    inner: Box<dyn Endpoint>,
    link: LinkSpec,
    codec: CodecId,
    faults: FaultSpec,
    max_retries: u32,
    /// Initial retransmission timeout; doubles per retry up to `rto_max`.
    rto_initial: Duration,
    rto_max: Duration,
    rng: u64,
    /// Data transmissions so far (drives `drop_first_n`).
    tx_attempts: u64,
    /// Next data sequence number per destination link.
    next_seq: Vec<u64>,
    /// Highest acked sequence number per destination link.
    acked: Vec<u64>,
    /// Highest delivered sequence number per source link (dedupe).
    delivered: Vec<u64>,
    /// Messages received while waiting for an ack, in arrival order.
    pending: VecDeque<StageMsg>,
    /// The current message's encoded frame, retained across the send so
    /// retransmissions reuse it (encode once, transmit many).
    frame_buf: Vec<u8>,
    stats: CommStats,
}

impl EmulatedEndpoint {
    /// LCG step; returns ~32 high-quality bits.
    fn next_u32(&mut self) -> u32 {
        self.rng = self
            .rng
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        (self.rng >> 32) as u32
    }

    fn roll(&mut self, permille: u32) -> bool {
        permille > 0 && self.next_u32() % 1000 < permille
    }

    /// Occupies the emulated wire for `bytes` worth of transfer time.
    ///
    /// `thread::sleep` can overshoot small requests by tens of
    /// microseconds, which inflated `wire_ns` by two orders of magnitude
    /// on µs-scale links (PCIe/IB emulation) and pushed commcheck's
    /// measured/modeled ratio far outside the healthy band. Sleep only
    /// for the bulk of long waits and spin the remainder, so occupancy
    /// tracks the model at sub-microsecond precision.
    fn wire_sleep(&mut self, to: usize, bytes: usize) {
        let secs = self.link.transfer_time(bytes as u64);
        if secs > 0.0 && secs.is_finite() {
            const SPIN_UNDER: Duration = Duration::from_micros(250);
            let dur = Duration::from_secs_f64(secs);
            let t0 = Instant::now();
            if dur > SPIN_UNDER {
                std::thread::sleep(dur - SPIN_UNDER);
            }
            while t0.elapsed() < dur {
                std::hint::spin_loop();
            }
            self.stats.links[to].wire_ns += t0.elapsed().as_nanos() as u64;
        }
    }

    /// Absorbs one inbound packet: records acks, validates + stashes data
    /// frames (acking intact ones), notes peer closures.
    fn absorb(&mut self, pkt: Packet) -> Result<(), CommError> {
        match pkt {
            Packet::Ack { from, seq } => {
                if seq > self.acked[from] {
                    self.acked[from] = seq;
                }
                Ok(())
            }
            Packet::Frame { from, bytes } => self.absorb_frame(from, bytes),
            // A typed message from an unwrapped peer: pass it through.
            Packet::Msg { msg, .. } => {
                self.pending.push_back(msg);
                Ok(())
            }
            // Clean closures are tracked by the inner backend, which
            // fails recv with `Closed` once every peer is gone.
            Packet::Closed { .. } => Ok(()),
            Packet::Fault { from } => Err(CommError::Closed { stage: from }),
        }
    }

    fn absorb_frame(&mut self, from: usize, bytes: Vec<u8>) -> Result<(), CommError> {
        let h = frame::decode_header(&bytes)?;
        match h.kind {
            FrameKind::Data(_) => {
                if !frame::payload_intact(&h, &bytes) {
                    // Refusing to ack is the recovery path: the sender's
                    // retransmission timer will resend the frame intact.
                    self.stats.links[from].rejected_checksums += 1;
                    return Ok(());
                }
                if h.seq <= self.delivered[from] {
                    // Duplicate (our ack was lost): re-ack, don't re-deliver.
                    return self.send_ack(from, self.delivered[from]);
                }
                self.send_ack(from, h.seq)?;
                self.delivered[from] = h.seq;
                let t0 = Instant::now();
                let msg = frame::decode_payload(&h, &bytes)?;
                let n = bytes.len() as u64;
                self.inner.recycle_rx_buf(bytes);
                let link = &mut self.stats.links[from];
                link.deserialize_ns += t0.elapsed().as_nanos() as u64;
                link.rx_messages += 1;
                link.rx_bytes += n;
                self.pending.push_back(msg);
                Ok(())
            }
            FrameKind::Ack => {
                if h.seq > self.acked[h.from] {
                    self.acked[h.from] = h.seq;
                }
                self.inner.recycle_rx_buf(bytes);
                Ok(())
            }
            FrameKind::Bye => {
                self.inner.recycle_rx_buf(bytes);
                Ok(())
            }
        }
    }

    fn send_ack(&mut self, to: usize, seq: u64) -> Result<(), CommError> {
        self.inner.send_packet(
            to,
            Packet::Ack {
                from: self.stage,
                seq,
            },
        )
    }

    /// One transmission attempt: fault injection, wire occupancy, inner
    /// send. Returns whether the frame actually went out.
    fn transmit(&mut self, to: usize, bytes: &[u8]) -> Result<bool, CommError> {
        self.tx_attempts += 1;
        if self.tx_attempts <= u64::from(self.faults.drop_first_n)
            || self.roll(self.faults.drop_permille)
        {
            self.stats.links[to].injected_drops += 1;
            return Ok(false);
        }
        if self.roll(self.faults.delay_permille) {
            self.stats.links[to].injected_delays += 1;
            std::thread::sleep(Duration::from_micros(self.faults.delay_us));
        }
        // Each attempt copies the retained frame into a buffer lent by
        // the inner backend (recycled, not freshly allocated): the
        // original must survive for retransmission, and the injector
        // may scribble on this copy.
        let mut wire = self.inner.lend_tx_buf();
        wire.clear();
        wire.extend_from_slice(bytes);
        if self.roll(self.faults.corrupt_permille) && wire.len() > HEADER_BYTES {
            self.stats.links[to].injected_corrupts += 1;
            let last = wire.len() - 1;
            wire[last] ^= 0x55;
        }
        let n = wire.len();
        self.inner.send_packet(
            to,
            Packet::Frame {
                from: self.stage,
                bytes: wire,
            },
        )?;
        self.wire_sleep(to, n);
        self.stats.links[to].tx_bytes += n as u64;
        Ok(true)
    }
}

impl Endpoint for EmulatedEndpoint {
    fn stage(&self) -> usize {
        self.stage
    }

    fn stages(&self) -> usize {
        self.stages
    }

    fn send(&mut self, to: usize, msg: StageMsg) -> Result<(), CommError> {
        let t0 = Instant::now();
        self.next_seq[to] += 1;
        let seq = self.next_seq[to];
        let mut bytes = std::mem::take(&mut self.frame_buf);
        frame::encode_data_into(&mut bytes, self.stage, seq, &msg, codec(self.codec));
        {
            let link = &mut self.stats.links[to];
            link.serialize_ns += t0.elapsed().as_nanos() as u64;
            link.tx_messages += 1;
            link.payload_bytes_precodec += msg.tensor.encoded_len() as u64;
            link.payload_bytes_postcodec += (bytes.len() - HEADER_BYTES) as u64;
        }

        let mut rto = self.rto_initial;
        let mut attempts: u32 = 0;
        let result = loop {
            attempts += 1;
            if let Err(e) = self.transmit(to, &bytes) {
                break Err(e);
            }
            // Drain inbound traffic until our ack arrives or RTO expires.
            let wait0 = Instant::now();
            let deadline = wait0 + rto;
            let mut drain_err = None;
            while self.acked[to] < seq {
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                match self.inner.recv_packet(Some(deadline - now)) {
                    Ok(Some(pkt)) => {
                        if let Err(e) = self.absorb(pkt) {
                            drain_err = Some(e);
                            break;
                        }
                    }
                    Ok(None) => break,
                    Err(e) => {
                        drain_err = Some(e);
                        break;
                    }
                }
            }
            // The drain wait is the *receiver's* scheduling, not the
            // link: charging it to `wire_ns` made measured wire time
            // hundreds of times the model. It gets its own counter.
            self.stats.links[to].ack_wait_ns += wait0.elapsed().as_nanos() as u64;
            if let Some(e) = drain_err {
                break Err(e);
            }
            if self.acked[to] >= seq {
                break Ok(());
            }
            if attempts > self.max_retries {
                break Err(CommError::Timeout { peer: to, attempts });
            }
            self.stats.links[to].retries += 1;
            rto = (rto * 2).min(self.rto_max);
        };
        // Keep the encode buffer for the next message (even on failure).
        self.frame_buf = bytes;
        result
    }

    fn recv(&mut self) -> Result<StageMsg, CommError> {
        let t0 = Instant::now();
        loop {
            if let Some(msg) = self.pending.pop_front() {
                self.stats.recv_wait_ns += t0.elapsed().as_nanos() as u64;
                return Ok(msg);
            }
            match self.inner.recv_packet(None)? {
                Some(pkt) => self.absorb(pkt)?,
                None => unreachable!("blocking recv_packet returned None"),
            }
        }
    }

    fn try_recv(&mut self) -> Result<Option<StageMsg>, CommError> {
        loop {
            if let Some(msg) = self.pending.pop_front() {
                return Ok(Some(msg));
            }
            match self.inner.recv_packet(Some(Duration::ZERO))? {
                Some(pkt) => self.absorb(pkt)?,
                None => return Ok(None),
            }
        }
    }

    // Packet-level passthrough: a further wrapper speaks to the inner
    // backend directly, without re-entering this layer's reliability.
    fn send_packet(&mut self, to: usize, pkt: Packet) -> Result<(), CommError> {
        self.inner.send_packet(to, pkt)
    }

    fn recv_packet(&mut self, timeout: Option<Duration>) -> Result<Option<Packet>, CommError> {
        self.inner.recv_packet(timeout)
    }

    fn lend_tx_buf(&mut self) -> Vec<u8> {
        self.inner.lend_tx_buf()
    }

    fn recycle_rx_buf(&mut self, buf: Vec<u8>) {
        self.inner.recycle_rx_buf(buf);
    }

    fn stats(&self) -> CommStats {
        self.stats.merged(&self.inner.stats())
    }

    fn close(&mut self) {
        self.inner.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inproc::InProcTransport;
    use crate::msg::MsgKind;
    use mepipe_tensor::Tensor;

    fn wrap(stages: usize, faults: FaultSpec) -> EmulatedTransport {
        EmulatedTransport::with_config(
            Box::new(InProcTransport::new(stages, 8)),
            LinkSpec::loopback(),
            CommConfig::new().with_faults(faults),
        )
    }

    fn msg(vals: Vec<f32>) -> StageMsg {
        StageMsg {
            kind: MsgKind::Fwd,
            mb: 1,
            slice: 2,
            g: 1,
            tensor: Tensor::from_vec(1, vals.len(), vals),
        }
    }

    #[test]
    fn clean_link_round_trips_bit_exact() {
        let t = wrap(2, FaultSpec::default());
        std::thread::scope(|s| {
            let t0 = &t;
            s.spawn(move || {
                let mut e = t0.endpoint(0).unwrap();
                e.send(1, msg(vec![1.0, f32::NAN, -0.0, f32::INFINITY]))
                    .unwrap();
                e.close();
            });
            let mut e = t.endpoint(1).unwrap();
            let m = e.recv().unwrap();
            let bits: Vec<u32> = m.tensor.data().iter().map(|v| v.to_bits()).collect();
            assert_eq!(
                bits,
                vec![
                    1.0f32.to_bits(),
                    f32::NAN.to_bits(),
                    (-0.0f32).to_bits(),
                    f32::INFINITY.to_bits()
                ]
            );
            assert_eq!((m.mb, m.slice, m.g), (1, 2, 1));
            e.close();
        });
    }

    #[test]
    fn dropped_frame_is_retransmitted() {
        let t = wrap(
            2,
            FaultSpec {
                drop_first_n: 1,
                ..FaultSpec::default()
            },
        );
        std::thread::scope(|s| {
            let t0 = &t;
            s.spawn(move || {
                let mut e = t0.endpoint(0).unwrap();
                e.send(1, msg(vec![7.0])).unwrap();
                let st = e.stats().total();
                assert!(st.injected_drops >= 1, "drop was injected");
                assert!(st.retries >= 1, "retransmission happened");
                e.close();
            });
            let mut e = t.endpoint(1).unwrap();
            assert_eq!(e.recv().unwrap().tensor.data(), &[7.0]);
            e.close();
        });
    }

    #[test]
    fn corrupted_frame_is_rejected_then_recovered() {
        // Corrupt every transmission on stage 0's stream until the LCG
        // spares one; cap the test with a generous retry budget.
        let t = wrap(
            2,
            FaultSpec {
                corrupt_permille: 700,
                seed: 42,
                ..FaultSpec::default()
            },
        );
        std::thread::scope(|s| {
            let t0 = &t;
            s.spawn(move || {
                let mut e = t0.endpoint(0).unwrap();
                e.send(1, msg(vec![3.5, -3.5])).unwrap();
                e.close();
            });
            let mut e = t.endpoint(1).unwrap();
            let m = e.recv().unwrap();
            assert_eq!(m.tensor.data(), &[3.5, -3.5]);
            e.close();
        });
    }

    #[test]
    fn latency_is_enforced() {
        let slow = LinkSpec {
            name: "test-slow",
            bandwidth: f64::INFINITY,
            latency: 5e-3,
        };
        let t = EmulatedTransport::new(Box::new(InProcTransport::new(2, 4)), slow);
        std::thread::scope(|s| {
            let t0 = &t;
            s.spawn(move || {
                let mut e = t0.endpoint(0).unwrap();
                e.send(1, msg(vec![1.0])).unwrap();
                assert!(
                    e.stats().total().wire_ns >= 5_000_000,
                    "wire occupancy below configured latency"
                );
                e.close();
            });
            let mut e = t.endpoint(1).unwrap();
            e.recv().unwrap();
            e.close();
        });
    }

    #[test]
    fn permanent_loss_times_out_with_typed_error() {
        let t = EmulatedTransport::with_config(
            Box::new(InProcTransport::new(2, 8)),
            LinkSpec::loopback(),
            CommConfig::new()
                .with_faults(FaultSpec {
                    drop_permille: 1000,
                    ..FaultSpec::default()
                })
                .with_max_retries(2),
        );
        std::thread::scope(|s| {
            let t0 = &t;
            s.spawn(move || {
                let mut e = t0.endpoint(0).unwrap();
                let err = e.send(1, msg(vec![1.0])).unwrap_err();
                assert!(matches!(err, CommError::Timeout { peer: 1, .. }));
                e.close();
            });
            let mut e = t.endpoint(1).unwrap();
            let err = e.recv().unwrap_err();
            assert!(matches!(err, CommError::Closed { .. }));
            e.close();
        });
    }

    #[test]
    fn bf16_codec_survives_retransmission() {
        // A dropped first transmission forces the retained bf16 frame
        // through the retransmit path; the delivered tensor must match
        // a plain bf16 round trip exactly.
        let t = EmulatedTransport::with_config(
            Box::new(InProcTransport::new(2, 8)),
            LinkSpec::loopback(),
            CommConfig::new()
                .with_codec(CodecId::Bf16)
                .with_faults(FaultSpec {
                    drop_first_n: 1,
                    ..FaultSpec::default()
                }),
        );
        std::thread::scope(|s| {
            let t0 = &t;
            s.spawn(move || {
                let mut e = t0.endpoint(0).unwrap();
                e.send(1, msg(vec![1.0, 0.1234, -777.5])).unwrap();
                let st = e.stats().total();
                assert!(st.retries >= 1, "retransmission happened");
                assert!(st.payload_bytes_postcodec < st.payload_bytes_precodec);
                e.close();
            });
            let mut e = t.endpoint(1).unwrap();
            let m = e.recv().unwrap();
            let want: Vec<f32> = [1.0f32, 0.1234, -777.5]
                .iter()
                .map(|&v| mepipe_tensor::bf16_to_f32(mepipe_tensor::f32_to_bf16(v)))
                .collect();
            assert_eq!(m.tensor.data(), &want[..]);
            e.close();
        });
    }

    #[test]
    fn ack_wait_is_not_charged_to_the_wire() {
        // On a loopback link the wire sleeps are zero, so any time the
        // sender spends waiting for the (slow) receiver to drain the
        // frame must land in `ack_wait_ns`, never in `wire_ns`.
        let t = wrap(2, FaultSpec::default());
        std::thread::scope(|s| {
            let t0 = &t;
            s.spawn(move || {
                let mut e = t0.endpoint(0).unwrap();
                e.send(1, msg(vec![1.0])).unwrap();
                let st = e.stats().total();
                assert_eq!(st.wire_ns, 0, "loopback wire occupancy must be zero");
                assert!(st.ack_wait_ns > 0, "ack wait was not recorded");
                e.close();
            });
            // Simulate receiver-side compute before the drain.
            std::thread::sleep(Duration::from_millis(5));
            let mut e = t.endpoint(1).unwrap();
            e.recv().unwrap();
            e.close();
        });
    }

    #[test]
    fn concurrent_bidirectional_sends_do_not_deadlock() {
        let t = wrap(2, FaultSpec::default());
        std::thread::scope(|s| {
            let t0 = &t;
            s.spawn(move || {
                let mut e = t0.endpoint(0).unwrap();
                for i in 0..20 {
                    e.send(1, msg(vec![i as f32])).unwrap();
                    assert_eq!(e.recv().unwrap().tensor.data(), &[i as f32 + 0.5]);
                }
                e.close();
            });
            let mut e = t.endpoint(1).unwrap();
            for i in 0..20 {
                // Send before receiving so both sides have a frame in
                // flight at once.
                e.send(0, msg(vec![i as f32 + 0.5])).unwrap();
                assert_eq!(e.recv().unwrap().tensor.data(), &[i as f32]);
            }
            e.close();
        });
    }
}
