//! Fine-grained weight-gradient computation (Section 5).
//!
//! Zero-bubble PP splits each backward pass into an input-gradient half
//! (critical path) and a weight-gradient half (free to float). MEPipe goes
//! further: because individual weight gradients have no dependencies among
//! themselves, the weight half decomposes into its constituent GEMMs,
//! which are queued when the input-gradient half completes and *drained
//! one GEMM at a time* whenever the worker would otherwise idle waiting on
//! communication. This both fills bubbles (including those caused by the
//! slice imbalance) and lets deep stages defer W work past the last
//! backward, erasing tail bubbles (Figures 7, 11, 12).
//!
//! This module provides the queue the simulator and the threaded runtime
//! share, with the memory accounting the paper requires: a deferred entry
//! retains its activations *and* activation gradients until fully drained.

use std::collections::VecDeque;

use mepipe_schedule::ir::Op;

/// One deferred weight-gradient computation (one unit's W pass, divisible
/// into `units_left` GEMMs).
#[derive(Debug, Clone, PartialEq)]
pub struct WgradEntry {
    /// The weight op this entry realises.
    pub op: Op,
    /// GEMMs not yet executed.
    pub units_left: usize,
    /// Duration of one GEMM in seconds.
    pub unit_time: f64,
    /// Bytes retained (activations + activation gradients) while any GEMM
    /// of this entry is outstanding.
    pub retained_bytes: f64,
}

/// FIFO queue of deferred weight-gradient GEMMs with retained-memory
/// accounting.
///
/// # Examples
///
/// ```
/// use mepipe_core::wgrad::WgradQueue;
/// use mepipe_schedule::ir::{Op, OpKind};
///
/// let mut q = WgradQueue::new();
/// q.enqueue(Op::new(OpKind::BackwardWeight, 0, 0, 0), 7, 0.1, 1024.0);
/// // A 0.35-second communication wait fits three GEMMs.
/// let (spent, done) = q.drain_for(0.35);
/// assert!((spent - 0.3).abs() < 1e-12);
/// assert!(done.is_empty()); // 4 GEMMs (and the memory) still retained.
/// assert_eq!(q.pending_units(), 4);
/// ```
#[derive(Debug, Clone, Default)]
pub struct WgradQueue {
    entries: VecDeque<WgradEntry>,
}

impl WgradQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enqueues the weight work of one backward pass.
    ///
    /// # Panics
    ///
    /// Panics if `units == 0` or `unit_time` is not finite and positive.
    pub fn enqueue(&mut self, op: Op, units: usize, unit_time: f64, retained_bytes: f64) {
        assert!(units > 0, "weight work must have at least one GEMM");
        assert!(
            unit_time.is_finite() && unit_time > 0.0,
            "GEMM time must be positive"
        );
        self.entries.push_back(WgradEntry {
            op,
            units_left: units,
            unit_time,
            retained_bytes,
        });
    }

    /// Whether any GEMMs are pending.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total pending GEMM count.
    pub fn pending_units(&self) -> usize {
        self.entries.iter().map(|e| e.units_left).sum()
    }

    /// Total time to drain everything.
    pub fn pending_time(&self) -> f64 {
        self.entries
            .iter()
            .map(|e| e.units_left as f64 * e.unit_time)
            .sum()
    }

    /// Bytes retained by deferred entries right now.
    pub fn retained_bytes(&self) -> f64 {
        self.entries.iter().map(|e| e.retained_bytes).sum()
    }

    /// Executes GEMMs from the front of the queue for up to `budget`
    /// seconds, without splitting a GEMM. Returns `(time_spent, completed)`
    /// where `completed` lists weight ops fully finished (their retained
    /// memory is released).
    ///
    /// A zero or negative budget performs nothing; a budget smaller than
    /// one GEMM also performs nothing (GEMMs are atomic).
    pub fn drain_for(&mut self, budget: f64) -> (f64, Vec<Op>) {
        let mut spent = 0.0;
        let mut completed = Vec::new();
        while let Some(front) = self.entries.front_mut() {
            let step = front.unit_time;
            if spent + step > budget + 1e-15 {
                break;
            }
            spent += step;
            front.units_left -= 1;
            if front.units_left == 0 {
                completed.push(front.op);
                self.entries.pop_front();
            }
        }
        (spent, completed)
    }

    /// Drains everything unconditionally (end of iteration / OOM pressure).
    /// Returns `(time_spent, completed)`.
    pub fn drain_all(&mut self) -> (f64, Vec<Op>) {
        let total = self.pending_time();
        let completed = self.entries.drain(..).map(|e| e.op).collect();
        (total, completed)
    }

    /// Drains the *oldest* entries until at least `bytes` of retained
    /// memory has been released; used when the memory tracker needs room
    /// for a new forward pass (Section 5: "we can stop and process the
    /// next forward or backward pass as soon as there is enough memory").
    /// Returns `(time_spent, completed)`.
    pub fn drain_for_bytes(&mut self, bytes: f64) -> (f64, Vec<Op>) {
        let mut spent = 0.0;
        let mut freed = 0.0;
        let mut completed = Vec::new();
        while freed < bytes {
            match self.entries.front_mut() {
                None => break,
                Some(front) => {
                    spent += front.unit_time * front.units_left as f64;
                    freed += front.retained_bytes;
                    completed.push(front.op);
                    self.entries.pop_front();
                }
            }
        }
        (spent, completed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mepipe_schedule::ir::OpKind;

    fn wop(mb: usize) -> Op {
        Op::new(OpKind::BackwardWeight, mb, 0, 0)
    }

    #[test]
    fn drain_respects_budget_and_atomicity() {
        let mut q = WgradQueue::new();
        q.enqueue(wop(0), 4, 1.0, 100.0);
        let (spent, done) = q.drain_for(2.5);
        assert_eq!(spent, 2.0);
        assert!(done.is_empty());
        assert_eq!(q.pending_units(), 2);
        let (spent2, done2) = q.drain_for(10.0);
        assert_eq!(spent2, 2.0);
        assert_eq!(done2, vec![wop(0)]);
        assert!(q.is_empty());
    }

    #[test]
    fn retained_bytes_released_only_on_completion() {
        let mut q = WgradQueue::new();
        q.enqueue(wop(0), 2, 1.0, 100.0);
        q.enqueue(wop(1), 2, 1.0, 50.0);
        assert_eq!(q.retained_bytes(), 150.0);
        q.drain_for(1.0);
        // One GEMM of entry 0 done, both entries still retained.
        assert_eq!(q.retained_bytes(), 150.0);
        q.drain_for(1.0);
        assert_eq!(q.retained_bytes(), 50.0);
    }

    #[test]
    fn drain_for_bytes_frees_oldest_first() {
        let mut q = WgradQueue::new();
        q.enqueue(wop(0), 2, 0.5, 100.0);
        q.enqueue(wop(1), 2, 0.5, 100.0);
        let (spent, done) = q.drain_for_bytes(150.0);
        assert_eq!(done, vec![wop(0), wop(1)]);
        assert_eq!(spent, 2.0);
        assert!(q.is_empty());
    }

    #[test]
    fn drain_all_completes_everything() {
        let mut q = WgradQueue::new();
        q.enqueue(wop(0), 3, 2.0, 10.0);
        q.enqueue(wop(1), 1, 4.0, 10.0);
        let (t, done) = q.drain_all();
        assert_eq!(t, 10.0);
        assert_eq!(done.len(), 2);
    }

    #[test]
    fn zero_budget_is_a_noop() {
        let mut q = WgradQueue::new();
        q.enqueue(wop(0), 1, 1.0, 1.0);
        let (t, done) = q.drain_for(0.0);
        assert_eq!(t, 0.0);
        assert!(done.is_empty());
        assert_eq!(q.pending_units(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one GEMM")]
    fn zero_units_panics() {
        WgradQueue::new().enqueue(wop(0), 0, 1.0, 1.0);
    }
}
