//! Non-uniform sequence slicing (TeraPipe's dynamic program) and the
//! uniform-vs-non-uniform trade-off analysis of Section 5.
//!
//! Causal attention makes later slices more expensive, so TeraPipe
//! balances slice *times* by solving for non-uniform token boundaries
//! with dynamic programming. MEPipe argues against this at moderate
//! context lengths: GEMMs and FlashAttention want tile-aligned (power-of-
//! two-ish) token counts, and fine-grained weight-gradient scheduling
//! absorbs the residual imbalance anyway. "However, when training models
//! with a context longer than 128,000 tokens, the computation of
//! attention scores becomes significant ... the non-uniform partitioning
//! strategy would be more efficient" — this module implements both sides
//! so the crossover can be measured.

use mepipe_model::{config::TransformerConfig, flops, gemm::GemmEfficiency};

/// Cost in seconds of a slice `[start, start + tokens)` of one decoder
/// layer's forward pass, honouring the efficiency curve (including tile
/// alignment) on an accelerator with peak `peak_flops`.
pub fn slice_time(cfg: &TransformerConfig, start: usize, tokens: usize, peak_flops: f64) -> f64 {
    let eff = GemmEfficiency::default();
    let ctx = flops::causal_context(start, tokens);
    let f = flops::dense_forward_flops(cfg, tokens) + 4.0 * tokens as f64 * ctx * cfg.hidden as f64;
    eff.gemm_time(f, tokens, peak_flops, 9)
}

/// A slicing of a sequence into contiguous token ranges.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Slicing {
    /// Boundaries: `bounds[i]..bounds[i+1]` is slice `i`;
    /// `bounds[0] = 0`, `bounds[s] = seq_len`.
    pub bounds: Vec<usize>,
}

impl Slicing {
    /// The uniform slicing (MEPipe's choice).
    pub fn uniform(seq_len: usize, slices: usize) -> Self {
        let step = seq_len / slices;
        let mut bounds: Vec<usize> = (0..slices).map(|i| i * step).collect();
        bounds.push(seq_len);
        Self { bounds }
    }

    /// Number of slices.
    pub fn len(&self) -> usize {
        self.bounds.len() - 1
    }

    /// Whether there are no slices.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `(start, tokens)` of slice `i`.
    pub fn slice(&self, i: usize) -> (usize, usize) {
        (self.bounds[i], self.bounds[i + 1] - self.bounds[i])
    }

    /// The bottleneck (maximum) per-layer slice time — sequence pipeline
    /// throughput is limited by the slowest slice in steady state.
    pub fn bottleneck_time(&self, cfg: &TransformerConfig, peak_flops: f64) -> f64 {
        (0..self.len())
            .map(|i| {
                let (start, tokens) = self.slice(i);
                slice_time(cfg, start, tokens, peak_flops)
            })
            .fold(0.0, f64::max)
    }

    /// Total per-layer time across all slices (one worker runs them all).
    pub fn total_time(&self, cfg: &TransformerConfig, peak_flops: f64) -> f64 {
        (0..self.len())
            .map(|i| {
                let (start, tokens) = self.slice(i);
                slice_time(cfg, start, tokens, peak_flops)
            })
            .sum()
    }
}

/// TeraPipe's dynamic program: choose `slices` boundaries on a token grid
/// of `grid` tokens minimising the *bottleneck* slice time.
///
/// `dp[i][k]` = minimal bottleneck using `k` slices for the first
/// `i` grid cells; transition tries every previous boundary.
///
/// # Panics
///
/// Panics unless `grid` divides `seq_len` and there are enough grid cells
/// for the requested slice count.
///
/// # Examples
///
/// ```
/// use mepipe_core::nonuniform::{balance_slices, Slicing};
/// use mepipe_model::config::TransformerConfig;
///
/// let long = TransformerConfig { seq_len: 131_072, ..TransformerConfig::llama2_13b() };
/// let balanced = balance_slices(&long, 4, 1024, 165e12);
/// let uniform = Slicing::uniform(long.seq_len, 4);
/// assert!(balanced.bottleneck_time(&long, 165e12) < uniform.bottleneck_time(&long, 165e12));
/// ```
pub fn balance_slices(
    cfg: &TransformerConfig,
    slices: usize,
    grid: usize,
    peak_flops: f64,
) -> Slicing {
    let seq = cfg.seq_len;
    assert!(
        grid > 0 && seq.is_multiple_of(grid),
        "grid must divide the sequence"
    );
    let cells = seq / grid;
    assert!(cells >= slices, "need at least one grid cell per slice");

    let cost = |a: usize, b: usize| -> f64 {
        // Grid cells [a, b) → tokens [a*grid, b*grid).
        slice_time(cfg, a * grid, (b - a) * grid, peak_flops)
    };

    let inf = f64::INFINITY;
    let mut dp = vec![vec![inf; slices + 1]; cells + 1];
    let mut prev = vec![vec![0usize; slices + 1]; cells + 1];
    dp[0][0] = 0.0;
    for k in 1..=slices {
        for i in k..=cells {
            for j in (k - 1)..i {
                if dp[j][k - 1] >= inf {
                    continue;
                }
                let c = dp[j][k - 1].max(cost(j, i));
                if c < dp[i][k] {
                    dp[i][k] = c;
                    prev[i][k] = j;
                }
            }
        }
    }

    let mut bounds = vec![seq];
    let mut i = cells;
    for k in (1..=slices).rev() {
        i = prev[i][k];
        bounds.push(i * grid);
    }
    bounds.reverse();
    Slicing { bounds }
}

/// Compares the uniform and DP-balanced slicings at a context length:
/// returns `(uniform_bottleneck, balanced_bottleneck, uniform_total,
/// balanced_total)` per-layer times. At 4k context the uniform slicing's
/// tile alignment usually wins on *total* time; at 128k+ the balanced
/// slicing's bottleneck advantage dominates.
pub fn compare_slicings(
    cfg: &TransformerConfig,
    slices: usize,
    grid: usize,
    peak_flops: f64,
) -> (f64, f64, f64, f64) {
    let uniform = Slicing::uniform(cfg.seq_len, slices);
    let balanced = balance_slices(cfg, slices, grid, peak_flops);
    (
        uniform.bottleneck_time(cfg, peak_flops),
        balanced.bottleneck_time(cfg, peak_flops),
        uniform.total_time(cfg, peak_flops),
        balanced.total_time(cfg, peak_flops),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use mepipe_model::config::TransformerConfig;

    const PEAK: f64 = 165e12;

    #[test]
    fn uniform_slicing_shape() {
        let s = Slicing::uniform(4096, 4);
        assert_eq!(s.bounds, vec![0, 1024, 2048, 3072, 4096]);
        assert_eq!(s.slice(2), (2048, 1024));
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn later_uniform_slices_are_slower() {
        let cfg = TransformerConfig::llama2_13b();
        let s = Slicing::uniform(4096, 4);
        let t0 = slice_time(&cfg, 0, 1024, PEAK);
        let t3 = slice_time(&cfg, 3072, 1024, PEAK);
        assert!(t3 > t0);
        assert!(s.bottleneck_time(&cfg, PEAK) == t3);
    }

    #[test]
    fn dp_balances_the_bottleneck() {
        let cfg = TransformerConfig::llama2_13b();
        let balanced = balance_slices(&cfg, 4, 64, PEAK);
        let uniform = Slicing::uniform(4096, 4);
        assert!(
            balanced.bottleneck_time(&cfg, PEAK) <= uniform.bottleneck_time(&cfg, PEAK) + 1e-12
        );
        // At 4k context the DP keeps the tile-aligned uniform slicing —
        // exactly the paper's Section 5 argument for uniform slices.
        assert_eq!(balanced.bounds.first(), Some(&0));
        assert_eq!(balanced.bounds.last(), Some(&4096));

        // At 128k context the attention imbalance dominates alignment and
        // the DP shortens later slices.
        let long = TransformerConfig {
            seq_len: 131_072,
            ..cfg
        };
        let b = balance_slices(&long, 4, 1024, PEAK);
        let first = b.slice(0).1;
        let last = b.slice(3).1;
        assert!(first > last, "first {first} vs last {last}");
        assert!(
            b.bottleneck_time(&long, PEAK)
                < Slicing::uniform(long.seq_len, 4).bottleneck_time(&long, PEAK)
        );
    }

    #[test]
    fn long_context_flips_the_tradeoff() {
        // Section 5: at 4k context, uniform slicing's aligned GEMMs win on
        // total time; past ~128k the attention imbalance dominates and the
        // balanced slicing's bottleneck advantage becomes decisive.
        let short = TransformerConfig::llama2_13b();
        let (ub_s, bb_s, ut_s, bt_s) = compare_slicings(&short, 8, 64, PEAK);
        // Balanced bottleneck is (weakly) better by construction...
        assert!(bb_s <= ub_s + 1e-12);
        // ...but at 4k the *relative* gain is small while total time is
        // not better (alignment + flat imbalance).
        assert!((ub_s - bb_s) / ub_s < 0.25);
        assert!(bt_s >= ut_s * 0.98);

        let long = TransformerConfig {
            seq_len: 131_072,
            ..short
        };
        let (ub_l, bb_l, _, _) = compare_slicings(&long, 8, 1024, PEAK);
        let gain_long = (ub_l - bb_l) / ub_l;
        let gain_short = (ub_s - bb_s) / ub_s;
        assert!(
            gain_long > gain_short,
            "long-context bottleneck gain {gain_long} should exceed short-context {gain_short}"
        );
        assert!(
            gain_long > 0.2,
            "at 128k the DP should win big, got {gain_long}"
        );
    }

    #[test]
    #[should_panic(expected = "grid must divide")]
    fn bad_grid_panics() {
        balance_slices(&TransformerConfig::llama2_13b(), 4, 1000, PEAK);
    }
}
