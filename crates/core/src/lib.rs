//! MEPipe's core contribution: SVPP slice-level pipeline scheduling and
//! fine-grained weight-gradient computation.
//!
//! * [`svpp`] — Sequence Virtual Pipeline Parallelism schedule generation
//!   (Section 4.1): slice-granular 1F1B with per-stage warmup capacities.
//! * [`variants`] — the memory/bubble trade-off family of Section 4.2 and
//!   the selection of the variant that fits a memory budget (Section 4.5).
//! * [`reschedule`] — the backward-rescheduling optimisation of Section 4.3
//!   (priority = descendant count, earliest-initiation table).
//! * [`wgrad`] — the fine-grained weight-gradient queue of Section 5, which
//!   the simulator and the threaded runtime drain opportunistically.
//! * [`analytic`] — the closed-form bubble-ratio and activation-memory
//!   expressions of Table 3 for every scheduling method.
//! * [`solver`] — OptPipe-style bound-pruned beam search over per-worker
//!   op orders, seeded with the greedy SVPP family and priced with exact
//!   list-order execution.
//! * [`nonuniform`] — TeraPipe's dynamic-programming slice balancing and
//!   the uniform-vs-non-uniform crossover analysis of Section 5.
#![warn(missing_docs)]

pub mod analytic;
pub mod nonuniform;
pub mod reschedule;
pub mod solver;
pub mod svpp;
pub mod variants;
pub mod wgrad;

pub use solver::{SliceCosts, SolverConfig, SolverStats, Synth, Synthesis};
pub use svpp::{Mepipe, Svpp, SvppConfig};
pub use variants::{select_variant_for_budget, variant_peak_units, SvppVariant};
pub use wgrad::{WgradEntry, WgradQueue};
