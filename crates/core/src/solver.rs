//! OptPipe-style per-worker op-order synthesis.
//!
//! The hand-written zoo (and SVPP's greedy generator) fixes each worker's
//! op order with a heuristic: deepest-position-first with strict 1F1B
//! alternation. OptPipe shows those orders are just one point of a search
//! space — under a concrete cost model, *other* per-worker orders have
//! strictly less bubble time, especially where the forward/backward cost
//! ratio departs from the 1:2 the heuristics were tuned for.
//!
//! [`synthesize`] searches that space directly in the schedule IR:
//!
//! 1. **Seeds** — every hot-swap-shaped MEPipe variant (the full warmup
//!    sweep) is generated and priced exactly with list-order execution
//!    ([`mepipe_schedule::exec::execute`]); the fastest memory-feasible
//!    one becomes the incumbent, so the solver is never worse than the
//!    best hand-written template of the same shape.
//! 2. **Beam search over orders** — a tick-synchronous constructive
//!    search branches on the one genuine scheduling decision a worker
//!    faces (run the ready forward or the ready backward), keeps the
//!    `beam` cheapest partial states, and prunes with a *sound* bound:
//!    a partial state cannot finish before `max_w(free_w + remaining
//!    busy work of w)`, nor before the closed-form analytic floor
//!    ([`crate::analytic::compute_floor_seconds`] — "Bubbles,
//!    communication stalls and memory-induced drains only push the
//!    simulated time above this floor").
//!
//! Peak in-flight units are gated against a memory cap during
//! construction (the same admission/reservation bookkeeping as the greedy
//! generator), so every emitted order respects the budget by
//! construction. The output keeps MEPipe's shape (interleaved placement,
//! split backward, same `p/v/n`), which makes it eligible for the
//! `retune_mepipe` hot-swap path.

use std::collections::{HashMap, HashSet};

use mepipe_schedule::{
    exec::{self, CostFn},
    generate::{cap_floor, default_caps, dependents, greedy_generate},
    generator::{Dims, ScheduleError, ScheduleGenerator},
    ir::{ChunkPlacement, Op, OpKind, Schedule, ScheduleMeta},
    validate,
};

use crate::analytic::{compute_floor_seconds, AnalysisParams, FloorInputs};
use crate::svpp::SvppConfig;

/// Per-slice-unit op costs the solver prices orders with, in seconds (or
/// abstract units — only ratios matter for the order search).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SliceCosts {
    /// One forward pass of one slice through one chunk.
    pub fwd: f64,
    /// One input-gradient backward of one slice.
    pub bwd: f64,
    /// One weight-gradient op.
    pub wgrad: f64,
    /// One cross-stage boundary transfer.
    pub hop: f64,
}

impl Default for SliceCosts {
    /// The conventional 1F/2B weighting with unit weight gradients and
    /// free transfers — deterministic, machine-independent defaults every
    /// process of a launch regenerates identically from CLI flags.
    fn default() -> Self {
        Self {
            fwd: 1.0,
            bwd: 2.0,
            wgrad: 1.0,
            hop: 0.0,
        }
    }
}

impl CostFn for SliceCosts {
    fn duration(&self, _stage: usize, op: Op) -> f64 {
        match op.kind {
            OpKind::Forward => self.fwd,
            OpKind::Backward | OpKind::BackwardInput => self.bwd,
            OpKind::BackwardWeight => self.wgrad,
        }
    }

    fn transfer(&self, _from: usize, _to: usize, _op: Op) -> f64 {
        self.hop
    }
}

/// Solver knobs. The defaults keep a grid point well under the check.sh
/// smoke cap; raise `beam`/`node_budget` for deeper searches.
#[derive(Debug, Clone, PartialEq)]
pub struct SolverConfig {
    /// Pricing model for orders.
    pub costs: SliceCosts,
    /// Per-worker in-flight unit cap (activation-memory gate). `None`
    /// leaves memory unconstrained.
    pub cap: Option<usize>,
    /// Beam width of the order search.
    pub beam: usize,
    /// Hard budget on expanded search nodes; the search stops (keeping
    /// the best complete order found so far) when it is exhausted.
    pub node_budget: usize,
}

impl Default for SolverConfig {
    fn default() -> Self {
        Self {
            costs: SliceCosts::default(),
            cap: None,
            beam: 6,
            node_budget: 20_000,
        }
    }
}

/// What the solver did and how good the result is.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolverStats {
    /// Warmup-sweep seeds generated and priced.
    pub seeds_tried: usize,
    /// Beam states expanded.
    pub nodes_expanded: usize,
    /// Children discarded by the lower bound.
    pub nodes_pruned: usize,
    /// Makespan of the best seed (the hand-written incumbent).
    pub seed_makespan: f64,
    /// Makespan of the returned schedule.
    pub makespan: f64,
    /// The analytic floor no schedule of this shape can beat.
    pub floor: f64,
    /// Whether the order search improved on the best seed.
    pub improved: bool,
}

/// A synthesized schedule plus provenance.
#[derive(Debug, Clone)]
pub struct Synthesis {
    /// The winning schedule (MEPipe-shaped: interleaved, split backward).
    pub schedule: Schedule,
    /// Warmup cap of the winning seed (the order search keeps its
    /// admission budget).
    pub warmup: usize,
    /// Search statistics.
    pub stats: SolverStats,
}

/// Ops-per-pipeline threshold above which the beam phase is skipped and
/// only the seed sweep runs — keeps worst-case grid points bounded.
const BEAM_OPS_LIMIT: usize = 6_000;
/// An order must beat the incumbent by more than this to count (guards
/// against floating-point noise reordering equal schedules).
const IMPROVE_MARGIN: f64 = 1e-9;

/// Synthesizes a per-worker op order for MEPipe-shaped dims under `cfg`.
pub fn synthesize(dims: &Dims, cfg: &SolverConfig) -> Result<Synthesis, ScheduleError> {
    let meta = ScheduleMeta {
        name: "Synth".into(),
        stages: dims.p,
        virtual_chunks: dims.v,
        slices: dims.s,
        micro_batches: dims.n,
        split_backward: true,
        placement: ChunkPlacement::Interleaved,
    };
    meta.check_shape().map_err(ScheduleError::InvalidShape)?;
    let base = SvppConfig::from_dims(dims);
    let floor = {
        let fwd = vec![cfg.costs.fwd; dims.s];
        let bwd = vec![cfg.costs.bwd; dims.s];
        compute_floor_seconds(
            AnalysisParams {
                p: dims.p,
                v: dims.v,
                s: dims.s,
                n: dims.n,
            },
            FloorInputs {
                forward: &fwd,
                backward_input: &bwd,
                wgrad: cfg.costs.wgrad,
                overhead: 0.0,
            },
        )
    };

    // Phase 1: warmup sweep. Generate every hot-swap-shaped greedy
    // variant, drop the memory-infeasible ones, keep the fastest.
    let mut seeds_tried = 0usize;
    let mut best: Option<(Schedule, usize, f64)> = None;
    for f in base.min_warmup()..=base.max_warmup() {
        let caps = default_caps(&meta, f);
        let sched = match greedy_generate(&meta, &caps) {
            Ok(s) => s,
            Err(_) => continue,
        };
        seeds_tried += 1;
        if let Some(cap) = cfg.cap {
            let peak = validate::peak_in_flight(&sched)
                .into_iter()
                .max()
                .unwrap_or(0);
            if peak > cap {
                continue;
            }
        }
        let trace = exec::execute(&sched, &cfg.costs).map_err(ScheduleError::InvalidShape)?;
        if best
            .as_ref()
            .is_none_or(|&(_, _, t)| trace.makespan < t - IMPROVE_MARGIN)
        {
            best = Some((sched, f, trace.makespan));
        }
    }
    let (seed_schedule, warmup, seed_makespan) =
        best.ok_or_else(|| ScheduleError::Unsupported {
            method: "Synth",
            reason: format!(
                "no memory-feasible seed: cap {:?} below the floor {}",
                cfg.cap,
                cap_floor(&meta)
            ),
        })?;

    // Phase 2: beam search over per-worker orders, seeded budget-wise by
    // the winning warmup, pruned against the incumbent and the floor.
    let mut stats = SolverStats {
        seeds_tried,
        nodes_expanded: 0,
        nodes_pruned: 0,
        seed_makespan,
        makespan: seed_makespan,
        floor,
        improved: false,
    };
    let mut winner = seed_schedule;
    let total_ops = 3 * meta.units_per_worker() * meta.stages;
    if total_ops <= BEAM_OPS_LIMIT && seed_makespan > floor + IMPROVE_MARGIN {
        let caps = match cfg.cap {
            // The cap is per-worker; the sloped default caps of the seed
            // warmup stay as the admission policy, clamped to the cap.
            Some(c) => default_caps(&meta, warmup)
                .into_iter()
                .map(|x| x.min(c.max(cap_floor(&meta))))
                .collect(),
            None => default_caps(&meta, warmup),
        };
        if let Some((sched, makespan)) = beam_search(
            &meta,
            &caps,
            &cfg.costs,
            cfg.beam,
            cfg.node_budget,
            seed_makespan,
            &mut stats,
        ) {
            if makespan < seed_makespan - IMPROVE_MARGIN {
                stats.makespan = makespan;
                stats.improved = true;
                winner = sched;
            }
        }
    }
    Ok(Synthesis {
        schedule: winner,
        warmup,
        stats,
    })
}

/// One partial construction state of the order search. Ticks are
/// synchronous (each worker places at most one unit per tick), timing is
/// exact list-order execution maintained incrementally.
#[derive(Clone)]
struct State {
    lists: Vec<Vec<Op>>,
    ready_fwd: Vec<Vec<Op>>,
    ready_bwd: Vec<Vec<Op>>,
    /// Weight ops whose input-gradient half has run but which have not
    /// been placed yet — the zero-bubble deferral pool. Drained into
    /// ticks where the worker would otherwise idle.
    pending_w: Vec<Vec<Op>>,
    queued: HashSet<(usize, Op)>,
    finish: HashMap<(usize, Op), f64>,
    free: Vec<f64>,
    busy: Vec<f64>,
    in_flight: Vec<usize>,
    reserved: Vec<usize>,
    prefer_forward: Vec<bool>,
    remaining_fwd: Vec<usize>,
    remaining_bwd: Vec<usize>,
    remaining_w: Vec<usize>,
    remaining: usize,
}

impl State {
    /// Sound completion bound: worker `w`'s unplaced work must run on `w`
    /// after its last placed op ends.
    fn lower_bound(&self, costs: &SliceCosts) -> f64 {
        self.free
            .iter()
            .enumerate()
            .map(|(w, &t)| {
                t + self.remaining_fwd[w] as f64 * costs.fwd
                    + self.remaining_bwd[w] as f64 * costs.bwd
                    + self.remaining_w[w] as f64 * costs.wgrad
            })
            .fold(0.0, f64::max)
    }

    fn makespan(&self) -> f64 {
        self.free.iter().copied().fold(0.0, f64::max)
    }
}

/// What a worker does in one tick.
#[derive(Clone, Copy, PartialEq)]
enum Action {
    Idle,
    Fwd(usize),
    Bwd(usize),
}

#[allow(clippy::too_many_arguments)]
fn beam_search(
    meta: &ScheduleMeta,
    caps: &[usize],
    costs: &SliceCosts,
    beam_width: usize,
    node_budget: usize,
    incumbent: f64,
    stats: &mut SolverStats,
) -> Option<(Schedule, f64)> {
    let p = meta.stages;
    let units = meta.units_per_worker();
    let mut init = State {
        lists: vec![Vec::with_capacity(3 * units); p],
        ready_fwd: vec![Vec::new(); p],
        ready_bwd: vec![Vec::new(); p],
        pending_w: vec![Vec::new(); p],
        queued: HashSet::new(),
        finish: HashMap::with_capacity(3 * units * p),
        free: vec![0.0; p],
        busy: vec![0.0; p],
        in_flight: vec![0; p],
        reserved: vec![0; p],
        prefer_forward: vec![false; p],
        remaining_fwd: vec![units; p],
        remaining_bwd: vec![units; p],
        remaining_w: vec![units; p],
        remaining: 3 * units * p,
    };
    for mb in 0..meta.micro_batches {
        let (w0, c0) = meta.chain_stage_chunk(mb, 0);
        init.ready_fwd[w0].push(Op::new(OpKind::Forward, mb, 0, c0));
    }

    let mut beam = vec![init];
    let mut best: Option<(Schedule, f64)> = None;
    let mut best_time = incumbent;
    // Branch on at most this many genuinely contested workers per tick.
    const BRANCH_WORKERS: usize = 2;

    while !beam.is_empty() && stats.nodes_expanded < node_budget {
        let mut children: Vec<State> = Vec::new();
        for state in beam.drain(..) {
            stats.nodes_expanded += 1;
            // Per-worker candidate selection — greedy's priority rules.
            let mut fwd_pick: Vec<Option<usize>> = vec![None; p];
            let mut bwd_pick: Vec<Option<usize>> = vec![None; p];
            for w in 0..p {
                let mut bb: Option<(usize, usize)> = None;
                for (i, op) in state.ready_bwd[w].iter().enumerate() {
                    let g = meta.chain_pos(op.micro_batch, w, op.chunk);
                    let better = match bb {
                        None => true,
                        Some((bi, bg)) => {
                            let b = state.ready_bwd[w][bi];
                            g > bg || (g == bg && op.micro_batch < b.micro_batch)
                        }
                    };
                    if better {
                        bb = Some((i, g));
                    }
                }
                bwd_pick[w] = bb.map(|(i, _)| i);
                let shallow = (0..meta.virtual_chunks)
                    .min_by_key(|&c| meta.placement.global_pos(p, w, c))
                    .expect("chunk");
                let mut fb: Option<(usize, usize)> = None;
                for (i, op) in state.ready_fwd[w].iter().enumerate() {
                    if op.chunk == shallow
                        && state.in_flight[w] + state.reserved[w] + meta.virtual_chunks > caps[w]
                    {
                        continue;
                    }
                    let g = meta.chain_pos(op.micro_batch, w, op.chunk);
                    let better = match fb {
                        None => true,
                        Some((bi, bg)) => {
                            let b = state.ready_fwd[w][bi];
                            g > bg
                                || (g == bg
                                    && (op.micro_batch, op.slice) < (b.micro_batch, b.slice))
                        }
                    };
                    if better {
                        fb = Some((i, g));
                    }
                }
                fwd_pick[w] = fb.map(|(i, _)| i);
            }
            // Contested workers: both a forward and a backward available.
            let contested: Vec<usize> = (0..p)
                .filter(|&w| fwd_pick[w].is_some() && bwd_pick[w].is_some())
                .take(BRANCH_WORKERS)
                .collect();
            let variants = 1usize << contested.len();
            for mask in 0..variants {
                let mut actions = vec![Action::Idle; p];
                for w in 0..p {
                    let choice_bit = contested.iter().position(|&c| c == w);
                    actions[w] = match (fwd_pick[w], bwd_pick[w]) {
                        (Some(i), Some(j)) => match choice_bit {
                            Some(b) => {
                                if mask & (1 << b) != 0 {
                                    Action::Fwd(i)
                                } else {
                                    Action::Bwd(j)
                                }
                            }
                            // Beyond the branch limit: follow the 1F1B
                            // alternation default.
                            None => {
                                if state.prefer_forward[w] {
                                    Action::Fwd(i)
                                } else {
                                    Action::Bwd(j)
                                }
                            }
                        },
                        (Some(i), None) => Action::Fwd(i),
                        (None, Some(j)) => Action::Bwd(j),
                        (None, None) => Action::Idle,
                    };
                }
                let child = apply_tick(meta, costs, &state, &actions);
                if child.remaining == 0 {
                    let t = child.makespan();
                    if t < best_time - IMPROVE_MARGIN {
                        best_time = t;
                        best = Some((
                            Schedule {
                                meta: meta.clone(),
                                workers: child.lists.clone(),
                            },
                            t,
                        ));
                    }
                    continue;
                }
                if child.lower_bound(costs) >= best_time - IMPROVE_MARGIN {
                    stats.nodes_pruned += 1;
                    continue;
                }
                children.push(child);
            }
        }
        // Keep the most promising states; stable order keeps the search
        // deterministic.
        children.sort_by(|a, b| {
            a.lower_bound(costs)
                .total_cmp(&b.lower_bound(costs))
                .then(a.remaining.cmp(&b.remaining))
        });
        children.truncate(beam_width);
        beam = children;
    }
    best
}

/// Applies one tick's joint actions, returning the advanced state.
fn apply_tick(meta: &ScheduleMeta, costs: &SliceCosts, state: &State, actions: &[Action]) -> State {
    let mut s = state.clone();
    let mut fresh: Vec<(usize, Op)> = Vec::new();
    for (w, action) in actions.iter().enumerate() {
        match *action {
            Action::Idle => {}
            Action::Fwd(i) => {
                let op = s.ready_fwd[w].swap_remove(i);
                place(meta, costs, &mut s, w, op);
                let shallow = (0..meta.virtual_chunks)
                    .min_by_key(|&c| meta.placement.global_pos(meta.stages, w, c))
                    .expect("chunk");
                if op.chunk == shallow {
                    s.reserved[w] += meta.virtual_chunks - 1;
                } else {
                    s.reserved[w] -= 1;
                }
                s.in_flight[w] += 1;
                s.remaining_fwd[w] -= 1;
                s.remaining -= 1;
                s.prefer_forward[w] = false;
                fresh.push((w, op));
            }
            Action::Bwd(i) => {
                let op = s.ready_bwd[w].swap_remove(i);
                place(meta, costs, &mut s, w, op);
                // Zero-bubble deferral: the weight op joins the pool and
                // runs in a tick where this worker would otherwise idle.
                s.pending_w[w].push(op.with_kind(OpKind::BackwardWeight));
                s.in_flight[w] -= 1;
                s.remaining_bwd[w] -= 1;
                s.remaining -= 1;
                s.prefer_forward[w] = true;
                fresh.push((w, op));
            }
        }
    }
    // Idle workers drain one deferred weight op (oldest first) — the
    // gap-filling move that makes deferral pay.
    for (w, action) in actions.iter().enumerate() {
        if *action == Action::Idle && !s.pending_w[w].is_empty() {
            let wop = s.pending_w[w].remove(0);
            place(meta, costs, &mut s, w, wop);
            s.remaining_w[w] -= 1;
            s.remaining -= 1;
        }
    }
    for &(w, op) in &fresh {
        let backward_kind = if meta.split_backward {
            OpKind::BackwardInput
        } else {
            OpKind::Backward
        };
        for (dw, dep) in dependents(meta, w, op, backward_kind) {
            let all_done = mepipe_schedule::deps::dependencies(meta, dw, dep)
                .iter()
                .all(|d| s.finish.contains_key(&(d.stage, d.op)));
            if all_done && s.queued.insert((dw, dep)) {
                match dep.kind {
                    OpKind::Forward => s.ready_fwd[dw].push(dep),
                    _ => s.ready_bwd[dw].push(dep),
                }
            }
        }
    }
    s
}

/// Appends `op` to worker `w`'s list with exact list-order timing.
fn place(meta: &ScheduleMeta, costs: &SliceCosts, s: &mut State, w: usize, op: Op) {
    let mut start = s.free[w];
    for d in mepipe_schedule::deps::dependencies(meta, w, op) {
        let t = s.finish[&(d.stage, d.op)];
        let arrival = if d.cross_stage { t + costs.hop } else { t };
        start = start.max(arrival);
    }
    let dur = costs.duration(w, op);
    let end = start + dur;
    s.finish.insert((w, op), end);
    s.free[w] = end;
    s.busy[w] += dur;
    s.lists[w].push(op);
}

/// The solver as a [`ScheduleGenerator`], with deterministic default
/// costs so every process of a launch regenerates the identical order
/// from CLI flags alone.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Synth {
    cfg: SolverConfig,
}

impl Synth {
    /// A solver generator with default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Overrides the full solver configuration.
    pub fn config(mut self, cfg: SolverConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Sets the memory cap (per-worker in-flight units).
    pub fn cap(mut self, cap: usize) -> Self {
        self.cfg.cap = Some(cap);
        self
    }

    /// Runs the full synthesis, returning stats alongside the schedule.
    pub fn synthesize(&self, dims: &Dims) -> Result<Synthesis, ScheduleError> {
        synthesize(dims, &self.cfg)
    }
}

impl ScheduleGenerator for Synth {
    fn name(&self) -> &'static str {
        "Synth"
    }

    fn generate(&self, dims: &Dims) -> Result<Schedule, ScheduleError> {
        Ok(synthesize(dims, &self.cfg)?.schedule)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mepipe_schedule::validate::validate;

    #[test]
    fn solver_output_is_valid_and_never_worse_than_seed() {
        for dims in [
            Dims::new(2, 4).slices(2),
            Dims::new(4, 8).slices(2),
            Dims::new(4, 4).virtual_chunks(2).slices(2),
        ] {
            let syn = synthesize(&dims, &SolverConfig::default()).unwrap();
            validate(&syn.schedule).unwrap_or_else(|e| panic!("{dims}: {e}"));
            assert!(syn.stats.makespan <= syn.stats.seed_makespan + 1e-12);
            assert!(syn.stats.makespan >= syn.stats.floor - 1e-9, "{dims}");
            assert!(syn.stats.seeds_tried > 0);
        }
    }

    #[test]
    fn solver_is_deterministic() {
        let dims = Dims::new(4, 8).slices(2);
        let a = synthesize(&dims, &SolverConfig::default()).unwrap();
        let b = synthesize(&dims, &SolverConfig::default()).unwrap();
        assert_eq!(a.schedule, b.schedule);
        assert_eq!(a.stats.makespan, b.stats.makespan);
    }

    #[test]
    fn memory_cap_is_respected() {
        let dims = Dims::new(4, 8).slices(2);
        let floor = dims.v * dims.s;
        let syn = synthesize(
            &dims,
            &SolverConfig {
                cap: Some(floor + 1),
                ..Default::default()
            },
        )
        .unwrap();
        let peak = validate::peak_in_flight(&syn.schedule)
            .into_iter()
            .max()
            .unwrap();
        assert!(peak <= floor + 1, "peak {peak}");
    }

    #[test]
    fn infeasible_cap_is_rejected() {
        let dims = Dims::new(4, 8).slices(4);
        let err = synthesize(
            &dims,
            &SolverConfig {
                cap: Some(1),
                ..Default::default()
            },
        )
        .unwrap_err();
        assert!(err.to_string().contains("feasible"), "{err}");
    }

    #[test]
    fn skewed_costs_let_the_order_search_win() {
        // With cheap backwards and expensive forwards the 1F1B
        // alternation default is far from optimal, so the beam should
        // find a strictly better order on at least one small shape.
        let cfg = SolverConfig {
            costs: SliceCosts {
                fwd: 3.0,
                bwd: 1.0,
                wgrad: 0.5,
                hop: 0.0,
            },
            ..Default::default()
        };
        let improved = [
            Dims::new(2, 4).slices(2),
            Dims::new(2, 8).slices(2),
            Dims::new(4, 8).slices(2),
            Dims::new(4, 8),
        ]
        .iter()
        .any(|d| synthesize(d, &cfg).unwrap().stats.improved);
        assert!(improved, "beam never improved on the greedy seed");
    }
}
