//! SVPP scheduling variants and memory-constrained selection
//! (Sections 4.2 and 4.5).
//!
//! A variant is an SVPP schedule with a particular warmup budget `f`.
//! Larger `f` means fewer bubbles but more retained activations; the floor
//! `f = v·s` halves memory versus the default at roughly 1.5× the bubble
//! ratio (the Figure 5(c) trade). Given a device memory budget, the
//! selector computes the activation budget via the Section 4.5 memory
//! model and picks the largest `f` that fits.

use mepipe_hw::accelerator::AcceleratorSpec;
use mepipe_model::{
    config::TransformerConfig,
    memory,
    partition::{PartitionSpec, SequenceSplit},
};

use crate::svpp::SvppConfig;

/// One point on the memory/bubble trade-off curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SvppVariant {
    /// Warmup budget `f`.
    pub warmup: usize,
    /// Peak in-flight slice units on stage 0 (≤ `warmup`).
    pub peak_units: usize,
    /// Peak activation bytes implied by `peak_units`.
    pub peak_activation_bytes: f64,
    /// Closed-form bubble-ratio estimate for this variant.
    pub bubble_estimate: f64,
}

/// Peak in-flight units of the variant with warmup budget `f` — the budget
/// itself, clamped into the feasible range.
pub fn variant_peak_units(cfg: &SvppConfig, f: usize) -> usize {
    f.clamp(cfg.min_warmup(), cfg.max_warmup())
}

/// Bubble-ratio estimate for a warmup budget `f` (small-cluster regime):
/// the default variant achieves `(p−1)/(n·s·v + p−1)`; each unit of delay
/// below `f_max` adds one slice-length bubble per iteration on stage 0.
pub fn variant_bubble_estimate(cfg: &SvppConfig, f: usize) -> f64 {
    let p = cfg.stages as f64;
    let work = (cfg.micro_batches * cfg.slices * cfg.virtual_chunks) as f64;
    let delay = (cfg.max_warmup() - variant_peak_units(cfg, f)) as f64;
    // Base fill/drain bubble plus one extra forward-sized stall per delayed
    // admission (Section 4.2: "reduces the memory consumption by 50% while
    // increasing the bubble ratio by 50%" at the floor).
    (p - 1.0 + delay) / (p - 1.0 + delay + 3.0 * work)
}

/// Enumerates every variant from the memory floor to the bubble floor.
pub fn enumerate_variants(
    cfg: &SvppConfig,
    model: &TransformerConfig,
    spec: &PartitionSpec,
) -> Vec<SvppVariant> {
    let unit = memory::activation_bytes_per_unit(model, spec);
    (cfg.min_warmup()..=cfg.max_warmup())
        .map(|f| SvppVariant {
            warmup: f,
            peak_units: variant_peak_units(cfg, f),
            peak_activation_bytes: variant_peak_units(cfg, f) as f64 * unit,
            bubble_estimate: variant_bubble_estimate(cfg, f),
        })
        .collect()
}

/// Selects the variant with the lowest bubble ratio that fits the device
/// (Section 4.5), returning the configured [`SvppConfig`]; `None` when even
/// the `f = v·s` floor exceeds the activation budget.
pub fn select_variant_for_budget(
    mut cfg: SvppConfig,
    model: &TransformerConfig,
    spec: &PartitionSpec,
    accel: &AcceleratorSpec,
) -> Option<SvppConfig> {
    debug_assert_eq!(spec.pp, cfg.stages);
    debug_assert_eq!(spec.vp, cfg.virtual_chunks);
    debug_assert_eq!(spec.seq.spp_slices(), cfg.slices);
    let max_units = memory::max_in_flight_units(model, spec, accel.usable_memory_bytes());
    if max_units < cfg.min_warmup() {
        return None;
    }
    let f = max_units.min(cfg.max_warmup());
    cfg.warmup_cap = Some(f);
    Some(cfg)
}

/// Convenience: the partition spec matching an SVPP config on a cluster of
/// `total_workers` devices with the given data-parallel size.
pub fn partition_for(
    cfg: &SvppConfig,
    dp: usize,
    global_batch: usize,
    recompute: bool,
) -> PartitionSpec {
    PartitionSpec {
        pp: cfg.stages,
        vp: cfg.virtual_chunks,
        dp,
        seq: SequenceSplit::SlicePipeline { slices: cfg.slices },
        recompute,
        micro_batch_size: 1,
        global_batch,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_cfg() -> SvppConfig {
        SvppConfig {
            stages: 8,
            virtual_chunks: 1,
            slices: 4,
            micro_batches: 16,
            warmup_cap: None,
        }
    }

    fn spec_13b(slices: usize) -> PartitionSpec {
        PartitionSpec {
            pp: 8,
            vp: 1,
            dp: 8,
            seq: SequenceSplit::SlicePipeline { slices },
            recompute: false,
            micro_batch_size: 1,
            global_batch: 128,
        }
    }

    #[test]
    fn variants_span_floor_to_default() {
        let cfg = base_cfg();
        let model = TransformerConfig::llama2_13b();
        let vs = enumerate_variants(&cfg, &model, &spec_13b(4));
        assert_eq!(vs.first().unwrap().warmup, 4);
        assert_eq!(vs.last().unwrap().warmup, 8 + 4 - 1);
        // Memory rises, bubbles fall along the family.
        for w in vs.windows(2) {
            assert!(w[1].peak_activation_bytes > w[0].peak_activation_bytes);
            assert!(w[1].bubble_estimate <= w[0].bubble_estimate);
        }
    }

    #[test]
    fn floor_variant_halves_memory_of_figure5_example() {
        // Figure 5: p=4, v=2, s=2 — the floor variant (f = 4) halves the
        // peak memory of the default (f = 9 → ~8 achieved) family head.
        let cfg = SvppConfig {
            stages: 4,
            virtual_chunks: 2,
            slices: 2,
            micro_batches: 2,
            warmup_cap: None,
        };
        assert_eq!(variant_peak_units(&cfg, cfg.min_warmup()), 4);
        assert_eq!(variant_peak_units(&cfg, usize::MAX), 9);
    }

    #[test]
    fn selection_picks_largest_fitting_f() {
        let model = TransformerConfig::llama2_13b();
        let accel = AcceleratorSpec::rtx4090();
        let cfg = base_cfg();
        let picked = select_variant_for_budget(cfg, &model, &spec_13b(4), &accel)
            .expect("13B (8, spp 4) fits");
        let f = picked.warmup_cap.unwrap();
        assert!(f >= cfg.min_warmup());
        assert!(f <= cfg.max_warmup());
        // 13B at s=4 fits the default variant on a 24 GB card.
        assert_eq!(f, cfg.max_warmup());
    }

    #[test]
    fn selection_fails_when_even_floor_oom() {
        // Llama-34B at pp=8 without recompute leaves too little activation
        // room for 16 slices of warmup... use a tiny slice count to force
        // a large per-unit size.
        let model = TransformerConfig::llama2_34b();
        let accel = AcceleratorSpec::rtx4090();
        let spec = PartitionSpec {
            pp: 8,
            vp: 1,
            dp: 8,
            seq: SequenceSplit::SlicePipeline { slices: 2 },
            recompute: false,
            micro_batch_size: 1,
            global_batch: 128,
        };
        let cfg = SvppConfig {
            stages: 8,
            virtual_chunks: 1,
            slices: 2,
            micro_batches: 16,
            warmup_cap: None,
        };
        assert!(select_variant_for_budget(cfg, &model, &spec, &accel).is_none());
    }

    #[test]
    fn partition_helper_matches_config() {
        let cfg = base_cfg();
        let spec = partition_for(&cfg, 8, 128, false);
        assert_eq!(spec.num_workers(), 64);
        assert_eq!(spec.micro_batches(), 16);
        assert_eq!(spec.seq.spp_slices(), 4);
    }
}
