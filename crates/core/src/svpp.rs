//! SVPP — Sequence Virtual Pipeline Parallelism (Section 4).
//!
//! SVPP schedules forward and backward passes at the granularity of
//! *sequence slices* flowing through *virtual model chunks*, interleaving
//! them 1F1B-style so that the activations a worker retains stay close to
//! the theoretical floor of `v·s` slice units instead of whole
//! micro-batches. Generation is the capacity-bounded greedy construction
//! shared with the baselines; what makes it SVPP is the parameterisation:
//!
//! * slices `s > 1` (sequence pipelining à la TeraPipe), *and*
//! * chunks `v ≥ 1` (virtual pipelining à la Megatron), *and*
//! * the warmup budget `f` (forwards admitted before the first backward),
//!   `v·s ≤ f ≤ v·max(p,s) + min(p,s) − 1`, stage `w` receiving
//!   `max(f − w, v·s)` — the memory knob of Section 4.2.

use mepipe_schedule::{
    generate::{default_caps, greedy_generate},
    generator::{Dims, ScheduleError, ScheduleGenerator},
    ir::{ChunkPlacement, Schedule, ScheduleMeta},
};

/// Parameters of one SVPP schedule.
///
/// Construct with [`SvppConfig::new`] and the builder methods; the
/// struct is `#[non_exhaustive]` so future knobs (e.g. non-uniform
/// slicing) can land without breaking callers.
///
/// ```
/// use mepipe_core::svpp::SvppConfig;
/// let cfg = SvppConfig::new(4, 2, 8).virtual_chunks(2).warmup_cap(6);
/// assert_eq!(cfg.effective_warmup(), 6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub struct SvppConfig {
    /// Pipeline stages `p`.
    pub stages: usize,
    /// Virtual chunks per stage `v`.
    pub virtual_chunks: usize,
    /// Sequence slices per sample `s`.
    pub slices: usize,
    /// Micro-batches per iteration `n`.
    pub micro_batches: usize,
    /// Warmup budget `f` (forwards before the first backward on stage 0);
    /// `None` selects the lowest-bubble variant `f_max`.
    pub warmup_cap: Option<usize>,
}

impl SvppConfig {
    /// A config for `p` stages, `s` slices, `n` micro-batches, with no
    /// virtual chunking and the lowest-bubble warmup budget.
    pub fn new(stages: usize, slices: usize, micro_batches: usize) -> Self {
        SvppConfig {
            stages,
            virtual_chunks: 1,
            slices,
            micro_batches,
            warmup_cap: None,
        }
    }

    /// Sets the virtual-chunk count `v`.
    pub fn virtual_chunks(mut self, v: usize) -> Self {
        self.virtual_chunks = v;
        self
    }

    /// Caps the warmup budget `f` (the Section 4.2 memory knob).
    pub fn warmup_cap(mut self, f: usize) -> Self {
        self.warmup_cap = Some(f);
        self
    }

    /// The config for unified-API [`Dims`].
    pub fn from_dims(dims: &Dims) -> Self {
        SvppConfig::new(dims.p, dims.s, dims.n).virtual_chunks(dims.v)
    }

    /// The feasibility floor for the warmup budget: the first backward
    /// needs the whole first micro-batch in flight (Section 4.2).
    pub fn min_warmup(&self) -> usize {
        self.virtual_chunks * self.slices
    }

    /// The lowest-bubble (maximum-memory) warmup budget — the peak
    /// in-flight unit count of Table 3:
    /// `v·max(p,s) + min(p,s) − 1`.
    pub fn max_warmup(&self) -> usize {
        let p = self.stages;
        let s = self.slices;
        self.virtual_chunks * p.max(s) + p.min(s) - 1
    }

    /// The effective warmup budget after clamping.
    pub fn effective_warmup(&self) -> usize {
        self.warmup_cap
            .unwrap_or(self.max_warmup())
            .clamp(self.min_warmup(), self.max_warmup())
    }

    fn meta(&self, split_backward: bool) -> ScheduleMeta {
        ScheduleMeta {
            name: if split_backward {
                "MEPipe".into()
            } else {
                "SVPP".into()
            },
            stages: self.stages,
            virtual_chunks: self.virtual_chunks,
            slices: self.slices,
            micro_batches: self.micro_batches,
            split_backward,
            placement: ChunkPlacement::Interleaved,
        }
    }

    /// Validates the configuration.
    pub fn check(&self) -> Result<(), String> {
        self.meta(false).check_shape()?;
        if let Some(f) = self.warmup_cap {
            if f < self.min_warmup() {
                return Err(format!(
                    "warmup cap {f} below the v*s = {} floor",
                    self.min_warmup()
                ));
            }
        }
        Ok(())
    }
}

/// Fused-backward SVPP generation (the Section 4 analysis setting).
pub(crate) fn fused(cfg: &SvppConfig) -> Result<Schedule, String> {
    cfg.check()?;
    let meta = cfg.meta(false);
    greedy_generate(&meta, &default_caps(&meta, cfg.effective_warmup()))
}

/// Split-backward SVPP generation — the full MEPipe schedule, whose
/// weight-gradient GEMMs the simulator/runtime drains into bubbles
/// (Section 5).
pub(crate) fn split(cfg: &SvppConfig) -> Result<Schedule, String> {
    cfg.check()?;
    let meta = cfg.meta(true);
    greedy_generate(&meta, &default_caps(&meta, cfg.effective_warmup()))
}

/// SVPP with fused backward passes as a [`ScheduleGenerator`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Svpp {
    /// Warmup budget `f`; `None` selects the lowest-bubble `f_max`.
    pub warmup: Option<usize>,
}

impl Svpp {
    /// Generator with the lowest-bubble warmup budget.
    pub fn new() -> Self {
        Svpp { warmup: None }
    }

    /// Caps the warmup budget `f` (the Section 4.2 memory knob).
    pub fn warmup_cap(mut self, f: usize) -> Self {
        self.warmup = Some(f);
        self
    }
}

impl ScheduleGenerator for Svpp {
    fn name(&self) -> &'static str {
        "SVPP"
    }

    fn generate(&self, dims: &Dims) -> Result<Schedule, ScheduleError> {
        let mut cfg = SvppConfig::from_dims(dims);
        cfg.warmup_cap = self.warmup;
        Ok(fused(&cfg)?)
    }
}

/// The full MEPipe schedule (SVPP with split backward passes) as a
/// [`ScheduleGenerator`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Mepipe {
    /// Warmup budget `f`; `None` selects the lowest-bubble `f_max`.
    pub warmup: Option<usize>,
}

impl Mepipe {
    /// Generator with the lowest-bubble warmup budget.
    pub fn new() -> Self {
        Mepipe { warmup: None }
    }

    /// Caps the warmup budget `f` (the Section 4.2 memory knob).
    pub fn warmup_cap(mut self, f: usize) -> Self {
        self.warmup = Some(f);
        self
    }
}

impl ScheduleGenerator for Mepipe {
    fn name(&self) -> &'static str {
        "MEPipe"
    }

    fn generate(&self, dims: &Dims) -> Result<Schedule, ScheduleError> {
        let mut cfg = SvppConfig::from_dims(dims);
        cfg.warmup_cap = self.warmup;
        Ok(split(&cfg)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mepipe_schedule::exec::{execute, UnitCost};
    use mepipe_schedule::generator::{Dapple, Dims, TeraPipe};
    use mepipe_schedule::validate::{peak_in_flight, validate};

    fn cfg(p: usize, v: usize, s: usize, n: usize) -> SvppConfig {
        SvppConfig {
            stages: p,
            virtual_chunks: v,
            slices: s,
            micro_batches: n,
            warmup_cap: None,
        }
    }

    #[test]
    fn figure4a_peak_is_five_eighths_of_a() {
        // p=4, s=2, v=1: each unit is A/8 and the peak is 5 units.
        let s = fused(&cfg(4, 1, 2, 4)).unwrap();
        validate(&s).unwrap();
        assert_eq!(peak_in_flight(&s)[0], 5);
    }

    #[test]
    fn warmup_bounds_match_paper() {
        let c = cfg(4, 2, 2, 4);
        assert_eq!(c.min_warmup(), 4);
        assert_eq!(c.max_warmup(), 9); // (v-1)p + s + p - 1 for s < p.
        let c2 = cfg(4, 2, 8, 4); // s > p.
        assert_eq!(c2.max_warmup(), 2 * 8 + 4 - 1); // v*s + p - 1.
    }

    #[test]
    fn all_variants_are_valid() {
        let base = cfg(4, 2, 2, 4);
        for f in base.min_warmup()..=base.max_warmup() {
            let c = SvppConfig {
                warmup_cap: Some(f),
                ..base
            };
            let s = fused(&c).unwrap();
            validate(&s).unwrap_or_else(|_| panic!("f={f}"));
            let peak = peak_in_flight(&s)[0];
            assert!(peak <= f, "f={f}: peak {peak}");
        }
    }

    #[test]
    fn memory_bubble_tradeoff_is_monotone() {
        // Section 4.2: delaying forwards (smaller f) trades bubbles for
        // memory.
        let base = cfg(4, 2, 2, 8);
        let mut last_bubble = -1.0f64;
        for f in [base.max_warmup(), 6, base.min_warmup()] {
            let c = SvppConfig {
                warmup_cap: Some(f),
                ..base
            };
            let s = fused(&c).unwrap();
            let t = execute(&s, &UnitCost::ones()).unwrap();
            assert!(
                t.bubble_ratio() >= last_bubble - 1e-9,
                "f={f}: bubble {} < previous {last_bubble}",
                t.bubble_ratio()
            );
            last_bubble = t.bubble_ratio();
        }
    }

    #[test]
    fn svpp_beats_dapple_bubbles_at_equal_work() {
        // p=4, n=8 micro-batches; SVPP with s=4 slices, same total work.
        let sv = fused(&cfg(4, 1, 4, 8)).unwrap();
        let da = Dapple.generate(&Dims::new(4, 8)).unwrap();
        let ts = execute(
            &sv,
            &UnitCost {
                fwd: 1.0,
                bwd: 2.0,
                wgrad: 0.0,
            },
        )
        .unwrap();
        let td = execute(
            &da,
            &UnitCost {
                fwd: 4.0,
                bwd: 8.0,
                wgrad: 0.0,
            },
        )
        .unwrap();
        assert!(
            ts.bubble_ratio() < td.bubble_ratio(),
            "svpp {} vs dapple {}",
            ts.bubble_ratio(),
            td.bubble_ratio()
        );
        assert!(ts.makespan < td.makespan);
    }

    #[test]
    fn svpp_peak_memory_beats_dapple_and_terapipe() {
        // The Figure 1 story, in units of A: DAPPLE holds p·(A/p) = A,
        // TeraPipe n·s·(A/(ps)), SVPP ~(s+p-1)·(A/(ps)).
        let (p, n, s) = (4usize, 8usize, 4usize);
        let sv = fused(&cfg(p, 1, s, n)).unwrap();
        let da = Dapple.generate(&Dims::new(p, n)).unwrap();
        let tp = TeraPipe.generate(&Dims::new(p, n).slices(s)).unwrap();
        // Normalise to fractions of A.
        let frac_sv = peak_in_flight(&sv)[0] as f64 / (p * s) as f64;
        let frac_da = peak_in_flight(&da)[0] as f64 / p as f64;
        let frac_tp = peak_in_flight(&tp)[0] as f64 / (p * s) as f64;
        assert!(frac_sv < frac_da);
        assert!(frac_sv < frac_tp);
        assert!(frac_sv <= (s + p) as f64 / (p * s) as f64);
    }

    #[test]
    fn split_variant_carries_weight_ops() {
        let s = split(&cfg(4, 1, 2, 4)).unwrap();
        validate(&s).unwrap();
        assert_eq!(s.workers[0].len(), 3 * 2 * 4);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        assert!(fused(&cfg(0, 1, 2, 4)).is_err());
        let bad = SvppConfig {
            warmup_cap: Some(1),
            ..cfg(4, 2, 2, 4)
        };
        assert!(fused(&bad).is_err());
    }

    #[test]
    fn svpp_with_s1_v1_is_dapple_shaped() {
        let s = fused(&cfg(4, 1, 1, 8)).unwrap();
        let da = Dapple.generate(&Dims::new(4, 8)).unwrap();
        assert_eq!(peak_in_flight(&s), peak_in_flight(&da));
        let ts = execute(&s, &UnitCost::ones()).unwrap();
        let td = execute(&da, &UnitCost::ones()).unwrap();
        assert_eq!(ts.makespan, td.makespan);
    }
}
