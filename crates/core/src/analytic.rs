//! Closed-form bubble-ratio and activation-memory analysis (Table 3).
//!
//! All expressions are taken verbatim from Table 3 of the paper, under its
//! assumptions: evenly partitioned computation graph, balanced stages,
//! inter-stage communication ignored, forward and backward of one unit
//! costing one slot each. Memory is reported as a fraction of `A`, the
//! activation footprint of one whole sample through the whole model.
//!
//! The analysis distinguishes two regimes: `n ≥ p` (small clusters, plenty
//! of micro-batches) and `n < p` (very large clusters where the global
//! batch size constrains `n`).

/// Shape parameters of the analysis (Table 1 notation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AnalysisParams {
    /// Pipeline stages `p`.
    pub p: usize,
    /// Virtual pipeline size `v`.
    pub v: usize,
    /// Sequence pipeline size `s`.
    pub s: usize,
    /// Number of micro-batches `n`.
    pub n: usize,
}

impl AnalysisParams {
    fn pf(&self) -> f64 {
        self.p as f64
    }
    fn vf(&self) -> f64 {
        self.v as f64
    }
    fn sf(&self) -> f64 {
        self.s as f64
    }
    fn nf(&self) -> f64 {
        self.n as f64
    }
}

/// One row of Table 3 for concrete parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalysisRow {
    /// Method name as printed in the paper.
    pub method: &'static str,
    /// Bubble ratio, or `None` where the paper marks the case unsupported.
    pub bubble_ratio: Option<f64>,
    /// Peak activation memory as a fraction of `A`, or `None` if
    /// unsupported.
    pub memory_fraction: Option<f64>,
}

/// DAPPLE: bubble `(p−1)/(p−1+n)`; memory `A` when `n ≥ p`, else `n/p·A`.
pub fn dapple(a: AnalysisParams) -> AnalysisRow {
    let bubble = (a.pf() - 1.0) / (a.pf() - 1.0 + a.nf());
    let mem = if a.n >= a.p { 1.0 } else { a.nf() / a.pf() };
    AnalysisRow {
        method: "DAPPLE",
        bubble_ratio: Some(bubble),
        memory_fraction: Some(mem),
    }
}

/// Megatron VPP: bubble `(p−1)/(p−1+n·v)`; memory
/// `min(1 + (p−1)/(p·v), n/p)·A` — the first term is the interleaved
/// warmup's `v·p + p − 1` chunk units, the second caps it at holding the
/// entire batch (`n` micro-batches of `A/p` each). Table 3 marks the
/// `n < p` case unsupported.
pub fn vpp(a: AnalysisParams) -> AnalysisRow {
    if a.n < a.p {
        return AnalysisRow {
            method: "VPP",
            bubble_ratio: None,
            memory_fraction: None,
        };
    }
    let bubble = (a.pf() - 1.0) / (a.pf() - 1.0 + a.nf() * a.vf());
    let mem = (1.0 + (a.pf() - 1.0) / (a.pf() * a.vf())).min(a.nf() / a.pf());
    AnalysisRow {
        method: "VPP",
        bubble_ratio: Some(bubble),
        memory_fraction: Some(mem),
    }
}

/// Hanayo: bubble `(p−1)/(p−1+n·v)` and memory `A` for `n ≥ p`;
/// bubble `(v·p+n−1−n·v)/(v·p+n−1)` and memory `n/p·A` for `n < p`.
pub fn hanayo(a: AnalysisParams) -> AnalysisRow {
    if a.n >= a.p {
        let bubble = (a.pf() - 1.0) / (a.pf() - 1.0 + a.nf() * a.vf());
        AnalysisRow {
            method: "Hanayo",
            bubble_ratio: Some(bubble),
            memory_fraction: Some(1.0),
        }
    } else {
        let bubble =
            (a.vf() * a.pf() + a.nf() - 1.0 - a.nf() * a.vf()) / (a.vf() * a.pf() + a.nf() - 1.0);
        AnalysisRow {
            method: "Hanayo",
            bubble_ratio: Some(bubble),
            memory_fraction: Some(a.nf() / a.pf()),
        }
    }
}

/// TeraPipe: bubble `(p−1)/(n·s+p−1)`; memory `n/p·A` in both regimes.
pub fn terapipe(a: AnalysisParams) -> AnalysisRow {
    let bubble = (a.pf() - 1.0) / (a.nf() * a.sf() + a.pf() - 1.0);
    AnalysisRow {
        method: "TeraPipe",
        bubble_ratio: Some(bubble),
        memory_fraction: Some(a.nf() / a.pf()),
    }
}

/// SVPP peak activation fraction: `(v·max(p,s) + min(p,s) − 1)/(v·s·p)`.
pub fn svpp_memory_fraction(a: AnalysisParams) -> f64 {
    let num = a.vf() * a.pf().max(a.sf()) + a.pf().min(a.sf()) - 1.0;
    num / (a.vf() * a.sf() * a.pf())
}

/// SVPP (MEPipe): bubble `(p−1)/(n·s·v+p−1)` for `n ≥ p`; for `n < p`,
/// `(p−1+(v−1)·max(p−s·n,0)) / (p−1+(v−1)·max(p−s·n,0)+n·v·s)`. Memory is
/// the Section 4.1 peak, additionally capped by the TeraPipe bound `n/p`
/// in the large-cluster regime.
pub fn svpp(a: AnalysisParams) -> AnalysisRow {
    let mem_small = svpp_memory_fraction(a);
    if a.n >= a.p {
        let bubble = (a.pf() - 1.0) / (a.nf() * a.sf() * a.vf() + a.pf() - 1.0);
        AnalysisRow {
            method: "SVPP",
            bubble_ratio: Some(bubble),
            memory_fraction: Some(mem_small),
        }
    } else {
        let extra = (a.vf() - 1.0) * (a.pf() - a.sf() * a.nf()).max(0.0);
        let bubble = (a.pf() - 1.0 + extra) / (a.pf() - 1.0 + extra + a.nf() * a.vf() * a.sf());
        AnalysisRow {
            method: "SVPP",
            bubble_ratio: Some(bubble),
            memory_fraction: Some(mem_small.min(a.nf() / a.pf())),
        }
    }
}

/// Per-slice pricing of one schedulable unit, the inputs to
/// [`compute_floor_seconds`].
#[derive(Debug, Clone, Copy)]
pub struct FloorInputs<'a> {
    /// Forward time per slice (length `s`).
    pub forward: &'a [f64],
    /// Input-gradient backward time per slice (length `s`).
    pub backward_input: &'a [f64],
    /// Weight-gradient time per unit (slice-independent).
    pub wgrad: f64,
    /// Per-iteration terms appended after the last compute (data-parallel
    /// sync and the optimizer step).
    pub overhead: f64,
}

/// A sound lower bound, in seconds, on the simulated iteration time of
/// *any* pipeline schedule with these shape parameters.
///
/// The floor is the larger of two dependency arguments, each of which no
/// schedule in the 1F1B family can beat:
///
/// * **ramp + busy** — the last stage's first op consumes a tensor that
///   already crossed `p−1` stages (≥ `(p−1)·min f`), and after that the
///   stage still executes the forward, input-gradient *and*
///   weight-gradient work of all `n·v` units of every slice serially;
/// * **ramp + chain** — the last stage cannot emit its final activation
///   gradient before finishing all of its forward and input-gradient
///   work, and that gradient then traverses a dependency chain of at
///   least `p−1` further backward ops (≥ `(p−1)·min b`).
///
/// Bubbles, communication stalls and memory-induced drains only push the
/// simulated time *above* this floor, so branch-and-bound pruning with
/// it never discards the optimum.
pub fn compute_floor_seconds(a: AnalysisParams, inputs: FloorInputs<'_>) -> f64 {
    let units = (a.n * a.v) as f64;
    let hops = (a.p - 1) as f64;
    let fwd_sum: f64 = inputs.forward.iter().sum();
    let bwd_sum: f64 = inputs.backward_input.iter().sum();
    let f_min = inputs.forward.iter().copied().fold(f64::INFINITY, f64::min);
    let b_min = inputs
        .backward_input
        .iter()
        .copied()
        .fold(f64::INFINITY, f64::min);
    let ramp = hops * f_min;
    let slices = inputs.forward.len() as f64;
    let busy = units * (fwd_sum + bwd_sum + slices * inputs.wgrad) + ramp;
    let chain = ramp + units * (fwd_sum + bwd_sum) + hops * b_min;
    busy.max(chain) + inputs.overhead
}

/// A sound lower bound on the peak in-flight units of the 1F1B schedule
/// family (DAPPLE, zero bubble, and the interleaved variants).
///
/// Stage 0 cannot retire its first unit before that unit has traversed
/// the whole pipeline and come back, by which time it has issued at
/// least `min(p, n·v)` forwards. Schedules that defer weight gradients
/// or interleave chunks only hold *more*. Used by the search pre-pass to
/// discard candidates whose peak cannot fit the activation budget
/// without generating the schedule at all.
pub fn warmup_units_floor(a: AnalysisParams) -> usize {
    a.p.min(a.n * a.v)
}

/// The limiting row `s → +∞`: zero bubbles, `A/p` of memory.
pub fn svpp_limit(a: AnalysisParams) -> AnalysisRow {
    AnalysisRow {
        method: "SVPP (s→∞)",
        bubble_ratio: Some(0.0),
        memory_fraction: Some(1.0 / a.pf()),
    }
}

/// Builds the full Table 3 for concrete parameters.
///
/// # Examples
///
/// ```
/// use mepipe_core::analytic::{table3, AnalysisParams};
///
/// let rows = table3(AnalysisParams { p: 8, v: 2, s: 4, n: 16 });
/// let svpp = rows.iter().find(|r| r.method == "SVPP").unwrap();
/// let dapple = rows.iter().find(|r| r.method == "DAPPLE").unwrap();
/// assert!(svpp.bubble_ratio < dapple.bubble_ratio);
/// assert!(svpp.memory_fraction < dapple.memory_fraction);
/// ```
pub fn table3(a: AnalysisParams) -> Vec<AnalysisRow> {
    vec![
        dapple(a),
        vpp(a),
        hanayo(a),
        terapipe(a),
        svpp(a),
        svpp_limit(a),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> AnalysisParams {
        AnalysisParams {
            p: 8,
            v: 2,
            s: 4,
            n: 16,
        }
    }

    #[test]
    fn svpp_has_lowest_bubble_in_small_regime() {
        let rows = table3(small());
        let svpp_b = rows[4].bubble_ratio.unwrap();
        for r in &rows[..4] {
            assert!(
                svpp_b < r.bubble_ratio.unwrap(),
                "SVPP {} !< {} ({})",
                svpp_b,
                r.bubble_ratio.unwrap(),
                r.method
            );
        }
    }

    #[test]
    fn svpp_has_lowest_memory_among_supported() {
        let rows = table3(small());
        let svpp_m = rows[4].memory_fraction.unwrap();
        for r in &rows[..4] {
            assert!(svpp_m < r.memory_fraction.unwrap(), "{}", r.method);
        }
        // And it approaches A/p as s grows.
        let big_s = AnalysisParams {
            s: 1 << 20,
            ..small()
        };
        assert!((svpp_memory_fraction(big_s) - 1.0 / 8.0).abs() < 1e-3);
    }

    #[test]
    fn figure4_worked_examples() {
        // Section 4.1: 5/8·A at p=4, s=2, v=1 and 9/16·A at v=2.
        let a1 = AnalysisParams {
            p: 4,
            v: 1,
            s: 2,
            n: 4,
        };
        assert!((svpp_memory_fraction(a1) - 5.0 / 8.0).abs() < 1e-12);
        let a2 = AnalysisParams {
            p: 4,
            v: 2,
            s: 2,
            n: 4,
        };
        assert!((svpp_memory_fraction(a2) - 9.0 / 16.0).abs() < 1e-12);
    }

    #[test]
    fn vpp_unsupported_below_p() {
        let a = AnalysisParams {
            p: 8,
            v: 2,
            s: 1,
            n: 4,
        };
        assert_eq!(vpp(a).bubble_ratio, None);
        // Hanayo and SVPP still defined.
        assert!(hanayo(a).bubble_ratio.is_some());
        assert!(svpp(a).bubble_ratio.is_some());
    }

    #[test]
    fn large_cluster_regime_memory_caps_at_n_over_p() {
        let a = AnalysisParams {
            p: 16,
            v: 1,
            s: 2,
            n: 4,
        };
        let r = svpp(a);
        assert!(r.memory_fraction.unwrap() <= 4.0 / 16.0 + 1e-12);
    }

    #[test]
    fn svpp_reduction_matches_abstract_claims() {
        // Abstract: slicing into 4 and 8 slices cuts peak activation
        // memory by >70% and >80% versus DAPPLE's A (p=8, v=2 config of
        // Figure 1).
        for (s, floor) in [(4usize, 0.70f64), (8, 0.80)] {
            let a = AnalysisParams {
                p: 8,
                v: 2,
                s,
                n: 8,
            };
            let reduction = 1.0 - svpp_memory_fraction(a) / 1.0;
            assert!(
                reduction > floor,
                "s={s}: reduction {reduction} below {floor}"
            );
        }
    }

    #[test]
    fn dapple_matches_measured_bubble() {
        // Cross-check the formula against the executed schedule (the
        // schedule-crate test does the same from the other side).
        let a = AnalysisParams {
            p: 4,
            v: 1,
            s: 1,
            n: 8,
        };
        let sch = {
            use mepipe_schedule::generator::{Dapple, Dims, ScheduleGenerator};
            Dapple.generate(&Dims::new(4, 8)).unwrap()
        };
        let t =
            mepipe_schedule::exec::execute(&sch, &mepipe_schedule::exec::UnitCost::ones()).unwrap();
        assert!((t.bubble_ratio() - dapple(a).bubble_ratio.unwrap()).abs() < 1e-9);
    }

    #[test]
    fn compute_floor_covers_both_dependency_arguments() {
        let a = AnalysisParams {
            p: 4,
            v: 2,
            s: 2,
            n: 8,
        };
        let inputs = FloorInputs {
            forward: &[1.0, 2.0],
            backward_input: &[2.0, 3.0],
            wgrad: 1.5,
            overhead: 0.5,
        };
        // busy  = 16·(3 + 5 + 2·1.5) + 3·1 = 179; chain = 3 + 16·8 + 3·2 = 137.
        let floor = compute_floor_seconds(a, inputs);
        assert!((floor - (179.0 + 0.5)).abs() < 1e-12, "floor {floor}");
        // With negligible weight work, the backward chain dominates.
        let light = FloorInputs {
            wgrad: 0.0,
            ..inputs
        };
        let floor = compute_floor_seconds(a, light);
        assert!((floor - (137.0 + 0.5)).abs() < 1e-12, "floor {floor}");
    }

    #[test]
    fn warmup_floor_never_exceeds_generated_peaks() {
        // The floor must under-approximate the peak in-flight units of
        // every 1F1B-family generator it gates, on every shape the search
        // enumerates, else the pre-pass would discard feasible candidates.
        use mepipe_schedule::generator::{Dapple, Dims, ScheduleGenerator, Vpp, Zb, Zbv};
        use mepipe_schedule::validate::peak_in_flight;
        for p in [2usize, 4, 8] {
            for n in [2usize, 4, 8, 16] {
                let cases: Vec<(usize, Result<_, _>)> = vec![
                    (1, Dapple.generate(&Dims::new(p, n))),
                    (1, Zb.generate(&Dims::new(p, n))),
                    (2, Vpp.generate(&Dims::new(p, n).virtual_chunks(2))),
                    (2, Zbv.generate(&Dims::new(p, n).virtual_chunks(2))),
                ];
                for (v, sch) in cases {
                    let Ok(sch) = sch else { continue };
                    let peak = peak_in_flight(&sch).into_iter().max().unwrap();
                    let floor = warmup_units_floor(AnalysisParams { p, v, s: 1, n });
                    assert!(
                        floor <= peak,
                        "{}: floor {floor} > peak {peak} at p={p} v={v} n={n}",
                        sch.meta.name
                    );
                }
            }
        }
    }

    #[test]
    fn svpp_formula_close_to_generated_schedule() {
        // The greedy construction should land near the closed form in the
        // small-cluster regime.
        let a = AnalysisParams {
            p: 4,
            v: 1,
            s: 4,
            n: 8,
        };
        let cfg = crate::svpp::SvppConfig::new(4, 4, 8);
        let sch = crate::svpp::fused(&cfg).unwrap();
        let t =
            mepipe_schedule::exec::execute(&sch, &mepipe_schedule::exec::UnitCost::ones()).unwrap();
        let formula = svpp(a).bubble_ratio.unwrap();
        assert!(
            (t.bubble_ratio() - formula).abs() < 0.05,
            "measured {} vs formula {formula}",
            t.bubble_ratio()
        );
    }
}
