//! Backward rescheduling optimisation (Section 4.3, Figure 6).
//!
//! With `v > 1`, the baseline construction can leave bubbles between the
//! last few backward passes. The paper removes them by re-ordering the
//! backward passes using:
//!
//! 1. a *priority* per backward — the number of its children (backwards it
//!    transitively unblocks on the same worker);
//! 2. a table of *earliest possible initiation times*, updated as parents
//!    are placed;
//! 3. a greedy sweep that, at every decision point, picks the ready
//!    backward with the highest priority.
//!
//! Our implementation keeps every worker's forward subsequence fixed and
//! rebuilds the interleaving of backward passes with that exact rule. The
//! result is dependency-valid by construction and never increases the
//! unit-cost makespan on the benchmarked shapes (asserted by tests).

use std::collections::HashMap;

use mepipe_schedule::{
    deps::{backward_descendants, dependencies},
    ir::{Op, OpKind, Schedule},
};

/// Rebuilds backward placements by descendant-count priority, preserving
/// each worker's forward order. Weight-gradient ops follow their
/// input-gradient op as in the input schedule.
pub fn reschedule_backwards(schedule: &Schedule) -> Result<Schedule, String> {
    let meta = schedule.meta.clone();
    let p = meta.stages;

    // Fixed forward orders.
    let fwd_order: Vec<Vec<Op>> = schedule
        .workers
        .iter()
        .map(|ops| {
            ops.iter()
                .copied()
                .filter(|o| o.kind == OpKind::Forward)
                .collect()
        })
        .collect();
    // Pending backwards per worker.
    let mut bwd_pending: Vec<Vec<Op>> = schedule
        .workers
        .iter()
        .map(|ops| {
            ops.iter()
                .copied()
                .filter(|o| o.kind.is_backward_pass())
                .collect()
        })
        .collect();

    let mut fwd_next = vec![0usize; p];
    // Keep the generator's 1F1B alternation: a backward hands the next
    // slot to a forward when one is ready, preserving the "single bubble
    // between consecutive backwards" structure the peak-memory analysis
    // relies on.
    let mut prefer_forward = vec![false; p];
    // Section 4.3: substitutions "maintain the same peak memory
    // utilization" — cap each worker's in-flight units at the input
    // schedule's peak.
    let caps = mepipe_schedule::validate::peak_in_flight(schedule);
    let mut in_flight = vec![0usize; p];
    let mut finish: HashMap<(usize, Op), usize> = HashMap::new();
    let mut lists: Vec<Vec<Op>> = vec![Vec::new(); p];
    let total: usize = fwd_order.iter().map(Vec::len).sum::<usize>()
        + bwd_pending.iter().map(Vec::len).sum::<usize>();
    let mut placed = 0usize;
    let mut tick = 0usize;
    let limit = 6 * total + 64;

    while placed < total {
        if tick > limit {
            return Err("rescheduling did not converge (dependency cycle?)".into());
        }
        for w in 0..p {
            // Highest-priority ready backward (Section 4.3's rule).
            let mut best: Option<(usize, usize)> = None; // (index, priority)
            for (i, op) in bwd_pending[w].iter().enumerate() {
                let ready = dependencies(&meta, w, *op)
                    .iter()
                    .all(|d| finish.get(&(d.stage, d.op)).is_some_and(|&t| t <= tick));
                if !ready {
                    continue;
                }
                let prio = backward_descendants(&meta, w, *op);
                let better = match best {
                    None => true,
                    Some((bi, bp)) => {
                        prio > bp || (prio == bp && op.micro_batch < bwd_pending[w][bi].micro_batch)
                    }
                };
                if better {
                    best = Some((i, prio));
                }
            }
            // The next forward in the fixed order, if ready and within the
            // original schedule's memory envelope.
            let fwd_ready = fwd_next[w] < fwd_order[w].len() && in_flight[w] < caps[w] && {
                let op = fwd_order[w][fwd_next[w]];
                dependencies(&meta, w, op)
                    .iter()
                    .all(|d| finish.get(&(d.stage, d.op)).is_some_and(|&t| t <= tick))
            };
            let run_forward = match (fwd_ready, best) {
                (true, Some(_)) => prefer_forward[w],
                (true, None) => true,
                (false, _) => false,
            };
            if run_forward {
                let op = fwd_order[w][fwd_next[w]];
                finish.insert((w, op), tick + 1);
                lists[w].push(op);
                fwd_next[w] += 1;
                in_flight[w] += 1;
                placed += 1;
                prefer_forward[w] = false;
            } else if let Some((i, _)) = best {
                let op = bwd_pending[w].remove(i);
                finish.insert((w, op), tick + 1);
                lists[w].push(op);
                if meta.split_backward {
                    lists[w].push(op.with_kind(OpKind::BackwardWeight));
                }
                in_flight[w] -= 1;
                placed += 1;
                prefer_forward[w] = true;
            }
        }
        tick += 1;
    }

    // Weight ops were already interleaved above for split schedules;
    // fused schedules carry none.
    let rescheduled = Schedule {
        meta,
        workers: lists,
    };

    // The optimisation targets the tail bubbles of v > 1 schedules; on
    // shapes where the descendant-priority order does not help, keep the
    // input (the paper applies the pass only where it removes bubbles).
    let unit = mepipe_schedule::exec::UnitCost::ones();
    let before = mepipe_schedule::exec::execute(schedule, &unit)?;
    let after = mepipe_schedule::exec::execute(&rescheduled, &unit)?;
    if after.makespan <= before.makespan {
        Ok(rescheduled)
    } else {
        Ok(schedule.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::svpp::{fused, SvppConfig};
    use mepipe_schedule::exec::{execute, UnitCost};
    use mepipe_schedule::validate::{peak_in_flight, validate};

    fn figure5a_config() -> SvppConfig {
        SvppConfig::new(4, 2, 2).virtual_chunks(2)
    }

    #[test]
    fn rescheduled_schedule_is_valid() {
        let s = fused(&figure5a_config()).unwrap();
        let r = reschedule_backwards(&s).unwrap();
        validate(&r).unwrap();
        assert_eq!(r.num_ops(), s.num_ops());
    }

    #[test]
    fn rescheduling_does_not_hurt_makespan() {
        for (p, v, s, n) in [
            (4usize, 2usize, 2usize, 2usize),
            (4, 2, 2, 4),
            (4, 1, 4, 8),
            (8, 2, 2, 8),
        ] {
            let cfg = SvppConfig::new(p, s, n).virtual_chunks(v);
            let before = fused(&cfg).unwrap();
            let after = reschedule_backwards(&before).unwrap();
            let tb = execute(&before, &UnitCost::ones()).unwrap();
            let ta = execute(&after, &UnitCost::ones()).unwrap();
            assert!(
                ta.makespan <= tb.makespan + 1e-9,
                "p={p} v={v} s={s} n={n}: {} > {}",
                ta.makespan,
                tb.makespan
            );
        }
    }

    #[test]
    fn rescheduling_preserves_peak_memory() {
        // Section 4.3: substitutions before the last forward keep the same
        // peak memory; the figure-6 result keeps peak at 1/2 A (8 units of
        // A/16 at p=4, v=2, s=2).
        let s = fused(&figure5a_config()).unwrap();
        let r = reschedule_backwards(&s).unwrap();
        assert!(peak_in_flight(&r)[0] <= peak_in_flight(&s)[0]);
    }

    #[test]
    fn works_on_split_schedules() {
        let cfg = figure5a_config();
        let s = crate::svpp::split(&cfg).unwrap();
        let r = reschedule_backwards(&s).unwrap();
        validate(&r).unwrap();
    }
}
