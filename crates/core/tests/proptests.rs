//! Property tests for the SVPP core: analytic formulas, variant family,
//! non-uniform slicing.

use proptest::prelude::*;

use mepipe_core::{
    analytic::{self, AnalysisParams},
    nonuniform::{balance_slices, Slicing},
    svpp::SvppConfig,
    variants,
};
use mepipe_model::config::TransformerConfig;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every Table 3 cell is a valid probability / positive fraction.
    #[test]
    fn analytic_cells_well_formed(
        p in 1usize..=32,
        v in 1usize..=4,
        s in 1usize..=16,
        n in 1usize..=64,
    ) {
        let a = AnalysisParams { p, v, s, n };
        for row in analytic::table3(a) {
            if let Some(b) = row.bubble_ratio {
                prop_assert!((0.0..1.0).contains(&b), "{}: bubble {b}", row.method);
            }
            if let Some(m) = row.memory_fraction {
                prop_assert!(m > 0.0 && m <= (n as f64).max(1.0), "{}: mem {m}", row.method);
            }
        }
    }

    /// SVPP's bubble ratio is never above TeraPipe's (same slicing, plus
    /// virtual chunks) in the small-cluster regime.
    #[test]
    fn svpp_dominates_terapipe(
        p in 2usize..=16,
        v in 1usize..=4,
        s in 1usize..=8,
        extra_n in 0usize..=32,
    ) {
        let n = p + extra_n; // n >= p.
        let a = AnalysisParams { p, v, s, n };
        let svpp = analytic::svpp(a).bubble_ratio.unwrap();
        let tera = analytic::terapipe(a).bubble_ratio.unwrap();
        prop_assert!(svpp <= tera + 1e-12);
        let svpp_m = analytic::svpp(a).memory_fraction.unwrap();
        let tera_m = analytic::terapipe(a).memory_fraction.unwrap();
        prop_assert!(svpp_m <= tera_m + 1e-12);
    }

    /// SVPP memory tends to A/p as s grows, from above.
    #[test]
    fn svpp_memory_limit(p in 2usize..=16, v in 1usize..=4) {
        let mut prev = f64::INFINITY;
        for s_pow in 0..=10usize {
            let s = 1usize << s_pow;
            let frac = analytic::svpp_memory_fraction(AnalysisParams { p, v, s, n: 64 });
            prop_assert!(frac <= prev + 1e-12);
            prop_assert!(frac >= 1.0 / p as f64 - 1e-12);
            prev = frac;
        }
    }

    /// The variant family is totally ordered: more warmup, more memory,
    /// fewer estimated bubbles.
    #[test]
    fn variant_family_ordered(p in 2usize..=8, v in 1usize..=3, s in 1usize..=6, n in 1usize..=8) {
        let cfg = SvppConfig::new(p, s, n).virtual_chunks(v);
        prop_assert!(cfg.min_warmup() <= cfg.max_warmup());
        let mut prev_mem = 0usize;
        let mut prev_bubble = f64::INFINITY;
        for f in cfg.min_warmup()..=cfg.max_warmup() {
            let peak = variants::variant_peak_units(&cfg, f);
            let bubble = variants::variant_bubble_estimate(&cfg, f);
            prop_assert!(peak >= prev_mem);
            prop_assert!(bubble <= prev_bubble + 1e-12);
            prev_mem = peak;
            prev_bubble = bubble;
        }
    }

    /// The DP slicing never has a worse bottleneck than uniform and its
    /// boundaries are strictly increasing and cover the sequence.
    #[test]
    fn dp_slicing_sound(s_pow in 1usize..=3, grid_pow in 5usize..=8) {
        // Power-of-two slice counts keep the uniform slicing on the DP's
        // grid, which the dominance property requires.
        let s = 1usize << s_pow;
        let cfg = TransformerConfig::llama2_13b();
        let grid = 1usize << grid_pow; // 32..=256 divides 4096.
        let b = balance_slices(&cfg, s, grid, 165e12);
        prop_assert_eq!(b.len(), s);
        prop_assert_eq!(*b.bounds.first().unwrap(), 0);
        prop_assert_eq!(*b.bounds.last().unwrap(), cfg.seq_len);
        prop_assert!(b.bounds.windows(2).all(|w| w[0] < w[1]));
        let uniform = Slicing::uniform(cfg.seq_len, s);
        prop_assert!(
            b.bottleneck_time(&cfg, 165e12) <= uniform.bottleneck_time(&cfg, 165e12) + 1e-15
        );
    }
}
