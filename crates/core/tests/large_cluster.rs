//! Large-cluster regime (n < p) checks: the Table 3 column the paper adds
//! for thousand-accelerator deployments.

use mepipe_core::analytic::{self, AnalysisParams};
use mepipe_core::svpp::Svpp;
use mepipe_schedule::exec::{execute, UnitCost};
use mepipe_schedule::generator::{Dapple, Dims, ScheduleGenerator};
use mepipe_schedule::validate::{peak_in_flight, validate};

#[test]
fn svpp_formula_tracks_generated_schedule_below_p() {
    // n < p: p=8, s=2, v=1, n=4 — sn=8 >= p so no extra term.
    let a = AnalysisParams {
        p: 8,
        v: 1,
        s: 2,
        n: 4,
    };
    let sch = Svpp::new().generate(&Dims::new(8, 4).slices(2)).unwrap();
    validate(&sch).unwrap();
    let t = execute(&sch, &UnitCost::ones()).unwrap();
    let formula = analytic::svpp(a).bubble_ratio.unwrap();
    assert!(
        (t.bubble_ratio() - formula).abs() < 0.08,
        "measured {} vs formula {formula}",
        t.bubble_ratio()
    );
}

#[test]
fn svpp_still_beats_dapple_below_p() {
    // The regime of Fig 8's GBS-32 column: few micro-batches per pipeline.
    let (p, n, s) = (8usize, 4usize, 4usize);
    let sv = Svpp::new().generate(&Dims::new(p, n).slices(s)).unwrap();
    let da = Dapple.generate(&Dims::new(p, n)).unwrap();
    let ts = execute(
        &sv,
        &UnitCost {
            fwd: 1.0,
            bwd: 2.0,
            wgrad: 0.0,
        },
    )
    .unwrap();
    let td = execute(
        &da,
        &UnitCost {
            fwd: s as f64,
            bwd: 2.0 * s as f64,
            wgrad: 0.0,
        },
    )
    .unwrap();
    assert!(ts.makespan < td.makespan);
    // Memory: SVPP holds slice units, DAPPLE whole micro-batches.
    let frac_sv = peak_in_flight(&sv)[0] as f64 / (p * s) as f64;
    let frac_da = peak_in_flight(&da)[0] as f64 / p as f64;
    assert!(frac_sv < frac_da);
}

#[test]
fn memory_caps_at_batch_size_below_p() {
    // With n·s units total in flight at most, the large-cluster memory
    // column caps at n/p·A.
    let a = AnalysisParams {
        p: 16,
        v: 1,
        s: 2,
        n: 2,
    };
    let mem = analytic::svpp(a).memory_fraction.unwrap();
    assert!(mem <= 2.0 / 16.0 + 1e-12);
    let sch = Svpp::new().generate(&Dims::new(16, 2).slices(2)).unwrap();
    // Peak units / (p·s) must not exceed the analytic fraction.
    let frac = peak_in_flight(&sch)[0] as f64 / 32.0;
    assert!(frac <= mem + 1e-12, "generated {frac} vs analytic {mem}");
}
