//! Property tests for the simulator's memory semantics and dynamic
//! weight-gradient draining.

use proptest::prelude::*;

use mepipe_core::svpp::{Mepipe, Svpp, SvppConfig};
use mepipe_schedule::generator::{Dapple, Dims, GPipe, ScheduleGenerator};
use mepipe_sim::{
    engine::{simulate, SimConfig},
    UniformSimCost,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// A memory limit equal to the unconstrained peak never triggers OOM
    /// or forced drains that change the outcome.
    #[test]
    fn exact_limit_is_feasible(p in 1usize..=6, n in 1usize..=8) {
        let sch = Dapple.generate(&Dims::new(p, n)).unwrap();
        let cost = UniformSimCost { act_bytes: 2.0, ..Default::default() };
        let free = simulate(&sch, &cost, &SimConfig::default()).unwrap();
        let peak = free.peak_activation_bytes.iter().copied().fold(0.0, f64::max);
        let capped = simulate(
            &sch,
            &cost,
            &SimConfig { memory_limit_bytes: Some(peak), ..Default::default() },
        )
        .unwrap();
        prop_assert!(capped.oom.is_none());
        prop_assert!((capped.makespan - free.makespan).abs() < 1e-9);
    }

    /// A limit below one unit always reports OOM on any non-trivial
    /// schedule.
    #[test]
    fn impossible_limit_always_ooms(p in 1usize..=5, n in 1usize..=6) {
        let sch = GPipe.generate(&Dims::new(p, n)).unwrap();
        let cost = UniformSimCost { act_bytes: 2.0, ..Default::default() };
        let r = simulate(
            &sch,
            &cost,
            &SimConfig { memory_limit_bytes: Some(1.0), ..Default::default() },
        )
        .unwrap();
        prop_assert!(r.oom.is_some());
    }

    /// With dynamic weight draining under a cap, the reported peak never
    /// exceeds cap + one unit (the admission that triggered the check).
    #[test]
    fn capped_peak_is_bounded(p in 2usize..=5, s in 1usize..=3, n in 2usize..=6) {
        let cfg = SvppConfig::new(p, s, n);
        let sch = Mepipe::new().generate(&Dims::new(p, n).slices(s)).unwrap();
        let cost = UniformSimCost { act_bytes: 1.0, wgrad_units: 4, ..Default::default() };
        let cap = (cfg.max_warmup() as f64) * 1.6; // Room for some retention.
        let r = simulate(
            &sch,
            &cost,
            &SimConfig {
                dynamic_wgrad: true,
                memory_limit_bytes: Some(cap),
                ..Default::default()
            },
        )
        .unwrap();
        if r.oom.is_none() {
            let peak = r.peak_activation_bytes.iter().copied().fold(0.0, f64::max);
            prop_assert!(peak <= cap + 1.0 + 1e-9, "peak {} vs cap {}", peak, cap);
        }
    }

    /// SVPP variants admit a strictly tighter feasible cap than DAPPLE at
    /// the same problem size (the whole point of the paper).
    #[test]
    fn svpp_feasible_below_dapple_floor(p in 2usize..=5, n_extra in 0usize..=4) {
        let n = p + n_extra;
        let s = 4usize;
        // DAPPLE's stage-0 floor is p whole-micro-batch units of size s.
        let dapple = Dapple.generate(&Dims::new(p, n)).unwrap();
        let d_cost = UniformSimCost { act_bytes: s as f64, ..Default::default() };
        // A cap of (s + p - 1) slice units: below DAPPLE's p*s.
        let cap = (s + p - 1) as f64;
        let rd = simulate(
            &dapple,
            &d_cost,
            &SimConfig { memory_limit_bytes: Some(cap), ..Default::default() },
        )
        .unwrap();
        prop_assert!(rd.oom.is_some(), "DAPPLE should exceed {} units", cap);
        let svpp = Svpp::new()
            .warmup_cap(s + p - 1)
            .generate(&Dims::new(p, n).slices(s))
            .unwrap();
        let s_cost = UniformSimCost { act_bytes: 1.0, ..Default::default() };
        let rs = simulate(
            &svpp,
            &s_cost,
            &SimConfig { memory_limit_bytes: Some(cap), ..Default::default() },
        )
        .unwrap();
        prop_assert!(rs.oom.is_none(), "SVPP must fit {} slice units", cap);
    }
}
