//! Measured-vs-modeled activation-memory validation.
//!
//! The memory analog of [`crate::bubblecheck`]: the schedule layer
//! *models* each stage's peak as (in-flight forward units at the worst
//! point) × (bytes one unit holds), and that model is what SVPP variant
//! selection trades bubbles against (Section 4.5). The runtime
//! *measures* the same quantity on live tensors through `MemTracker`.
//! This module reconciles the two: per-stage measured/modeled ratios
//! with a named warning band, plus the process-level `VmHWM` from
//! `/proc/self/status` as the outermost sanity bound (the tracker can
//! never have seen more than the OS did).
//!
//! The modeled unit size can come from the paper's analytical
//! `mepipe_model::memory` pricing or — sharper, and what the check.sh
//! smoke does — from a **probe run**: execute a one-micro-batch
//! schedule whose peak in-flight count is 1 by construction, read the
//! measured peak, and use that as the per-unit price. The reconciliation
//! then tests exactly the paper's claim that peak memory scales with the
//! *scheduled* in-flight count, not with anything else.

use mepipe_schedule::ir::Schedule;
use mepipe_schedule::validate::peak_in_flight;

/// Below this measured/modeled ratio a stage is flagged: the runtime
/// held far less than the schedule models, i.e. the model over-prices
/// activations (stale unit bytes, recompute not modeled).
pub const MEM_RATIO_WARN_LO: f64 = 0.5;

/// Above this measured/modeled ratio a stage is flagged: the runtime
/// held far more than the schedule models — retained buffers the model
/// does not know about (leaked saves, unreclaimed KV, deferred-W
/// operands past their drain point).
pub const MEM_RATIO_WARN_HI: f64 = 2.0;

/// Measured vs modeled peak activation bytes for one stage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageMemCheck {
    /// The stage this row describes.
    pub stage: usize,
    /// Peak in-flight forward units the schedule reaches on this stage.
    pub peak_units: usize,
    /// Peak live bytes the runtime's tracker measured.
    pub measured_bytes: f64,
    /// `peak_units × unit_bytes`: the schedule's modeled peak.
    pub modeled_bytes: f64,
}

impl StageMemCheck {
    /// measured / modeled; `NaN` when the model prices the stage at zero.
    pub fn ratio(&self) -> f64 {
        self.measured_bytes / self.modeled_bytes
    }
}

/// Whole-run comparison: one row per stage.
#[derive(Debug, Clone, PartialEq)]
pub struct MemCheckReport {
    /// Bytes one in-flight forward unit is priced at.
    pub unit_bytes: f64,
    /// One row per stage.
    pub stages: Vec<StageMemCheck>,
    /// Process peak resident set (`VmHWM`), bytes, when readable — the
    /// outer bound no per-stage tracker total should exceed.
    pub process_hwm_bytes: Option<u64>,
}

impl MemCheckReport {
    /// Builds the report from a run's measured per-stage peaks
    /// (`RunStats::peak_bytes`), the schedule they ran under, and the
    /// per-unit activation price. The modeled side is
    /// [`peak_in_flight`]`(schedule)[stage] × unit_bytes`.
    ///
    /// # Panics
    ///
    /// Panics if `measured_peak_bytes` disagrees with the schedule's
    /// worker count — the comparison would be meaningless.
    pub fn from_run(schedule: &Schedule, measured_peak_bytes: &[usize], unit_bytes: f64) -> Self {
        let units = peak_in_flight(schedule);
        assert_eq!(
            units.len(),
            measured_peak_bytes.len(),
            "schedule workers vs measured stages"
        );
        let stages = measured_peak_bytes
            .iter()
            .zip(&units)
            .enumerate()
            .map(|(stage, (&measured, &peak_units))| StageMemCheck {
                stage,
                peak_units,
                measured_bytes: measured as f64,
                modeled_bytes: peak_units as f64 * unit_bytes,
            })
            .collect();
        MemCheckReport {
            unit_bytes,
            stages,
            process_hwm_bytes: vm_hwm_bytes(),
        }
    }

    /// Total measured peak bytes across stages.
    pub fn measured_total(&self) -> f64 {
        self.stages.iter().map(|s| s.measured_bytes).sum()
    }

    /// Total modeled peak bytes across stages.
    pub fn modeled_total(&self) -> f64 {
        self.stages.iter().map(|s| s.modeled_bytes).sum()
    }

    /// Aggregate measured/modeled ratio.
    pub fn ratio(&self) -> f64 {
        self.measured_total() / self.modeled_total()
    }

    /// Whether every priced stage sits inside the warning band.
    pub fn in_band(&self) -> bool {
        self.warnings().is_empty()
    }

    /// Named `MEM_MODEL_MISMATCH` warnings for every stage whose
    /// measured/modeled ratio falls outside
    /// [[`MEM_RATIO_WARN_LO`], [`MEM_RATIO_WARN_HI`]]. Stages the model
    /// prices at zero (no forward units scheduled) are exempt. A
    /// `MEM_HWM_MISMATCH` warning is added if the trackers' summed peak
    /// exceeds the OS-reported process high-water mark — measured live
    /// bytes the process never actually held means broken accounting.
    pub fn warnings(&self) -> Vec<String> {
        let mut out: Vec<String> = self
            .stages
            .iter()
            .filter(|s| s.modeled_bytes > 0.0)
            .filter(|s| {
                let r = s.ratio();
                !(MEM_RATIO_WARN_LO..=MEM_RATIO_WARN_HI).contains(&r)
            })
            .map(|s| {
                format!(
                    "MEM_MODEL_MISMATCH: stage {} measured/modeled = {:.2} \
                     (outside [{MEM_RATIO_WARN_LO}, {MEM_RATIO_WARN_HI}]; \
                     measured {:.1} KiB, modeled {:.1} KiB = {} units x {:.1} KiB)",
                    s.stage,
                    s.ratio(),
                    s.measured_bytes / 1024.0,
                    s.modeled_bytes / 1024.0,
                    s.peak_units,
                    self.unit_bytes / 1024.0,
                )
            })
            .collect();
        if let Some(hwm) = self.process_hwm_bytes {
            let measured = self.measured_total();
            if measured > hwm as f64 {
                out.push(format!(
                    "MEM_HWM_MISMATCH: trackers measured {:.1} KiB live but the \
                     process high-water mark is {:.1} KiB — accounting exceeds reality",
                    measured / 1024.0,
                    hwm as f64 / 1024.0,
                ));
            }
        }
        out
    }

    /// Plain-text table for logs and EXPERIMENTS.md-style reports, with
    /// [`MemCheckReport::warnings`] appended so out-of-band ratios are
    /// flagged by name rather than silently printed.
    pub fn render(&self) -> String {
        let mut out = format!(
            "memcheck (unit {:.1} KiB{}): measured/modeled = {:.2}\n",
            self.unit_bytes / 1024.0,
            self.process_hwm_bytes
                .map(|h| format!(", VmHWM {:.1} MiB", h as f64 / (1024.0 * 1024.0)))
                .unwrap_or_default(),
            self.ratio()
        );
        for s in &self.stages {
            out.push_str(&format!(
                "  stage {}: {} units in flight, measured {:.1} KiB, modeled {:.1} KiB ({:.2}x)\n",
                s.stage,
                s.peak_units,
                s.measured_bytes / 1024.0,
                s.modeled_bytes / 1024.0,
                s.ratio()
            ));
        }
        for w in self.warnings() {
            out.push_str(&w);
            out.push('\n');
        }
        out
    }
}

/// Reads the process peak resident set (`VmHWM`) from
/// `/proc/self/status`, in bytes. `None` off Linux or if the field is
/// missing/unparseable.
pub fn vm_hwm_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kib: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kib * 1024)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mepipe_core::svpp::Mepipe;
    use mepipe_schedule::generator::{Dapple, Dims, ScheduleGenerator};

    fn svpp_schedule(stages: usize, mbs: usize, slices: usize) -> Schedule {
        Mepipe::new()
            .generate(&Dims::new(stages, mbs).slices(slices))
            .expect("valid dims")
    }

    #[test]
    fn exact_linear_scaling_is_in_band() {
        let sch = svpp_schedule(4, 8, 2);
        let unit = 1000.0;
        let measured: Vec<usize> = peak_in_flight(&sch).iter().map(|u| u * 1000).collect();
        let report = MemCheckReport::from_run(&sch, &measured, unit);
        assert!(report.in_band(), "{:?}", report.warnings());
        assert!((report.ratio() - 1.0).abs() < 1e-9);
        assert!(report.render().contains("measured/modeled = 1.00"));
    }

    #[test]
    fn retained_buffers_past_the_band_are_flagged_by_name() {
        let sch = svpp_schedule(2, 4, 2);
        let units = peak_in_flight(&sch);
        let mut measured: Vec<usize> = units.iter().map(|u| u * 1000).collect();
        measured[1] = units[1] * 5000; // 5x the model on stage 1
        let report = MemCheckReport::from_run(&sch, &measured, 1000.0);
        let warnings = report.warnings();
        assert!(
            warnings
                .iter()
                .any(|w| w.starts_with("MEM_MODEL_MISMATCH") && w.contains("stage 1")),
            "{warnings:?}"
        );
        assert!(report.render().contains("MEM_MODEL_MISMATCH"));
        assert!(!report.in_band());
    }

    #[test]
    fn zero_priced_stages_never_warn() {
        let sch = svpp_schedule(2, 4, 2);
        // A fake "stage" with units=0 can't occur in a real schedule, so
        // instead check the exemption logic via a zero unit price.
        let measured = vec![5000usize; 2];
        let report = MemCheckReport::from_run(&sch, &measured, 0.0);
        assert!(report.warnings().is_empty(), "{:?}", report.warnings());
    }

    #[test]
    fn vm_hwm_reads_on_linux() {
        // The build/test environment is Linux; a live process must have
        // a nonzero high-water mark well above a megabyte.
        let hwm = vm_hwm_bytes().expect("VmHWM readable");
        assert!(hwm > 1 << 20, "VmHWM = {hwm}");
    }

    #[test]
    fn svpp_models_below_dapple_in_bytes() {
        // The claim the report quantifies: SVPP holds more *units* in
        // flight (slice units, 5 vs 4 here) but each is `slices`×
        // smaller, so its modeled bytes undercut the 1F1B family's —
        // 5·A/8 vs 4·A/4 for p=4, s=2.
        let slices = 2.0;
        let sample_bytes = 8192.0;
        let svpp = Mepipe::new()
            .generate(&Dims::new(4, 8).slices(2))
            .expect("svpp");
        let dapple = Dapple.generate(&Dims::new(4, 8)).expect("dapple");
        let dapple_unit = sample_bytes / 4.0;
        let svpp_unit = dapple_unit / slices;
        let b_svpp = peak_in_flight(&svpp)[0] as f64 * svpp_unit;
        let b_dapple = peak_in_flight(&dapple)[0] as f64 * dapple_unit;
        assert!(
            b_svpp < b_dapple,
            "svpp {b_svpp} bytes vs dapple {b_dapple}"
        );
    }
}
