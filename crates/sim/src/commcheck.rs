//! Measured-vs-modeled communication validation.
//!
//! The simulator predicts transfer times from a [`LinkSpec`]'s alpha-beta
//! model (`latency + bytes / bandwidth`); the emulated transport in
//! `mepipe-comm` *enforces* the same spec with real sleeps and reports
//! what it did through [`CommStats`]. This module closes the loop: given
//! the counters from an emulated run and the spec it ran under, it
//! reconstructs what the cost model would have predicted for the same
//! traffic and reports measured/modeled per directed link.
//!
//! The measured side can only exceed the model, but not by much: the
//! emulator sleeps for at least the modeled wire time per transmission,
//! and `wire_ns` counts exactly those sleeps (plus OS timer overshoot)
//! — ack waiting is accounted separately in `ack_wait_ns`, because it
//! measures the receiver's schedule rather than the link. Ratios should
//! therefore sit near 1.0; [`CommCheckReport::warnings`] names every
//! link whose ratio falls outside [`RATIO_WARN_LO`, `RATIO_WARN_HI`],
//! which indicates either a cost-model bug or heavy timer interference
//! — exactly the signal the paper's profile-predict-execute loop needs.

use mepipe_comm::CommStats;
use mepipe_hw::LinkSpec;

/// Below this measured/modeled ratio a link is flagged: the emulator
/// slept less than the model predicts, i.e. the model over-prices the
/// link.
pub const RATIO_WARN_LO: f64 = 0.5;

/// Above this measured/modeled ratio a link is flagged: the wire spent
/// far longer occupied than the model predicts, i.e. the model
/// under-prices the link (the old ack-wait accounting bug produced
/// ratios in the hundreds here).
pub const RATIO_WARN_HI: f64 = 2.0;

/// Measured vs modeled times for one directed link (stage → peer).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkCheck {
    /// Sending stage.
    pub stage: usize,
    /// Receiving peer.
    pub peer: usize,
    /// Messages transmitted (including retransmissions).
    pub tx_messages: u64,
    /// Bytes transmitted (including retransmissions).
    pub tx_bytes: u64,
    /// Tensor payload bytes before wire-codec encoding.
    pub payload_bytes_precodec: u64,
    /// Tensor payload bytes after wire-codec encoding (what the wire
    /// actually carried).
    pub payload_bytes_postcodec: u64,
    /// What the emulator actually spent on the wire, seconds.
    pub measured_s: f64,
    /// What the alpha-beta model predicts for the same traffic, seconds.
    pub modeled_s: f64,
}

impl LinkCheck {
    /// measured / modeled; `NaN` when the model predicts zero time.
    pub fn ratio(&self) -> f64 {
        self.measured_s / self.modeled_s
    }

    /// postcodec / precodec payload bytes: 1.0 for the f32 codec, ~0.5
    /// for bf16. `None` when the link carried no payload.
    pub fn compression(&self) -> Option<f64> {
        (self.payload_bytes_precodec > 0)
            .then(|| self.payload_bytes_postcodec as f64 / self.payload_bytes_precodec as f64)
    }
}

/// Whole-run comparison: every directed link that carried traffic.
#[derive(Debug, Clone, PartialEq)]
pub struct CommCheckReport {
    /// The spec the emulated run enforced (and the model predicts from).
    pub link: LinkSpec,
    /// One row per directed link with nonzero traffic.
    pub links: Vec<LinkCheck>,
}

impl CommCheckReport {
    /// Builds the report from an emulated run's per-stage counters.
    ///
    /// `stats` is `RunStats::comm` (one [`CommStats`] per stage); `link`
    /// must be the spec the run was emulated under for the comparison to
    /// be meaningful.
    pub fn from_run(stats: &[CommStats], link: &LinkSpec) -> Self {
        let mut links = Vec::new();
        for cs in stats {
            for (peer, ls) in cs.links.iter().enumerate() {
                if ls.tx_messages == 0 {
                    continue;
                }
                // Alpha-beta over the aggregate: each message pays the
                // latency once, the bytes share the bandwidth term.
                // (`transfer_time(0)` is pinned to zero, so the latency
                // term must come straight from the spec — pricing it via
                // `transfer_time` once charged the latency per *run*.)
                let bandwidth_s = if link.bandwidth.is_finite() {
                    ls.tx_bytes as f64 / link.bandwidth
                } else {
                    0.0
                };
                let modeled_s = ls.tx_messages as f64 * link.latency + bandwidth_s;
                links.push(LinkCheck {
                    stage: cs.stage,
                    peer,
                    tx_messages: ls.tx_messages,
                    tx_bytes: ls.tx_bytes,
                    payload_bytes_precodec: ls.payload_bytes_precodec,
                    payload_bytes_postcodec: ls.payload_bytes_postcodec,
                    measured_s: ls.wire_ns as f64 * 1e-9,
                    modeled_s,
                });
            }
        }
        CommCheckReport {
            link: link.clone(),
            links,
        }
    }

    /// Total measured wire seconds across all links.
    pub fn measured_total(&self) -> f64 {
        self.links.iter().map(|l| l.measured_s).sum()
    }

    /// Total modeled wire seconds across all links.
    pub fn modeled_total(&self) -> f64 {
        self.links.iter().map(|l| l.modeled_s).sum()
    }

    /// Aggregate measured/modeled ratio.
    pub fn ratio(&self) -> f64 {
        self.measured_total() / self.modeled_total()
    }

    /// Every link's emulation slept at least the modeled wire time
    /// (minus `tolerance_s` of accounting slack per link). The emulator
    /// guarantees this by construction; a violation means its sleeps or
    /// counters disagree with the cost model.
    pub fn measured_covers_model(&self, tolerance_s: f64) -> bool {
        self.links
            .iter()
            .all(|l| l.measured_s + tolerance_s >= l.modeled_s)
    }

    /// Named `WIRE_MODEL_MISMATCH` warnings for every link whose
    /// measured/modeled ratio falls outside
    /// [[`RATIO_WARN_LO`], [`RATIO_WARN_HI`]]. Links the model prices at
    /// zero (e.g. loopback) are exempt — their ratio is undefined.
    pub fn warnings(&self) -> Vec<String> {
        self.links
            .iter()
            .filter(|l| l.modeled_s > 0.0)
            .filter(|l| {
                let r = l.ratio();
                !(RATIO_WARN_LO..=RATIO_WARN_HI).contains(&r)
            })
            .map(|l| {
                format!(
                    "WIRE_MODEL_MISMATCH: link {} -> {} measured/modeled = {:.2} \
                     (outside [{RATIO_WARN_LO}, {RATIO_WARN_HI}]; measured {:.3} ms, modeled {:.3} ms)",
                    l.stage,
                    l.peer,
                    l.ratio(),
                    l.measured_s * 1e3,
                    l.modeled_s * 1e3,
                )
            })
            .collect()
    }

    /// Plain-text table for logs and EXPERIMENTS.md-style reports, with
    /// [`CommCheckReport::warnings`] appended so out-of-band ratios are
    /// flagged by name rather than silently printed.
    pub fn render(&self) -> String {
        let mut out = format!(
            "link {} (bw {:.3e} B/s, lat {:.1} us): measured/modeled = {:.2}\n",
            self.link.name,
            self.link.bandwidth,
            self.link.latency * 1e6,
            self.ratio()
        );
        for l in &self.links {
            let codec_txt = l
                .compression()
                .map(|c| format!(", codec {c:.2}x"))
                .unwrap_or_default();
            out.push_str(&format!(
                "  {} -> {}: {} msgs, {} bytes{codec_txt}, measured {:.3} ms, modeled {:.3} ms ({:.2}x)\n",
                l.stage,
                l.peer,
                l.tx_messages,
                l.tx_bytes,
                l.measured_s * 1e3,
                l.modeled_s * 1e3,
                l.ratio()
            ));
        }
        for w in self.warnings() {
            out.push_str(&w);
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mepipe_comm::{EmulatedTransport, InProcTransport, MsgKind, StageMsg, Transport};
    use mepipe_tensor::Tensor;

    fn emulated_ping(link: LinkSpec, payload: usize) -> Vec<CommStats> {
        let t = EmulatedTransport::new(Box::new(InProcTransport::new(2, 8)), link);
        let mut stats = vec![CommStats::new(0, 2), CommStats::new(1, 2)];
        std::thread::scope(|s| {
            let tref = &t;
            let sender = s.spawn(move || {
                let mut e = tref.endpoint(0).unwrap();
                e.send(
                    1,
                    StageMsg {
                        kind: MsgKind::Fwd,
                        mb: 0,
                        slice: 0,
                        g: 0,
                        tensor: Tensor::from_vec(1, payload, vec![1.0; payload]),
                    },
                )
                .unwrap();
                e.close();
                e.stats()
            });
            let mut e = t.endpoint(1).unwrap();
            e.recv().unwrap();
            e.close();
            stats[1] = e.stats();
            stats[0] = sender.join().unwrap();
        });
        stats
    }

    #[test]
    fn emulated_wire_time_covers_the_model() {
        // 1 MB/s + 1 ms latency: a 4 KiB tensor models to >= 5 ms, slow
        // enough that timer noise cannot hide the signal.
        let link = LinkSpec {
            name: "test-slow",
            bandwidth: 1e6,
            latency: 1e-3,
        };
        let stats = emulated_ping(link.clone(), 1024);
        let report = CommCheckReport::from_run(&stats, &link);
        assert_eq!(report.links.len(), 1, "one directed link carried data");
        let l = &report.links[0];
        assert_eq!((l.stage, l.peer), (0, 1));
        assert!(l.modeled_s > 4e-3, "modeled {:.6}s", l.modeled_s);
        assert!(
            report.measured_covers_model(0.0),
            "measured {:.6}s < modeled {:.6}s",
            l.measured_s,
            l.modeled_s
        );
        // Sanity on the render path.
        assert!(report.render().contains("test-slow"));
        assert!(report.ratio() >= 1.0);
        // The default f32 codec is 1:1 on the wire.
        assert_eq!(l.compression(), Some(1.0));
        assert!(report.render().contains("codec 1.00x"));
    }

    #[test]
    fn infinite_bandwidth_models_latency_only() {
        let link = LinkSpec::loopback();
        let stats = emulated_ping(link.clone(), 64);
        let report = CommCheckReport::from_run(&stats, &link);
        assert_eq!(report.modeled_total(), 0.0);
        assert!(report.measured_covers_model(0.0));
        // Zero-priced links never warn even though their ratio is NaN.
        assert!(report.warnings().is_empty());
    }

    #[test]
    fn wire_ratio_lands_near_one_with_no_warnings() {
        // Post-fix, wire_ns is the sleeps alone, so even a slow link
        // that forces the receiver to wait lands inside [0.5, 2.0].
        let link = LinkSpec {
            name: "test-slow",
            bandwidth: 1e6,
            latency: 1e-3,
        };
        let stats = emulated_ping(link.clone(), 1024);
        let report = CommCheckReport::from_run(&stats, &link);
        let r = report.ratio();
        assert!(
            (RATIO_WARN_LO..=RATIO_WARN_HI).contains(&r),
            "wire_measured_over_modeled {r:.3} outside the healthy band"
        );
        assert!(report.warnings().is_empty(), "{:?}", report.warnings());
    }

    #[test]
    fn out_of_band_ratios_are_flagged_by_name() {
        let link = LinkSpec {
            name: "test",
            bandwidth: 1e6,
            latency: 1e-3,
        };
        let mut stats = CommStats::new(0, 2);
        stats.links[1].tx_messages = 1;
        stats.links[1].tx_bytes = 1000;
        stats.links[1].wire_ns = 600_000_000; // 0.6 s vs ~2 ms modeled
        let report = CommCheckReport::from_run(&[stats], &link);
        let warnings = report.warnings();
        assert_eq!(warnings.len(), 1);
        assert!(warnings[0].starts_with("WIRE_MODEL_MISMATCH"));
        assert!(report.render().contains("WIRE_MODEL_MISMATCH"));
    }
}
