//! The discrete-event execution engine.
//!
//! Semantics: every worker executes its schedule list strictly in order
//! (forwards, input-gradient/fused backwards); an op starts once its
//! producers have finished and any cross-stage tensor has arrived. Two
//! dynamic behaviours sit on top:
//!
//! * with [`SimConfig::dynamic_wgrad`] enabled, weight-gradient ops are
//!   *not* executed at their list position — they enter a FIFO
//!   [`WgradQueue`] when their input-gradient op completes and are drained
//!   GEMM-by-GEMM whenever the worker would otherwise idle, plus a final
//!   drain after the list is exhausted (Section 5);
//! * with a [`SimConfig::memory_limit_bytes`], activations are charged at
//!   forward start and the engine force-drains deferred weight work to
//!   make room before declaring OOM.

use std::collections::HashMap;

use mepipe_core::wgrad::WgradQueue;
use mepipe_schedule::ir::{Op, OpKind, Schedule};

use crate::{
    cost::SimCost,
    timeline::{Segment, SegmentKind},
};

/// Engine configuration.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// Defer weight-gradient ops into an opportunistic queue instead of
    /// running them at their list positions.
    pub dynamic_wgrad: bool,
    /// Per-worker activation-memory cap in bytes (`None` = unbounded).
    pub memory_limit_bytes: Option<f64>,
    /// Add the data-parallel gradient synchronisation to iteration time.
    pub include_dp_sync: bool,
    /// Add the optimizer step to iteration time.
    pub include_optimizer: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            dynamic_wgrad: false,
            memory_limit_bytes: None,
            include_dp_sync: true,
            include_optimizer: true,
        }
    }
}

/// Result of one simulated iteration.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Per-worker timeline segments (compute, weight-drain), time-ordered.
    pub segments: Vec<Vec<Segment>>,
    /// Completion time of the last compute on any worker (excludes DP sync
    /// and optimizer).
    pub makespan: f64,
    /// Full iteration time (makespan + DP sync + optimizer when enabled).
    pub iteration_time: f64,
    /// Busy compute time per worker (including drained weight work).
    pub busy: Vec<f64>,
    /// Peak activation bytes per worker (including deferred-W retention).
    pub peak_activation_bytes: Vec<f64>,
    /// First worker that exceeded the memory cap even after force-drains,
    /// with the bytes it needed.
    pub oom: Option<(usize, f64)>,
}

impl SimResult {
    /// Mean idle fraction across workers over the makespan.
    pub fn bubble_ratio(&self) -> f64 {
        if self.makespan <= 0.0 || self.busy.is_empty() {
            return 0.0;
        }
        let sum: f64 = self.busy.iter().map(|b| 1.0 - b / self.makespan).sum();
        (sum / self.busy.len() as f64).max(0.0)
    }

    /// Idle fraction of one worker.
    pub fn bubble_ratio_of(&self, stage: usize) -> f64 {
        if self.makespan <= 0.0 {
            return 0.0;
        }
        1.0 - self.busy[stage] / self.makespan
    }

    /// Compresses the result to the scalar summary the grid search keeps:
    /// timings, the mean bubble ratio, the worst worker's activation peak
    /// and the OOM verdict — everything except the per-worker timelines.
    pub fn summary(&self) -> SimSummary {
        SimSummary {
            iteration_time: self.iteration_time,
            makespan: self.makespan,
            bubble_ratio: self.bubble_ratio(),
            peak_activation_bytes: self
                .peak_activation_bytes
                .iter()
                .copied()
                .fold(0.0, f64::max),
            oom: self.oom,
        }
    }
}

/// Scalar summary of a [`SimResult`] — what search memoization retains
/// per evaluated candidate, a few dozen bytes instead of the full
/// per-worker segment timelines.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimSummary {
    /// Full iteration time (makespan + enabled overheads).
    pub iteration_time: f64,
    /// Completion time of the last compute on any worker.
    pub makespan: f64,
    /// Mean idle fraction across workers.
    pub bubble_ratio: f64,
    /// Peak activation bytes on the most loaded worker.
    pub peak_activation_bytes: f64,
    /// OOM verdict: first worker over the cap and the bytes it needed.
    pub oom: Option<(usize, f64)>,
}

struct WorkerState {
    next: usize,
    free: f64,
    busy: f64,
    act_bytes: f64,
    peak_bytes: f64,
    queue: WgradQueue,
    segments: Vec<Segment>,
}

impl WorkerState {
    fn current_bytes(&self) -> f64 {
        self.act_bytes + self.queue.retained_bytes()
    }

    fn note_peak(&mut self) {
        self.peak_bytes = self.peak_bytes.max(self.current_bytes());
    }
}

/// Simulates one iteration of `schedule` under `cost`.
///
/// Returns `Err` only on a malformed (deadlocking) schedule; OOM is
/// reported in-band via [`SimResult::oom`].
///
/// # Examples
///
/// ```
/// use mepipe_schedule::generator::{Dapple, Dims, ScheduleGenerator};
/// use mepipe_sim::{engine::{simulate, SimConfig}, UniformSimCost};
///
/// let schedule = Dapple.generate(&Dims::new(4, 8)).unwrap();
/// let result = simulate(&schedule, &UniformSimCost::default(), &SimConfig::default()).unwrap();
/// // 1F1B at p=4, n=8 with balanced unit costs: bubble (p-1)/(p-1+n).
/// assert!((result.bubble_ratio() - 3.0 / 11.0).abs() < 1e-9);
/// ```
pub fn simulate(
    schedule: &Schedule,
    cost: &dyn SimCost,
    config: &SimConfig,
) -> Result<SimResult, String> {
    let meta = &schedule.meta;
    let nw = schedule.num_workers();
    let mut workers: Vec<WorkerState> = (0..nw)
        .map(|_| WorkerState {
            next: 0,
            free: 0.0,
            busy: 0.0,
            act_bytes: 0.0,
            peak_bytes: 0.0,
            queue: WgradQueue::new(),
            segments: Vec::new(),
        })
        .collect();
    let mut finished: HashMap<(usize, Op), f64> = HashMap::with_capacity(schedule.num_ops());
    let mut oom: Option<(usize, f64)> = None;
    // Directed link occupancy: two tensors crossing the same stage
    // boundary in the same direction serialise (the fabric is full
    // duplex, so the two directions are independent). This is what makes
    // very fine slices pay for their per-message latency on slow links.
    let mut link_free: HashMap<(usize, usize), f64> = HashMap::new();

    // Skip-set for dynamically deferred weight ops.
    let is_deferred_w = |op: &Op| config.dynamic_wgrad && op.kind == OpKind::BackwardWeight;

    let total_listed: usize = schedule
        .workers
        .iter()
        .map(|ops| ops.iter().filter(|o| !is_deferred_w(o)).count())
        .sum();
    let mut executed = 0usize;

    while executed < total_listed {
        // Select the globally earliest startable next op.
        let mut best: Option<(f64, usize)> = None;
        for (w, st) in workers.iter().enumerate() {
            let mut idx = st.next;
            while idx < schedule.workers[w].len() && is_deferred_w(&schedule.workers[w][idx]) {
                idx += 1;
            }
            if idx >= schedule.workers[w].len() {
                continue;
            }
            let op = schedule.workers[w][idx];
            let mut ready = st.free;
            let mut ok = true;
            for d in mepipe_schedule::deps::dependencies(meta, w, op) {
                // A dynamically deferred weight op never appears as a
                // producer of listed ops (only the optimizer needs it).
                match finished.get(&(d.stage, d.op)) {
                    Some(&t) => {
                        let arrival = if d.cross_stage {
                            let busy_until = link_free.get(&(d.stage, w)).copied().unwrap_or(0.0);
                            t.max(busy_until) + cost.transfer_time(d.stage, w)
                        } else {
                            t
                        };
                        ready = ready.max(arrival);
                    }
                    None => {
                        ok = false;
                        break;
                    }
                }
            }
            if ok && best.is_none_or(|(bt, _)| ready < bt) {
                best = Some((ready, w));
            }
        }
        let (mut start, w) = best.ok_or_else(|| deadlock_message(schedule, &workers))?;
        // Advance past deferred weight ops in the list.
        while is_deferred_w(&schedule.workers[w][workers[w].next]) {
            workers[w].next += 1;
        }
        let op = schedule.workers[w][workers[w].next];

        // Fill the wait gap with queued weight-gradient GEMMs.
        if config.dynamic_wgrad && start > workers[w].free {
            let gap = start - workers[w].free;
            let (spent, _done) = workers[w].queue.drain_for(gap);
            if spent > 0.0 {
                let st = &mut workers[w];
                st.segments.push(Segment {
                    kind: SegmentKind::WgradDrain,
                    op: None,
                    start: st.free,
                    end: st.free + spent,
                });
                st.busy += spent;
                st.free += spent;
            }
        }

        // Memory admission for forwards.
        if op.kind == OpKind::Forward {
            let need = cost.activation_bytes();
            if let Some(limit) = config.memory_limit_bytes {
                let over = workers[w].current_bytes() + need - limit;
                if over > 0.0 {
                    let (spent, _done) = workers[w].queue.drain_for_bytes(over);
                    if spent > 0.0 {
                        let st = &mut workers[w];
                        st.segments.push(Segment {
                            kind: SegmentKind::WgradDrain,
                            op: None,
                            start: st.free.max(start),
                            end: st.free.max(start) + spent,
                        });
                        st.busy += spent;
                        st.free = st.free.max(start) + spent;
                        start = start.max(st.free);
                    }
                    if workers[w].current_bytes() + need > limit && oom.is_none() {
                        oom = Some((w, workers[w].current_bytes() + need));
                    }
                }
            }
            workers[w].act_bytes += need;
            workers[w].note_peak();
        }

        start = start.max(workers[w].free);
        let dur = cost.duration(w, op);
        let end = start + dur;
        {
            let st = &mut workers[w];
            st.segments.push(Segment {
                kind: SegmentKind::from_op(op.kind),
                op: Some(op),
                start,
                end,
            });
            st.busy += dur;
            st.free = end;
            st.next += 1;
        }
        finished.insert((w, op), end);
        executed += 1;
        // Commit the link occupancy of every transfer this op consumed.
        for d in mepipe_schedule::deps::dependencies(meta, w, op) {
            if d.cross_stage {
                let t = finished[&(d.stage, d.op)];
                let busy_until = link_free.get(&(d.stage, w)).copied().unwrap_or(0.0);
                link_free.insert(
                    (d.stage, w),
                    t.max(busy_until) + cost.transfer_time(d.stage, w),
                );
            }
        }

        // Memory release / deferral at backward completion.
        match op.kind {
            OpKind::Backward => {
                workers[w].act_bytes -= cost.activation_bytes();
            }
            OpKind::BackwardInput if config.dynamic_wgrad => {
                // Activation + gradient retained until the W drain.
                workers[w].act_bytes -= cost.activation_bytes();
                let retained = cost.activation_bytes() + cost.deferred_bytes();
                let units = cost.wgrad_units();
                let w_time = cost.wgrad_time(w, op);
                workers[w].queue.enqueue(
                    op.with_kind(OpKind::BackwardWeight),
                    units,
                    w_time / units as f64,
                    retained,
                );
                workers[w].note_peak();
                // Deferred retention must also respect the cap — this is
                // the Section 5 observation that memory-pressed early
                // stages have to run their weight gradients eagerly.
                if let Some(limit) = config.memory_limit_bytes {
                    let over = workers[w].current_bytes() - limit;
                    if over > 0.0 {
                        let (spent, _done) = workers[w].queue.drain_for_bytes(over);
                        if spent > 0.0 {
                            let st = &mut workers[w];
                            st.segments.push(Segment {
                                kind: SegmentKind::WgradDrain,
                                op: None,
                                start: st.free,
                                end: st.free + spent,
                            });
                            st.busy += spent;
                            st.free += spent;
                        }
                    }
                }
            }
            OpKind::BackwardInput => {
                // Static split: the W op follows in the list; keep the
                // activation charged until it completes.
            }
            OpKind::BackwardWeight => {
                workers[w].act_bytes -= cost.activation_bytes();
            }
            OpKind::Forward => {}
        }
    }

    // Tail drain of any remaining deferred weight work.
    if config.dynamic_wgrad {
        for (w, st) in workers.iter_mut().enumerate() {
            let _ = w;
            if !st.queue.is_empty() {
                let (spent, _done) = st.queue.drain_all();
                st.segments.push(Segment {
                    kind: SegmentKind::WgradDrain,
                    op: None,
                    start: st.free,
                    end: st.free + spent,
                });
                st.busy += spent;
                st.free += spent;
            }
        }
    }

    let makespan = workers.iter().map(|s| s.free).fold(0.0, f64::max);
    let mut iteration_time = makespan;
    if config.include_dp_sync {
        iteration_time += cost.dp_sync_time();
    }
    if config.include_optimizer {
        iteration_time += cost.optimizer_time();
    }

    Ok(SimResult {
        segments: workers.iter().map(|s| s.segments.clone()).collect(),
        makespan,
        iteration_time,
        busy: workers.iter().map(|s| s.busy).collect(),
        peak_activation_bytes: workers.iter().map(|s| s.peak_bytes).collect(),
        oom,
    })
}

fn deadlock_message(schedule: &Schedule, workers: &[WorkerState]) -> String {
    for (w, st) in workers.iter().enumerate() {
        if st.next < schedule.workers[w].len() {
            return format!(
                "simulation deadlock at worker {w}: {}",
                schedule.workers[w][st.next]
            );
        }
    }
    "simulation deadlock with no pending ops (internal error)".into()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::UniformSimCost;
    use mepipe_core::svpp::{Mepipe, Svpp};
    use mepipe_schedule::generator::{Dapple, Dims, GPipe, ScheduleGenerator, Zb};

    fn svpp_dims(p: usize, s: usize, n: usize) -> Dims {
        Dims::new(p, n).slices(s)
    }

    #[test]
    fn matches_static_executor_without_dynamics() {
        let sch = Dapple.generate(&Dims::new(4, 8)).unwrap();
        let cost = UniformSimCost::default();
        let r = simulate(&sch, &cost, &SimConfig::default()).unwrap();
        let t = mepipe_schedule::exec::execute(
            &sch,
            &mepipe_schedule::exec::UnitCost {
                fwd: 1.0,
                bwd: 2.0,
                wgrad: 0.0,
            },
        )
        .unwrap();
        assert!((r.makespan - t.makespan).abs() < 1e-9);
        assert!((r.bubble_ratio() - t.bubble_ratio()).abs() < 1e-9);
    }

    #[test]
    fn peak_memory_counts_in_flight_units() {
        let sch = GPipe.generate(&Dims::new(4, 8)).unwrap();
        let cost = UniformSimCost::default();
        let r = simulate(&sch, &cost, &SimConfig::default()).unwrap();
        // GPipe stage 0 holds all 8 micro-batches.
        assert_eq!(r.peak_activation_bytes[0], 8.0);
    }

    #[test]
    fn fine_grained_dynamic_wgrad_beats_static_with_comm_waits() {
        // The Section 5 claim: with communication waits in the pipeline,
        // draining weight GEMMs into the gaps shortens the iteration. At
        // GEMM granularity (units = 8) the gaps are actually fillable;
        // whole-op deferral (units = 1) can even lose to the static layout
        // because a 0.4-long gap cannot hold a 1.0-long W op.
        let sch = Zb.generate(&Dims::new(4, 8)).unwrap();
        let cost = UniformSimCost {
            comm: 0.4,
            wgrad_units: 8,
            ..Default::default()
        };
        let stat = simulate(
            &sch,
            &cost,
            &SimConfig {
                dynamic_wgrad: false,
                ..Default::default()
            },
        )
        .unwrap();
        let dynr = simulate(
            &sch,
            &cost,
            &SimConfig {
                dynamic_wgrad: true,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(
            dynr.makespan < stat.makespan + 1e-9,
            "dynamic {} vs static {}",
            dynr.makespan,
            stat.makespan
        );
    }

    #[test]
    fn finer_wgrad_units_fill_gaps_better() {
        let sch = Mepipe::new().generate(&svpp_dims(4, 2, 8)).unwrap();
        let coarse = UniformSimCost {
            comm: 0.3,
            wgrad_units: 1,
            ..Default::default()
        };
        let fine = UniformSimCost {
            comm: 0.3,
            wgrad_units: 8,
            ..Default::default()
        };
        let conf = SimConfig {
            dynamic_wgrad: true,
            ..Default::default()
        };
        let rc = simulate(&sch, &coarse, &conf).unwrap();
        let rf = simulate(&sch, &fine, &conf).unwrap();
        assert!(
            rf.makespan <= rc.makespan + 1e-9,
            "fine {} vs coarse {}",
            rf.makespan,
            rc.makespan
        );
    }

    #[test]
    fn memory_limit_triggers_forced_drain_or_oom() {
        let sch = GPipe.generate(&Dims::new(4, 8)).unwrap();
        let cost = UniformSimCost::default();
        let conf = SimConfig {
            memory_limit_bytes: Some(4.0),
            ..Default::default()
        };
        let r = simulate(&sch, &cost, &conf).unwrap();
        // GPipe cannot shed activations; it must OOM at the cap.
        let (worker, bytes) = r.oom.expect("gpipe at cap 4 must OOM");
        assert_eq!(worker, 0);
        assert!(bytes > 4.0);
    }

    #[test]
    fn svpp_fits_where_dapple_ooms() {
        let p = 4;
        let n = 8;
        // Budget of 6 slice units at s=4: DAPPLE needs p whole units = 16.
        let limit = 6.0;
        let da = Dapple.generate(&Dims::new(p, n)).unwrap();
        let da_cost = UniformSimCost {
            act_bytes: 4.0,
            ..Default::default()
        };
        let conf = SimConfig {
            memory_limit_bytes: Some(limit),
            ..Default::default()
        };
        let rd = simulate(&da, &da_cost, &conf).unwrap();
        assert!(rd.oom.is_some());
        // The SVPP variant with warmup budget f = 6 fits the 6-unit cap
        // (Section 4.2's memory-for-bubbles trade).
        let sv = Svpp::new()
            .warmup_cap(6)
            .generate(&svpp_dims(p, 4, n))
            .unwrap();
        let sv_cost = UniformSimCost {
            act_bytes: 1.0,
            ..Default::default()
        };
        let rs = simulate(&sv, &sv_cost, &conf).unwrap();
        assert!(rs.oom.is_none(), "peaks: {:?}", rs.peak_activation_bytes);
    }

    #[test]
    fn link_occupancy_serialises_back_to_back_transfers() {
        // Two micro-batches on a 2-stage pipeline with transfers slower
        // than compute: the second forward's tensor must queue behind the
        // first on the boundary link.
        let sch = Dapple.generate(&Dims::new(2, 2)).unwrap();
        let slow = UniformSimCost {
            comm: 3.0,
            ..Default::default()
        };
        let r = simulate(&sch, &slow, &SimConfig::default()).unwrap();
        // Stage 0: F0@0-1, F1@1-2. Transfer of F0 occupies [1,4]; F1's
        // transfer queues [4,7], so stage 1 starts F1 no earlier than 7.
        let f1_start = r.segments[1]
            .iter()
            .find(|s| s.op.map(|o| o.micro_batch) == Some(1) && s.kind == SegmentKind::Forward)
            .map(|s| s.start)
            .expect("F1 on stage 1");
        assert!(
            f1_start >= 7.0 - 1e-9,
            "F1 started at {f1_start}, link not serialised"
        );
    }

    #[test]
    fn iteration_time_includes_sync_when_enabled() {
        struct Synced(UniformSimCost);
        impl SimCost for Synced {
            fn duration(&self, s: usize, o: mepipe_schedule::ir::Op) -> f64 {
                self.0.duration(s, o)
            }
            fn transfer_time(&self, a: usize, b: usize) -> f64 {
                self.0.transfer_time(a, b)
            }
            fn wgrad_time(&self, s: usize, o: mepipe_schedule::ir::Op) -> f64 {
                self.0.wgrad_time(s, o)
            }
            fn wgrad_units(&self) -> usize {
                self.0.wgrad_units()
            }
            fn activation_bytes(&self) -> f64 {
                self.0.activation_bytes()
            }
            fn deferred_bytes(&self) -> f64 {
                self.0.deferred_bytes()
            }
            fn dp_sync_time(&self) -> f64 {
                2.5
            }
            fn optimizer_time(&self) -> f64 {
                1.5
            }
        }
        let sch = Dapple.generate(&Dims::new(2, 2)).unwrap();
        let cost = Synced(UniformSimCost::default());
        let with = simulate(&sch, &cost, &SimConfig::default()).unwrap();
        let without = simulate(
            &sch,
            &cost,
            &SimConfig {
                include_dp_sync: false,
                include_optimizer: false,
                ..Default::default()
            },
        )
        .unwrap();
        assert!((with.iteration_time - without.iteration_time - 4.0).abs() < 1e-9);
        assert_eq!(with.makespan, without.makespan);
    }
}
