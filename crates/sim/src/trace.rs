//! Chrome-tracing export: view any simulated iteration in
//! `chrome://tracing` / Perfetto.
//!
//! Produces the Trace Event Format's JSON array of complete (`"X"`)
//! events — one per timeline segment, one track (`tid`) per pipeline
//! stage. Times are exported in microseconds as the format requires.

use mepipe_schedule::ir::Op;

use crate::timeline::{Segment, SegmentKind};

/// Serialises per-stage segments as a Chrome Trace Event Format JSON
/// string (a complete-events array).
pub fn to_chrome_trace(segments: &[Vec<Segment>]) -> String {
    let mut out = String::from("[");
    let mut first = true;
    for (stage, segs) in segments.iter().enumerate() {
        for s in segs {
            if !first {
                out.push(',');
            }
            first = false;
            let name = segment_name(s.kind, s.op);
            let cat = match s.kind {
                SegmentKind::Forward => "forward",
                SegmentKind::Backward | SegmentKind::BackwardInput => "backward",
                SegmentKind::BackwardWeight | SegmentKind::WgradDrain => "wgrad",
            };
            out.push_str(&format!(
                "{{\"name\":\"{name}\",\"cat\":\"{cat}\",\"ph\":\"X\",\"pid\":0,\"tid\":{stage},\"ts\":{:.3},\"dur\":{:.3}}}",
                s.start * 1e6,
                (s.end - s.start) * 1e6
            ));
        }
    }
    out.push(']');
    out
}

fn segment_name(kind: SegmentKind, op: Option<Op>) -> String {
    match op {
        Some(op) => format!(
            "{} mb{} sl{} ck{}",
            kind.letter(),
            op.micro_batch,
            op.slice,
            op.chunk
        ),
        None => "W drain".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{
        cost::UniformSimCost,
        engine::{simulate, SimConfig},
    };
    use mepipe_schedule::generator::{Dapple, Dims, ScheduleGenerator};

    #[test]
    fn trace_is_valid_json_with_one_event_per_segment() {
        let sch = Dapple.generate(&Dims::new(2, 2)).unwrap();
        let r = simulate(&sch, &UniformSimCost::default(), &SimConfig::default()).unwrap();
        let json = to_chrome_trace(&r.segments);
        let parsed: serde_json::Value = serde_json::from_str(&json).expect("valid JSON");
        let events = parsed.as_array().expect("array");
        let total: usize = r.segments.iter().map(Vec::len).sum();
        assert_eq!(events.len(), total);
        // Every event is a complete event with non-negative duration.
        for e in events {
            assert_eq!(e["ph"], "X");
            assert!(e["dur"].as_f64().unwrap() >= 0.0);
            assert!(e["tid"].as_u64().unwrap() < 2);
        }
    }

    #[test]
    fn empty_timeline_is_an_empty_array() {
        assert_eq!(to_chrome_trace(&[]), "[]");
    }
}
