//! Chrome-tracing export: view any simulated iteration in
//! `chrome://tracing` / Perfetto.
//!
//! Serialisation goes through the shared [`ChromeTraceWriter`] so
//! simulated timelines render identically to the runtime's measured
//! traces (`mepipe_trace::traces_to_chrome`) and the two can be loaded
//! side by side. Event names pass through JSON escaping, and each
//! data-parallel replica gets its own process track (`pid`), with one
//! thread track (`tid`) per pipeline stage.

use mepipe_schedule::ir::Op;
use mepipe_trace::ChromeTraceWriter;

use crate::timeline::{Segment, SegmentKind};

/// Serialises one replica's per-stage segments as a Chrome Trace Event
/// Format JSON string (all tracks under `pid` 0).
pub fn to_chrome_trace(segments: &[Vec<Segment>]) -> String {
    let mut w = ChromeTraceWriter::new();
    write_replica(&mut w, 0, segments);
    w.finish()
}

/// Serialises several data-parallel replicas' timelines, one process
/// track (`pid`) per replica.
pub fn replicas_to_chrome_trace(replicas: &[Vec<Vec<Segment>>]) -> String {
    let mut w = ChromeTraceWriter::new();
    for (pid, segments) in replicas.iter().enumerate() {
        write_replica(&mut w, pid as u64, segments);
    }
    w.finish()
}

fn write_replica(w: &mut ChromeTraceWriter, pid: u64, segments: &[Vec<Segment>]) {
    w.process_name(pid, &format!("replica {pid} (simulated)"));
    for (stage, segs) in segments.iter().enumerate() {
        w.thread_name(pid, stage as u64, &format!("stage {stage}"));
        for s in segs {
            let cat = match s.kind {
                SegmentKind::Forward => "forward",
                SegmentKind::Backward | SegmentKind::BackwardInput => "backward",
                SegmentKind::BackwardWeight | SegmentKind::WgradDrain => "wgrad",
            };
            w.complete(
                &segment_name(s.kind, s.op),
                cat,
                pid,
                stage as u64,
                s.start * 1e6,
                (s.end - s.start) * 1e6,
            );
        }
    }
}

fn segment_name(kind: SegmentKind, op: Option<Op>) -> String {
    match op {
        Some(op) => format!(
            "{} mb{} sl{} ck{}",
            kind.letter(),
            op.micro_batch,
            op.slice,
            op.chunk
        ),
        None => "W drain".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{
        cost::UniformSimCost,
        engine::{simulate, SimConfig},
    };
    use mepipe_schedule::generator::{Dapple, Dims, ScheduleGenerator};

    #[test]
    fn trace_is_valid_json_with_one_event_per_segment() {
        let sch = Dapple.generate(&Dims::new(2, 2)).unwrap();
        let r = simulate(&sch, &UniformSimCost::default(), &SimConfig::default()).unwrap();
        let json = to_chrome_trace(&r.segments);
        let parsed: serde_json::Value = serde_json::from_str(&json).expect("valid JSON");
        let events = parsed.as_array().expect("array");
        let total: usize = r.segments.iter().map(Vec::len).sum();
        let xs: Vec<_> = events
            .iter()
            .filter(|e| e["ph"].as_str() == Some("X"))
            .collect();
        assert_eq!(xs.len(), total);
        // Every complete event has a non-negative duration on a stage track.
        for e in xs {
            assert!(e["dur"].as_f64().unwrap() >= 0.0);
            assert!(e["tid"].as_u64().unwrap() < 2);
            assert_eq!(e["pid"].as_u64().unwrap(), 0);
        }
    }

    #[test]
    fn replicas_get_distinct_pids() {
        let sch = Dapple.generate(&Dims::new(2, 2)).unwrap();
        let r = simulate(&sch, &UniformSimCost::default(), &SimConfig::default()).unwrap();
        let json = replicas_to_chrome_trace(&[r.segments.clone(), r.segments.clone()]);
        let parsed: serde_json::Value = serde_json::from_str(&json).expect("valid JSON");
        let pids: std::collections::BTreeSet<u64> = parsed
            .as_array()
            .unwrap()
            .iter()
            .filter(|e| e["ph"].as_str() == Some("X"))
            .map(|e| e["pid"].as_u64().unwrap())
            .collect();
        assert_eq!(pids.into_iter().collect::<Vec<_>>(), vec![0, 1]);
    }

    #[test]
    fn empty_timeline_has_no_events_beyond_metadata() {
        let parsed: serde_json::Value = serde_json::from_str(&to_chrome_trace(&[])).unwrap();
        assert!(parsed
            .as_array()
            .unwrap()
            .iter()
            .all(|e| e["ph"].as_str() == Some("M")));
    }
}
