//! Measured-span → cost-model calibration, and the convergence report
//! that proves it worked.
//!
//! [`bubblecheck`](crate::bubblecheck) diffs a measured trace against the
//! model's prediction; this module *closes* that loop. It extracts
//! per-(op-kind, shape) samples from the measured spans
//! ([`extract_samples`]), fits the model's GEMM-efficiency curve and
//! pipeline-link alpha–beta through `mepipe_model::calibrate`
//! ([`fit_execution_cost`]), and accumulates one bubblecheck row per
//! calibration round into a [`ConvergenceReport`] whose mean relative
//! error must shrink as the fits take hold.
//!
//! Sample extraction expects split-backward traces (`F`/`b`/`W`/`w`
//! spans, the MEPipe execution mode); fused `B` spans mix input- and
//! weight-gradient work and are skipped.

use mepipe_model::calibrate::{fit_gemm_efficiency, fit_link, GemmSample, LinkSample};
use mepipe_model::cost::ExecutionCost;
use mepipe_trace::{IterationTrace, SpanKind};

use crate::bubblecheck::BubbleCheckReport;

/// Per-(op-kind, shape) samples extracted from measured traces, in the
/// regressor form `mepipe_model::calibrate` fits. Samples from several
/// rounds can be pooled with [`MeasuredSamples::merge`] — more data per
/// fit is the main reason later calibration rounds keep improving.
#[derive(Debug, Clone, Default)]
pub struct MeasuredSamples {
    /// GEMM-class samples: one per forward / input-gradient span, plus
    /// one aggregate per stage for the weight-gradient work.
    pub gemm: Vec<GemmSample>,
    /// Send-side traffic aggregates, one per directed link per trace.
    pub links: Vec<LinkSample>,
}

impl MeasuredSamples {
    /// Pools another round's samples into this set.
    pub fn merge(&mut self, other: &MeasuredSamples) {
        self.gemm.extend_from_slice(&other.gemm);
        self.links.extend_from_slice(&other.links);
    }

    /// Whether any compute sample was extracted (an empty set means the
    /// trace had no split-backward compute spans to fit from).
    pub fn is_empty(&self) -> bool {
        self.gemm.is_empty()
    }
}

/// Extracts fitting samples from one measured iteration.
///
/// `prior` supplies the regressor shapes — FLOPs, tokens, and kernel
/// counts per op — and the non-GEMM share subtracted from each measured
/// span so only the GEMM term is fitted. Only replica 0 is read (DP
/// replicas run the same schedule); spans whose non-GEMM share exceeds
/// the measurement are clamped to a small positive residual rather than
/// dropped, so a badly wrong prior still yields a full sample set.
pub fn extract_samples(trace: &IterationTrace, prior: &ExecutionCost) -> MeasuredSamples {
    let slices = prior.partition().seq.spp_slices();
    let mut out = MeasuredSamples::default();
    for st in trace.stages.iter().filter(|s| s.replica == 0) {
        let mut wgrad_s = 0.0f64;
        let mut bwd_ops = 0u64;
        let mut send_s: Vec<(u32, f64, u64)> = Vec::new(); // (peer, secs, msgs)
        for span in &st.spans {
            let secs = span.duration_ns() as f64 * 1e-9;
            match span.kind {
                SpanKind::Forward | SpanKind::BackwardInput => {
                    let sl = span.slice as usize;
                    if sl >= slices {
                        continue;
                    }
                    let ((flops, tokens, kernels), non_gemm) = if span.kind == SpanKind::Forward {
                        (
                            prior.forward_gemm_shape(sl),
                            prior.forward_non_gemm_time(sl),
                        )
                    } else {
                        bwd_ops += 1;
                        (
                            prior.backward_input_gemm_shape(sl),
                            prior.backward_input_non_gemm_time(sl),
                        )
                    };
                    out.gemm.push(GemmSample {
                        flops,
                        tokens,
                        kernels,
                        // Clamp: a grossly wrong prior must not zero out
                        // the sample.
                        seconds: (secs - non_gemm).max(secs * 0.01),
                    });
                }
                SpanKind::BackwardWeight | SpanKind::WgradDrain => wgrad_s += secs,
                SpanKind::Send => match send_s.iter_mut().find(|(p, _, _)| *p == span.peer) {
                    Some((_, s, n)) => {
                        *s += secs;
                        *n += 1;
                    }
                    None => send_s.push((span.peer, secs, 1)),
                },
                // Fused backwards mix W into b; recv waits measure the
                // peer, not this stage.
                SpanKind::Backward | SpanKind::RecvWait => {}
            }
        }
        // Weight-gradient GEMMs drain in fragments ('w' spans) whose
        // boundaries are scheduling accidents; only the per-stage total
        // over the input-gradient op count is meaningful.
        if bwd_ops > 0 && wgrad_s > 0.0 {
            let (flops, tokens, kernels) = prior.wgrad_gemm_shape();
            out.gemm.push(GemmSample {
                flops: flops * bwd_ops as f64,
                tokens,
                kernels: kernels * bwd_ops as usize,
                seconds: wgrad_s,
            });
        }
        for (_, secs, msgs) in send_s {
            out.links.push(LinkSample {
                messages: msgs as f64,
                bytes: msgs as f64 * prior.boundary_bytes() as f64,
                seconds: secs,
            });
        }
    }
    out
}

/// Fits a calibrated [`ExecutionCost`]: the prior with its
/// GEMM-efficiency curve and pipeline link replaced by least-squares
/// fits over `samples`. With no usable samples the prior is returned
/// unchanged (the fit helpers each keep their prior on degenerate
/// input).
pub fn fit_execution_cost(prior: &ExecutionCost, samples: &MeasuredSamples) -> ExecutionCost {
    let eff = fit_gemm_efficiency(
        &samples.gemm,
        prior.peak_matmul_flops(),
        prior.gemm_efficiency(),
    );
    let link = fit_link(&samples.links, prior.pp_link());
    prior.clone().with_gemm_efficiency(eff).with_pp_link(link)
}

/// One calibration round's modeled-vs-measured fit quality.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CalibrationRound {
    /// Round index (0 = uncalibrated model).
    pub round: usize,
    /// [`BubbleCheckReport::mean_relative_error`] of the model in force
    /// *before* this round's refit, against this round's measurement.
    pub mean_rel_error: f64,
    /// [`BubbleCheckReport::max_misfit`] of the same comparison.
    pub max_misfit: f64,
    /// Measured makespan, seconds.
    pub measured_makespan_s: f64,
    /// Modeled makespan, seconds.
    pub modeled_makespan_s: f64,
}

/// The calibration loop's round-by-round error trajectory.
///
/// Each round records the fit of the model *entering* the round (round 0
/// = the uncalibrated datasheet constants), so the trajectory shows
/// measured spans driving the model toward the hardware:
/// [`ConvergenceReport::is_strictly_decreasing`] is the loop's
/// acceptance criterion.
#[derive(Debug, Clone, Default)]
pub struct ConvergenceReport {
    /// One entry per calibration round, in order.
    pub rounds: Vec<CalibrationRound>,
}

impl ConvergenceReport {
    /// Appends one round from its bubblecheck comparison.
    pub fn push_round(&mut self, check: &BubbleCheckReport) {
        self.rounds.push(CalibrationRound {
            round: self.rounds.len(),
            mean_rel_error: check.mean_relative_error(),
            max_misfit: check.max_misfit(),
            measured_makespan_s: check.measured_makespan_s,
            modeled_makespan_s: check.modeled_makespan_s,
        });
    }

    /// Whether the mean relative error strictly decreased every round.
    /// Vacuously true with fewer than two rounds; false if any round's
    /// error is `NaN`.
    pub fn is_strictly_decreasing(&self) -> bool {
        self.rounds.iter().all(|r| r.mean_rel_error.is_finite())
            && self
                .rounds
                .windows(2)
                .all(|w| w[1].mean_rel_error < w[0].mean_rel_error)
    }

    /// Plain-text trajectory for logs and EXPERIMENTS.md-style reports.
    pub fn render(&self) -> String {
        let mut out = String::from("calibration convergence:\n");
        for r in &self.rounds {
            out.push_str(&format!(
                "  round {}: mean rel error {:.4}, max misfit {:.4}, \
                 makespan measured {:.3} ms vs modeled {:.3} ms\n",
                r.round,
                r.mean_rel_error,
                r.max_misfit,
                r.measured_makespan_s * 1e3,
                r.modeled_makespan_s * 1e3,
            ));
        }
        out.push_str(&format!(
            "  monotone decrease: {}\n",
            if self.is_strictly_decreasing() {
                "yes"
            } else {
                "NO"
            }
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::ModelCost;
    use crate::engine::{simulate, SimConfig, SimResult};
    use mepipe_core::svpp::Mepipe;
    use mepipe_hw::{accelerator::AcceleratorSpec, link::LinkSpec, topology::ClusterSpec};
    use mepipe_model::{
        config::TransformerConfig,
        gemm::GemmEfficiency,
        partition::{PartitionSpec, SequenceSplit},
    };
    use mepipe_schedule::generator::{Dims, ScheduleGenerator};
    use mepipe_trace::{Span, StageTrace, NO_TAG};

    fn tiny_cost() -> ExecutionCost {
        let cfg = TransformerConfig {
            seq_len: 64,
            ..TransformerConfig::tiny(4)
        };
        let spec = PartitionSpec {
            pp: 2,
            vp: 1,
            dp: 1,
            seq: SequenceSplit::SlicePipeline { slices: 4 },
            recompute: false,
            micro_batch_size: 1,
            global_batch: 4,
        };
        let cluster = ClusterSpec {
            nodes: 1,
            gpus_per_node: 2,
            accelerator: AcceleratorSpec::rtx4090(),
            intra_node: LinkSpec::pcie4(),
            inter_node: LinkSpec::ib_100g(),
        };
        ExecutionCost::new(cfg, spec, &cluster).unwrap()
    }

    fn span_kind(kind: crate::timeline::SegmentKind) -> SpanKind {
        use crate::timeline::SegmentKind;
        match kind {
            SegmentKind::Forward => SpanKind::Forward,
            SegmentKind::Backward => SpanKind::Backward,
            SegmentKind::BackwardInput => SpanKind::BackwardInput,
            SegmentKind::BackwardWeight => SpanKind::BackwardWeight,
            SegmentKind::WgradDrain => SpanKind::WgradDrain,
        }
    }

    /// A "measured" trace fabricated from a ground-truth simulation, so
    /// the fit target is known exactly.
    fn trace_from_sim(sim: &SimResult) -> IterationTrace {
        IterationTrace {
            stages: sim
                .segments
                .iter()
                .enumerate()
                .map(|(stage, segs)| StageTrace {
                    stage,
                    replica: 0,
                    epoch_ns: 0,
                    spans: segs
                        .iter()
                        .map(|s| Span {
                            kind: span_kind(s.kind),
                            mb: s.op.map_or(NO_TAG, |o| o.micro_batch as u32),
                            slice: s.op.map_or(NO_TAG, |o| o.slice as u32),
                            chunk: s.op.map_or(NO_TAG, |o| o.chunk as u32),
                            peer: NO_TAG,
                            start_ns: (s.start * 1e9).round() as u64,
                            end_ns: (s.end * 1e9).round() as u64,
                        })
                        .collect(),
                    dropped: 0,
                })
                .collect(),
        }
    }

    fn sim_cfg() -> SimConfig {
        SimConfig {
            dynamic_wgrad: true,
            include_dp_sync: false,
            include_optimizer: false,
            ..Default::default()
        }
    }

    #[test]
    fn fitting_recovers_a_perturbed_truth() {
        // Ground truth: the tiny model with a 3x slower GEMM curve and
        // 10x launch overhead. Calibration starting from the default
        // constants must close most of the gap from one trace.
        let prior = tiny_cost();
        let truth = prior.clone().with_gemm_efficiency(GemmEfficiency {
            max_efficiency: prior.gemm_efficiency().max_efficiency / 3.0,
            half_saturation_tokens: prior.gemm_efficiency().half_saturation_tokens,
            launch_overhead: prior.gemm_efficiency().launch_overhead * 10.0,
        });
        let sch = Mepipe::new().generate(&Dims::new(2, 4).slices(4)).unwrap();
        let truth_sim = simulate(&sch, &ModelCost::new(truth.clone()), &sim_cfg()).unwrap();
        let trace = trace_from_sim(&truth_sim);

        let samples = extract_samples(&trace, &prior);
        assert!(!samples.is_empty());
        let fitted = fit_execution_cost(&prior, &samples);

        let err = |cost: &ExecutionCost| {
            let sim = simulate(&sch, &ModelCost::new(cost.clone()), &sim_cfg()).unwrap();
            BubbleCheckReport::from_run(&trace, &sim).mean_relative_error()
        };
        let before = err(&prior);
        let after = err(&fitted);
        assert!(
            after < before * 0.2,
            "calibration barely helped: {before:.4} -> {after:.4}"
        );
        assert!(after < 0.15, "fitted error still large: {after:.4}");
    }

    #[test]
    fn convergence_report_tracks_rounds() {
        let prior = tiny_cost();
        let truth = prior.clone().with_gemm_efficiency(GemmEfficiency {
            max_efficiency: prior.gemm_efficiency().max_efficiency / 4.0,
            half_saturation_tokens: prior.gemm_efficiency().half_saturation_tokens,
            launch_overhead: prior.gemm_efficiency().launch_overhead,
        });
        let sch = Mepipe::new().generate(&Dims::new(2, 4).slices(4)).unwrap();
        let truth_sim = simulate(&sch, &ModelCost::new(truth.clone()), &sim_cfg()).unwrap();
        let trace = trace_from_sim(&truth_sim);

        let mut report = ConvergenceReport::default();
        let mut current = prior.clone();
        let mut pooled = MeasuredSamples::default();
        for _ in 0..3 {
            let sim = simulate(&sch, &ModelCost::new(current.clone()), &sim_cfg()).unwrap();
            report.push_round(&BubbleCheckReport::from_run(&trace, &sim));
            pooled.merge(&extract_samples(&trace, &current));
            current = fit_execution_cost(&current, &pooled);
        }
        assert_eq!(report.rounds.len(), 3);
        assert!(
            report.rounds[1].mean_rel_error < report.rounds[0].mean_rel_error,
            "{}",
            report.render()
        );
        assert!(report.render().contains("round 0"));
    }

    #[test]
    fn empty_trace_keeps_the_prior() {
        let prior = tiny_cost();
        let samples = extract_samples(&IterationTrace::default(), &prior);
        assert!(samples.is_empty());
        let fitted = fit_execution_cost(&prior, &samples);
        assert_eq!(fitted.gemm_efficiency(), prior.gemm_efficiency());
        assert_eq!(fitted.pp_link(), prior.pp_link());
    }

    #[test]
    fn degenerate_report_is_not_decreasing() {
        let mut r = ConvergenceReport::default();
        assert!(r.is_strictly_decreasing()); // vacuous
        r.rounds.push(CalibrationRound {
            round: 0,
            mean_rel_error: 0.5,
            max_misfit: 0.0,
            measured_makespan_s: 0.0,
            modeled_makespan_s: 0.0,
        });
        r.rounds.push(CalibrationRound {
            round: 1,
            mean_rel_error: 0.5,
            max_misfit: 0.0,
            measured_makespan_s: 0.0,
            modeled_makespan_s: 0.0,
        });
        assert!(!r.is_strictly_decreasing());
        assert!(r.render().contains("NO"));
    }
}
