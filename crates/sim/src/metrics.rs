//! Derived performance metrics: throughput, MFU, cost-effectiveness.

use mepipe_model::cost::ExecutionCost;

use crate::engine::SimResult;

/// Achieved model FLOPs per second per worker for a simulated iteration.
pub fn achieved_flops_per_worker(result: &SimResult, cost: &ExecutionCost) -> f64 {
    if result.iteration_time <= 0.0 {
        return 0.0;
    }
    cost.worker_model_flops_per_iteration() / result.iteration_time
}

/// Model FLOPS Utilisation: achieved model FLOPs over the accelerator's
/// datasheet peak, exactly as the paper reports it (Section 7.6 quotes
/// 35% MFU / 116 TFLOPS for Llama-13B on the RTX 4090 cluster).
pub fn mfu(result: &SimResult, cost: &ExecutionCost) -> f64 {
    achieved_flops_per_worker(result, cost) / cost.marketing_flops()
}

/// Tokens per second across the whole cluster.
pub fn tokens_per_second(result: &SimResult, cost: &ExecutionCost) -> f64 {
    if result.iteration_time <= 0.0 {
        return 0.0;
    }
    let tokens = (cost.partition().global_batch * cost.config().seq_len) as f64;
    tokens / result.iteration_time
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{
        cost::ModelCost,
        engine::{simulate, SimConfig},
    };
    use mepipe_core::svpp::Mepipe;
    use mepipe_hw::topology::ClusterSpec;
    use mepipe_model::{
        config::TransformerConfig,
        partition::{PartitionSpec, SequenceSplit},
    };
    use mepipe_schedule::generator::{Dims, ScheduleGenerator};

    #[test]
    fn mepipe_13b_lands_near_paper_mfu() {
        // Llama-13B, GBS 128, the paper's optimal MEPipe config
        // (PP 8, SPP 4, VP 1, dp 8): Table 9 reports 5852 ms and 116
        // TFLOPS (35% MFU). The simulator should land in the same region.
        let cfg = TransformerConfig::llama2_13b();
        let spec = PartitionSpec {
            pp: 8,
            vp: 1,
            dp: 8,
            seq: SequenceSplit::SlicePipeline { slices: 4 },
            recompute: false,
            micro_batch_size: 1,
            global_batch: 128,
        };
        let ec = mepipe_model::cost::ExecutionCost::new(cfg, spec, &ClusterSpec::rtx4090_cluster())
            .unwrap();
        let sch = Mepipe::new().generate(&Dims::new(8, 16).slices(4)).unwrap();
        let mc = ModelCost::new(ec);
        let r = simulate(
            &sch,
            &mc,
            &SimConfig {
                dynamic_wgrad: true,
                ..Default::default()
            },
        )
        .unwrap();
        let m = mfu(&r, mc.execution_cost());
        assert!(
            (0.25..0.45).contains(&m),
            "MFU {m} (iteration {} s) outside the paper's region",
            r.iteration_time
        );
        assert!(
            (3.0..9.0).contains(&r.iteration_time),
            "iteration time {} s implausible vs paper's 5.85 s",
            r.iteration_time
        );
    }

    #[test]
    fn tokens_per_second_consistent() {
        let cfg = TransformerConfig::llama2_13b();
        let spec = PartitionSpec {
            pp: 8,
            vp: 1,
            dp: 8,
            seq: SequenceSplit::SlicePipeline { slices: 4 },
            recompute: false,
            micro_batch_size: 1,
            global_batch: 128,
        };
        let ec = mepipe_model::cost::ExecutionCost::new(cfg, spec, &ClusterSpec::rtx4090_cluster())
            .unwrap();
        let sch = Mepipe::new().generate(&Dims::new(8, 16).slices(4)).unwrap();
        let mc = ModelCost::new(ec);
        let r = simulate(&sch, &mc, &SimConfig::default()).unwrap();
        let tps = tokens_per_second(&r, mc.execution_cost());
        let expected = 128.0 * 4096.0 / r.iteration_time;
        assert!((tps - expected).abs() < 1e-6);
    }
}
