//! Cost-model interface for the simulator and its two implementations.

use mepipe_model::cost::ExecutionCost;
use mepipe_schedule::ir::{Op, OpKind};

/// Everything the engine needs to price one schedule execution.
pub trait SimCost {
    /// Duration of a forward / input-gradient / fused-backward op. Weight
    /// ops are priced via [`SimCost::wgrad_time`].
    fn duration(&self, stage: usize, op: Op) -> f64;

    /// Inter-stage transfer time for one unit's boundary tensor.
    fn transfer_time(&self, from_stage: usize, to_stage: usize) -> f64;

    /// Total duration of one unit's weight-gradient work.
    fn wgrad_time(&self, stage: usize, op: Op) -> f64;

    /// Number of individually schedulable GEMMs inside one weight op.
    fn wgrad_units(&self) -> usize;

    /// Activation bytes retained per in-flight forward unit.
    fn activation_bytes(&self) -> f64;

    /// Extra bytes retained per unit whose weight work is deferred.
    fn deferred_bytes(&self) -> f64;

    /// End-of-iteration data-parallel synchronisation time.
    fn dp_sync_time(&self) -> f64 {
        0.0
    }

    /// End-of-iteration optimizer step time.
    fn optimizer_time(&self) -> f64 {
        0.0
    }
}

/// Uniform costs for unit tests and analytic cross-checks.
#[derive(Debug, Clone, Copy)]
pub struct UniformSimCost {
    /// Forward duration.
    pub fwd: f64,
    /// Input-gradient (or fused-backward) duration.
    pub bwd: f64,
    /// Weight-gradient duration (whole op).
    pub wgrad: f64,
    /// Transfer time per hop.
    pub comm: f64,
    /// GEMMs per weight op.
    pub wgrad_units: usize,
    /// Bytes per in-flight forward unit.
    pub act_bytes: f64,
}

impl Default for UniformSimCost {
    fn default() -> Self {
        Self {
            fwd: 1.0,
            bwd: 1.0,
            wgrad: 1.0,
            comm: 0.0,
            wgrad_units: 1,
            act_bytes: 1.0,
        }
    }
}

impl SimCost for UniformSimCost {
    fn duration(&self, _stage: usize, op: Op) -> f64 {
        match op.kind {
            OpKind::Forward => self.fwd,
            OpKind::BackwardInput => self.bwd,
            OpKind::Backward => self.bwd + self.wgrad,
            OpKind::BackwardWeight => self.wgrad,
        }
    }

    fn transfer_time(&self, _from: usize, _to: usize) -> f64 {
        self.comm
    }

    fn wgrad_time(&self, _stage: usize, _op: Op) -> f64 {
        self.wgrad
    }

    fn wgrad_units(&self) -> usize {
        self.wgrad_units
    }

    fn activation_bytes(&self) -> f64 {
        self.act_bytes
    }

    fn deferred_bytes(&self) -> f64 {
        self.act_bytes * 0.5
    }
}

/// The production cost model: adapts [`ExecutionCost`] (model × partition ×
/// cluster) to the simulator interface.
#[derive(Debug, Clone)]
pub struct ModelCost {
    inner: ExecutionCost,
    coarse_wgrad: bool,
}

impl ModelCost {
    /// Wraps an execution-cost model with MEPipe's per-GEMM weight
    /// granularity.
    pub fn new(inner: ExecutionCost) -> Self {
        Self {
            inner,
            coarse_wgrad: false,
        }
    }

    /// Wraps with zero-bubble's whole-op weight granularity (the paper's
    /// ZB/ZBV baselines defer W per backward pass, not per GEMM).
    pub fn new_coarse(inner: ExecutionCost) -> Self {
        Self {
            inner,
            coarse_wgrad: true,
        }
    }

    /// Access to the wrapped model.
    pub fn execution_cost(&self) -> &ExecutionCost {
        &self.inner
    }

    /// Content fingerprint of every price the simulator can observe.
    ///
    /// Two `ModelCost`s with equal fingerprints drive the engine to
    /// bit-identical results on the same schedule: the hash folds in the
    /// exact bit patterns of all per-slice forward/backward durations,
    /// weight-gradient pricing and granularity, transfer, sync and
    /// optimizer times, and the per-unit memory charges. The search
    /// engine keys its memoized evaluations on this value, so distinct
    /// (model, partition, cluster) triples that price identically share
    /// one simulation.
    pub fn fingerprint(&self) -> u64 {
        // FNV-1a over the raw bit patterns; stable across runs.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut fold = |bits: u64| {
            for byte in bits.to_le_bytes() {
                h ^= byte as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
        };
        let s = self.inner.partition().seq.spp_slices();
        fold(s as u64);
        for i in 0..s {
            fold(self.inner.forward_time(i).to_bits());
            fold(self.inner.backward_input_time(i).to_bits());
        }
        fold(self.inner.wgrad_time().to_bits());
        fold(self.wgrad_units() as u64);
        fold(self.inner.pp_transfer_time().to_bits());
        fold(self.inner.dp_sync_time().to_bits());
        fold(self.inner.optimizer_time().to_bits());
        fold(self.activation_bytes().to_bits());
        fold(self.deferred_bytes().to_bits());
        fold(self.inner.worker_model_flops_per_iteration().to_bits());
        fold(self.inner.marketing_flops().to_bits());
        fold(self.coarse_wgrad as u64);
        h
    }
}

impl SimCost for ModelCost {
    fn duration(&self, _stage: usize, op: Op) -> f64 {
        match op.kind {
            OpKind::Forward => self.inner.forward_time(op.slice),
            OpKind::BackwardInput => self.inner.backward_input_time(op.slice),
            OpKind::Backward => self.inner.full_backward_time(op.slice),
            OpKind::BackwardWeight => self.inner.wgrad_time(),
        }
    }

    fn transfer_time(&self, _from: usize, _to: usize) -> f64 {
        self.inner.pp_transfer_time()
    }

    fn wgrad_time(&self, _stage: usize, _op: Op) -> f64 {
        self.inner.wgrad_time()
    }

    fn wgrad_units(&self) -> usize {
        if self.coarse_wgrad {
            1
        } else {
            self.inner.wgrad_units()
        }
    }

    fn activation_bytes(&self) -> f64 {
        self.inner.activation_bytes_per_unit()
    }

    fn deferred_bytes(&self) -> f64 {
        self.inner.deferred_wgrad_bytes_per_unit()
    }

    fn dp_sync_time(&self) -> f64 {
        self.inner.dp_sync_time()
    }

    fn optimizer_time(&self) -> f64 {
        self.inner.optimizer_time()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mepipe_hw::topology::ClusterSpec;
    use mepipe_model::{
        config::TransformerConfig,
        partition::{PartitionSpec, SequenceSplit},
    };

    #[test]
    fn model_cost_round_trips_execution_cost() {
        let cfg = TransformerConfig::llama2_13b();
        let spec = PartitionSpec {
            pp: 8,
            vp: 1,
            dp: 8,
            seq: SequenceSplit::SlicePipeline { slices: 4 },
            recompute: false,
            micro_batch_size: 1,
            global_batch: 128,
        };
        let ec = ExecutionCost::new(cfg, spec, &ClusterSpec::rtx4090_cluster()).unwrap();
        let mc = ModelCost::new(ec);
        let f = Op::new(OpKind::Forward, 0, 0, 0);
        let b = Op::new(OpKind::BackwardInput, 0, 0, 0);
        assert!(mc.duration(0, f) > 0.0);
        assert!(mc.duration(0, b) > mc.duration(0, f) * 0.5);
        assert!(mc.transfer_time(0, 1) > 0.0);
        assert_eq!(mc.wgrad_units(), 35);
        assert!(mc.dp_sync_time() > 0.0);
    }

    #[test]
    fn fingerprint_separates_pricing_changes() {
        let cfg = TransformerConfig::llama2_13b();
        let spec = PartitionSpec {
            pp: 8,
            vp: 1,
            dp: 8,
            seq: SequenceSplit::SlicePipeline { slices: 4 },
            recompute: false,
            micro_batch_size: 1,
            global_batch: 128,
        };
        let cluster = ClusterSpec::rtx4090_cluster();
        let base = ModelCost::new(ExecutionCost::new(cfg, spec, &cluster).unwrap());
        // Identical inputs → identical fingerprints.
        let again = ModelCost::new(ExecutionCost::new(cfg, spec, &cluster).unwrap());
        assert_eq!(base.fingerprint(), again.fingerprint());
        // Weight-gradient granularity is priced in.
        let coarse = ModelCost::new_coarse(ExecutionCost::new(cfg, spec, &cluster).unwrap());
        assert_ne!(base.fingerprint(), coarse.fingerprint());
        // Any pricing change (here: recomputation, a different cluster,
        // a different batch) must move the fingerprint.
        for other in [
            PartitionSpec {
                recompute: true,
                ..spec
            },
            PartitionSpec {
                global_batch: 64,
                ..spec
            },
            PartitionSpec {
                dp: 16,
                pp: 4,
                ..spec
            },
        ] {
            let m = ModelCost::new(ExecutionCost::new(cfg, other, &cluster).unwrap());
            assert_ne!(base.fingerprint(), m.fingerprint(), "{other:?}");
        }
        // The accelerator's pricing is folded in too (A100 cluster has 32
        // devices, so its 8-stage partition runs dp 4).
        let half = PartitionSpec { dp: 4, ..spec };
        let a100 =
            ModelCost::new(ExecutionCost::new(cfg, half, &ClusterSpec::a100_cluster()).unwrap());
        assert_ne!(base.fingerprint(), a100.fingerprint());
    }

    #[test]
    fn uniform_cost_fused_backward_includes_weight() {
        let c = UniformSimCost {
            bwd: 2.0,
            wgrad: 1.5,
            ..Default::default()
        };
        let fused = Op::new(OpKind::Backward, 0, 0, 0);
        assert_eq!(c.duration(0, fused), 3.5);
    }
}
