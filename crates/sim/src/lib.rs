//! Discrete-event simulator for pipeline-parallel training iterations.
//!
//! The simulator executes a [`mepipe_schedule::ir::Schedule`] under a
//! pluggable cost model ([`cost::SimCost`]) and produces a full timeline,
//! iteration time, bubble ratio, peak activation memory and communication
//! statistics. It layers the behaviours the static list executor cannot
//! express:
//!
//! * **dynamic weight-gradient draining** (Section 5) — weight-gradient
//!   GEMMs queue at input-gradient completion and fill the gaps where a
//!   worker waits on inter-stage transfers, at per-GEMM granularity for
//!   MEPipe and per-op granularity for zero-bubble baselines;
//! * **memory tracking with a device cap** — activations are charged at
//!   forward start and released at (fused) backward or weight-gradient
//!   completion; deferred weight work retains activations *and* activation
//!   gradients; exceeding the cap first forces a drain, then reports OOM;
//! * **inter-stage transfer pricing** from the cluster's links.
#![warn(missing_docs)]

pub mod bubblecheck;
pub mod calibrate;
pub mod commcheck;
pub mod cost;
pub mod engine;
pub mod memcheck;
pub mod metrics;
pub mod timeline;
pub mod trace;

pub use bubblecheck::BubbleCheckReport;
pub use calibrate::{extract_samples, fit_execution_cost, ConvergenceReport, MeasuredSamples};
pub use commcheck::{CommCheckReport, LinkCheck};
pub use cost::{ModelCost, SimCost, UniformSimCost};
pub use engine::{simulate, SimConfig, SimResult, SimSummary};
pub use memcheck::{MemCheckReport, StageMemCheck};
pub use timeline::{Segment, SegmentKind};
pub use trace::{replicas_to_chrome_trace, to_chrome_trace};
