//! Measured-vs-simulated timeline validation.
//!
//! [`commcheck`](crate::commcheck) closes the loop on transfer times;
//! this module closes it on whole timelines. Given a measured
//! [`IterationTrace`] from the real runtime and the [`SimResult`] the
//! simulator predicted for the same schedule, it lines the two up per
//! `(stage, op kind)` — forward, backward, weight-gradient, drain — and
//! reports measured/modeled time ratios, per-stage busy/idle deltas, and
//! the makespan gap. A per-kind ratio far from 1 localises cost-model
//! error to one op class on one stage; a good per-kind fit with a bad
//! makespan fit points at scheduling or communication instead — exactly
//! the split the paper's profile-predict-execute loop needs.

use mepipe_trace::{bubble, IterationTrace};

use crate::engine::SimResult;
use crate::timeline::SegmentKind;

/// Measured vs modeled time for one op kind on one stage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpKindCheck {
    /// Pipeline stage.
    pub stage: usize,
    /// Op-kind letter (`F`/`B`/`b`/`W`/`w`, as in timeline strips).
    pub letter: char,
    /// Measured spans of this kind.
    pub measured_count: u64,
    /// Simulated segments of this kind.
    pub modeled_count: u64,
    /// Total measured seconds.
    pub measured_s: f64,
    /// Total simulated seconds.
    pub modeled_s: f64,
}

impl OpKindCheck {
    /// measured / modeled; `NaN` when the model predicts zero time.
    pub fn ratio(&self) -> f64 {
        self.measured_s / self.modeled_s
    }
}

/// Per-stage busy/idle comparison over the two makespans.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageCheck {
    /// Pipeline stage.
    pub stage: usize,
    /// Measured compute seconds (from the trace's spans).
    pub measured_busy_s: f64,
    /// Simulated compute seconds.
    pub modeled_busy_s: f64,
    /// Measured idle seconds over the measured window.
    pub measured_idle_s: f64,
    /// Simulated idle seconds over the simulated makespan.
    pub modeled_idle_s: f64,
}

/// Whole-iteration measured-vs-simulated comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct BubbleCheckReport {
    /// One row per `(stage, op kind)` with time on either side.
    pub ops: Vec<OpKindCheck>,
    /// One row per stage present in both trace and simulation.
    pub stages: Vec<StageCheck>,
    /// Measured analysis window (first to last compute), seconds.
    pub measured_makespan_s: f64,
    /// Simulated makespan, seconds.
    pub modeled_makespan_s: f64,
    /// Measured mean idle fraction (from bubble attribution).
    pub measured_bubble_ratio: f64,
    /// Simulated mean idle fraction.
    pub modeled_bubble_ratio: f64,
}

fn letter_of(kind: SegmentKind) -> char {
    kind.letter()
}

impl BubbleCheckReport {
    /// Lines up a measured trace with the simulation of the same
    /// schedule. Only replica 0 of the trace is compared — data-parallel
    /// replicas run the same schedule, and the simulator models one.
    pub fn from_run(trace: &IterationTrace, sim: &SimResult) -> Self {
        let report = bubble::attribute(trace);
        // Accumulate (stage, letter) -> (count, seconds) on both sides.
        let mut acc: Vec<(usize, char, [f64; 2], [u64; 2])> = Vec::new();
        let mut add = |stage: usize, letter: char, side: usize, secs: f64| match acc
            .iter_mut()
            .find(|(s, l, _, _)| *s == stage && *l == letter)
        {
            Some((_, _, t, n)) => {
                t[side] += secs;
                n[side] += 1;
            }
            None => {
                let mut t = [0.0; 2];
                let mut n = [0u64; 2];
                t[side] = secs;
                n[side] = 1;
                acc.push((stage, letter, t, n));
            }
        };
        for st in trace.stages.iter().filter(|s| s.replica == 0) {
            for s in st.spans.iter().filter(|s| s.kind.is_compute()) {
                add(st.stage, s.kind.letter(), 0, s.duration_ns() as f64 * 1e-9);
            }
        }
        for (stage, segs) in sim.segments.iter().enumerate() {
            for s in segs {
                add(stage, letter_of(s.kind), 1, s.duration());
            }
        }
        acc.sort_by_key(|(stage, letter, _, _)| (*stage, *letter));
        let ops = acc
            .into_iter()
            .map(|(stage, letter, t, n)| OpKindCheck {
                stage,
                letter,
                measured_count: n[0],
                modeled_count: n[1],
                measured_s: t[0],
                modeled_s: t[1],
            })
            .collect();
        let stages = report
            .stages
            .iter()
            .filter(|b| b.replica == 0 && b.stage < sim.busy.len())
            .map(|b| StageCheck {
                stage: b.stage,
                measured_busy_s: b.busy_s,
                modeled_busy_s: sim.busy[b.stage],
                measured_idle_s: b.idle.total(),
                modeled_idle_s: (sim.makespan - sim.busy[b.stage]).max(0.0),
            })
            .collect();
        BubbleCheckReport {
            ops,
            stages,
            measured_makespan_s: report.makespan_s,
            modeled_makespan_s: sim.makespan,
            measured_bubble_ratio: report.bubble_ratio(),
            modeled_bubble_ratio: sim.bubble_ratio(),
        }
    }

    /// Aggregate measured/modeled compute-time ratio.
    pub fn ratio(&self) -> f64 {
        let m: f64 = self.ops.iter().map(|o| o.measured_s).sum();
        let p: f64 = self.ops.iter().map(|o| o.modeled_s).sum();
        m / p
    }

    /// Mean over `(stage, op kind)` rows of
    /// `|measured − modeled| / measured`, skipping rows with no measured
    /// time. This is the calibration loop's convergence metric: fitting
    /// the cost model from the measured spans drives it toward zero, and
    /// the autotune smoke asserts it shrinks monotonically across
    /// calibration rounds. `NaN` when no row has measured time.
    pub fn mean_relative_error(&self) -> f64 {
        let mut sum = 0.0;
        let mut n = 0usize;
        for o in self.ops.iter().filter(|o| o.measured_s > 0.0) {
            sum += (o.measured_s - o.modeled_s).abs() / o.measured_s;
            n += 1;
        }
        if n == 0 {
            f64::NAN
        } else {
            sum / n as f64
        }
    }

    /// Worst per-row |log ratio| distance from a perfect fit, over rows
    /// with time on both sides. 0 means every op class matched exactly.
    pub fn max_misfit(&self) -> f64 {
        self.ops
            .iter()
            .filter(|o| o.measured_s > 0.0 && o.modeled_s > 0.0)
            .map(|o| o.ratio().ln().abs())
            .fold(0.0, f64::max)
    }

    /// Plain-text table for logs and EXPERIMENTS.md-style reports.
    pub fn render(&self) -> String {
        let mut out = format!(
            "bubblecheck: makespan measured {:.3} ms vs modeled {:.3} ms; \
             idle measured {:.1}% vs modeled {:.1}%\n",
            self.measured_makespan_s * 1e3,
            self.modeled_makespan_s * 1e3,
            self.measured_bubble_ratio * 100.0,
            self.modeled_bubble_ratio * 100.0
        );
        for o in &self.ops {
            out.push_str(&format!(
                "  stage {} {}: {} measured / {} modeled ops, {:.3} ms vs {:.3} ms ({:.2}x)\n",
                o.stage,
                o.letter,
                o.measured_count,
                o.modeled_count,
                o.measured_s * 1e3,
                o.modeled_s * 1e3,
                o.ratio()
            ));
        }
        for s in &self.stages {
            out.push_str(&format!(
                "  stage {} busy {:.3} ms vs {:.3} ms, idle {:.3} ms vs {:.3} ms\n",
                s.stage,
                s.measured_busy_s * 1e3,
                s.modeled_busy_s * 1e3,
                s.measured_idle_s * 1e3,
                s.modeled_idle_s * 1e3
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{
        cost::UniformSimCost,
        engine::{simulate, SimConfig},
    };
    use mepipe_core::svpp::Mepipe;
    use mepipe_schedule::generator::{Dims, ScheduleGenerator};
    use mepipe_trace::{Span, SpanKind, StageTrace, NO_TAG};

    fn span_kind(kind: SegmentKind) -> SpanKind {
        match kind {
            SegmentKind::Forward => SpanKind::Forward,
            SegmentKind::Backward => SpanKind::Backward,
            SegmentKind::BackwardInput => SpanKind::BackwardInput,
            SegmentKind::BackwardWeight => SpanKind::BackwardWeight,
            SegmentKind::WgradDrain => SpanKind::WgradDrain,
        }
    }

    /// A measured trace fabricated from the simulator's own segments:
    /// the comparison against it must fit perfectly.
    fn trace_from_sim(sim: &crate::engine::SimResult) -> IterationTrace {
        IterationTrace {
            stages: sim
                .segments
                .iter()
                .enumerate()
                .map(|(stage, segs)| StageTrace {
                    stage,
                    replica: 0,
                    epoch_ns: 0,
                    spans: segs
                        .iter()
                        .map(|s| Span {
                            kind: span_kind(s.kind),
                            mb: s.op.map_or(NO_TAG, |o| o.micro_batch as u32),
                            slice: s.op.map_or(NO_TAG, |o| o.slice as u32),
                            chunk: s.op.map_or(NO_TAG, |o| o.chunk as u32),
                            peer: NO_TAG,
                            start_ns: (s.start * 1e9).round() as u64,
                            end_ns: (s.end * 1e9).round() as u64,
                        })
                        .collect(),
                    dropped: 0,
                })
                .collect(),
        }
    }

    #[test]
    fn sim_derived_trace_fits_perfectly() {
        let sch = Mepipe::new().generate(&Dims::new(2, 4).slices(2)).unwrap();
        let sim = simulate(&sch, &UniformSimCost::default(), &SimConfig::default()).unwrap();
        let trace = trace_from_sim(&sim);
        let r = BubbleCheckReport::from_run(&trace, &sim);
        assert!(!r.ops.is_empty());
        assert_eq!(r.stages.len(), 2);
        // Rounding seconds -> ns keeps every ratio within a hair of 1.
        assert!(r.max_misfit() < 1e-6, "misfit {}", r.max_misfit());
        assert!((r.ratio() - 1.0).abs() < 1e-6);
        assert!(r.mean_relative_error() < 1e-6);
        for o in &r.ops {
            assert_eq!(o.measured_count, o.modeled_count);
        }
        for s in &r.stages {
            assert!((s.measured_busy_s - s.modeled_busy_s).abs() < 1e-6);
        }
        assert!((r.measured_makespan_s - r.modeled_makespan_s).abs() < 1e-6);
    }

    #[test]
    fn inflated_measurements_show_up_in_the_ratio() {
        let sch = Mepipe::new().generate(&Dims::new(2, 2).slices(2)).unwrap();
        let sim = simulate(&sch, &UniformSimCost::default(), &SimConfig::default()).unwrap();
        let mut trace = trace_from_sim(&sim);
        // Double every measured duration in place.
        for st in &mut trace.stages {
            for s in &mut st.spans {
                s.end_ns = s.start_ns + 2 * (s.end_ns - s.start_ns);
            }
        }
        let r = BubbleCheckReport::from_run(&trace, &sim);
        assert!((r.ratio() - 2.0).abs() < 1e-6, "ratio {}", r.ratio());
        assert!(r.max_misfit() > 0.5);
        // Every row doubled: |m − m/2| / m = 0.5 on each row.
        assert!((r.mean_relative_error() - 0.5).abs() < 1e-6);
    }

    #[test]
    fn render_names_every_stage_and_kind() {
        let sch = Mepipe::new().generate(&Dims::new(2, 2).slices(2)).unwrap();
        let sim = simulate(&sch, &UniformSimCost::default(), &SimConfig::default()).unwrap();
        let r = BubbleCheckReport::from_run(&trace_from_sim(&sim), &sim);
        let text = r.render();
        assert!(text.contains("bubblecheck"));
        assert!(text.contains("stage 0 F"));
        assert!(text.contains("stage 1"));
    }
}
