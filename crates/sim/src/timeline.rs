//! Timeline segments and the per-stage activity summaries behind
//! Figures 11 and 12.

use mepipe_schedule::ir::{Op, OpKind};

/// What a worker was doing during a segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SegmentKind {
    /// A forward pass.
    Forward,
    /// A fused backward pass.
    Backward,
    /// An input-gradient backward pass.
    BackwardInput,
    /// A weight-gradient op executed at its static list position.
    BackwardWeight,
    /// Weight-gradient GEMMs drained opportunistically into a wait gap.
    WgradDrain,
}

impl SegmentKind {
    /// Maps a schedule op kind to its segment kind.
    pub fn from_op(kind: OpKind) -> Self {
        match kind {
            OpKind::Forward => SegmentKind::Forward,
            OpKind::Backward => SegmentKind::Backward,
            OpKind::BackwardInput => SegmentKind::BackwardInput,
            OpKind::BackwardWeight => SegmentKind::BackwardWeight,
        }
    }

    /// Single-letter tag for rendering.
    pub fn letter(self) -> char {
        match self {
            SegmentKind::Forward => 'F',
            SegmentKind::Backward => 'B',
            SegmentKind::BackwardInput => 'b',
            SegmentKind::BackwardWeight => 'W',
            SegmentKind::WgradDrain => 'w',
        }
    }
}

/// One contiguous activity interval on one worker.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    /// Activity class.
    pub kind: SegmentKind,
    /// The schedule op, when the segment corresponds to exactly one.
    pub op: Option<Op>,
    /// Start time in seconds.
    pub start: f64,
    /// End time in seconds.
    pub end: f64,
}

impl Segment {
    /// Segment duration.
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }
}

/// Activity breakdown of one worker over an iteration (the quantities the
/// Figure 11/12 timelines visualise).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StageActivity {
    /// Time in forward passes.
    pub forward: f64,
    /// Time in (fused or input-gradient) backward passes.
    pub backward: f64,
    /// Time in weight-gradient work (static or drained).
    pub wgrad: f64,
    /// Idle time.
    pub idle: f64,
    /// Total span considered.
    pub span: f64,
}

/// Summarises one worker's segments over `[0, span]`.
pub fn stage_activity(segments: &[Segment], span: f64) -> StageActivity {
    let mut a = StageActivity {
        span,
        ..Default::default()
    };
    for s in segments {
        match s.kind {
            SegmentKind::Forward => a.forward += s.duration(),
            SegmentKind::Backward | SegmentKind::BackwardInput => a.backward += s.duration(),
            SegmentKind::BackwardWeight | SegmentKind::WgradDrain => a.wgrad += s.duration(),
        }
    }
    a.idle = (span - a.forward - a.backward - a.wgrad).max(0.0);
    a
}

/// Renders per-stage timelines as low-resolution ASCII strips (`width`
/// characters per stage), for the experiment harness's Figure 11/12
/// output. Each cell shows the dominant activity in its time bucket.
pub fn render_strips(segments: &[Vec<Segment>], span: f64, width: usize) -> String {
    let mut out = String::new();
    for (w, segs) in segments.iter().enumerate() {
        let mut row = vec!['.'; width];
        for s in segs {
            let a = ((s.start / span) * width as f64).floor() as usize;
            let b = (((s.end / span) * width as f64).ceil() as usize).min(width);
            for cell in row.iter_mut().take(b).skip(a.min(width)) {
                *cell = s.kind.letter();
            }
        }
        out.push_str(&format!("stage {w}: "));
        out.extend(row);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(kind: SegmentKind, start: f64, end: f64) -> Segment {
        Segment {
            kind,
            op: None,
            start,
            end,
        }
    }

    #[test]
    fn activity_accounts_for_everything() {
        let segs = vec![
            seg(SegmentKind::Forward, 0.0, 2.0),
            seg(SegmentKind::BackwardInput, 3.0, 5.0),
            seg(SegmentKind::WgradDrain, 5.0, 6.0),
        ];
        let a = stage_activity(&segs, 8.0);
        assert_eq!(a.forward, 2.0);
        assert_eq!(a.backward, 2.0);
        assert_eq!(a.wgrad, 1.0);
        assert_eq!(a.idle, 3.0);
    }

    #[test]
    fn strips_show_dominant_activity() {
        let segs = vec![vec![
            seg(SegmentKind::Forward, 0.0, 5.0),
            seg(SegmentKind::Backward, 5.0, 10.0),
        ]];
        let s = render_strips(&segs, 10.0, 10);
        assert!(s.contains("FFFFF"));
        assert!(s.contains("BBBBB"));
    }

    #[test]
    fn strips_clamp_to_width() {
        let segs = vec![vec![seg(SegmentKind::Forward, 9.0, 20.0)]];
        let s = render_strips(&segs, 10.0, 10);
        // Over-long segment must not panic and fills to the edge.
        assert!(s.ends_with("F\n") || s.contains('F'));
    }
}
