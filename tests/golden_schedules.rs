//! Golden snapshot tests: the exact timelines of the paper's figure
//! schedules, pinned so that any change to the generators or the executor
//! is a *visible* diff, never a silent one.
//!
//! Generation is deterministic (property-tested), so these snapshots are
//! stable. To refresh after an intentional change, run
//! `cargo run --release -p mepipe-bench --bin experiments fig2 fig4`
//! and paste the new timelines.

use mepipe::schedule::{exec::UnitCost, render::render};
use mepipe::{Dims, ScheduleGenerator, Svpp};

#[test]
fn figure2_dapple_golden() {
    let sch = mepipe::schedule::generator::Dapple
        .generate(&Dims::new(4, 4))
        .unwrap();
    let got = render(
        &sch,
        &UnitCost {
            fwd: 1.0,
            bwd: 2.0,
            wgrad: 0.0,
        },
    )
    .unwrap();
    let want = "\
stage 0: Fa0 Fb0 Fc0 Fd0 ... ... ... ... ... ... Ba0 Ba0 ... Bb0 Bb0 ... Bc0 Bc0 ... Bd0 Bd0
stage 1: ... Fa0 Fb0 Fc0 ... ... ... ... Ba0 Ba0 Fd0 Bb0 Bb0 ... Bc0 Bc0 ... Bd0 Bd0 ... ...
stage 2: ... ... Fa0 Fb0 ... ... Ba0 Ba0 Fc0 Bb0 Bb0 Fd0 Bc0 Bc0 ... Bd0 Bd0 ... ... ... ...
stage 3: ... ... ... Fa0 Ba0 Ba0 Fb0 Bb0 Bb0 Fc0 Bc0 Bc0 Fd0 Bd0 Bd0 ... ... ... ... ... ...
";
    assert_eq!(got, want, "DAPPLE timeline drifted:\n{got}");
}

#[test]
fn figure4a_svpp_golden() {
    let sch = Svpp::new().generate(&Dims::new(4, 4).slices(2)).unwrap();
    let got = render(&sch, &UnitCost::ones()).unwrap();
    let want = "\
stage 0: Fa0 Fa1 Fb0 Fb1 Fc0 ... ... ... Ba1 Fc1 Ba0 Fd0 Bb1 Fd1 Bb0 ... Bc1 ... Bc0 ... Bd1 Bd0
stage 1: ... Fa0 Fa1 Fb0 Fb1 ... ... Ba1 Fc0 Ba0 Fc1 Bb1 Fd0 Bb0 Fd1 Bc1 ... Bc0 ... Bd1 Bd0 ...
stage 2: ... ... Fa0 Fa1 Fb0 ... Ba1 Fb1 Ba0 Fc0 Bb1 Fc1 Bb0 Fd0 Bc1 Fd1 Bc0 ... Bd1 Bd0 ... ...
stage 3: ... ... ... Fa0 Fa1 Ba1 Fb0 Ba0 Fb1 Bb1 Fc0 Bb0 Fc1 Bc1 Fd0 Bc0 Fd1 Bd1 Bd0 ... ... ...
";
    assert_eq!(got, want, "SVPP v=1 timeline drifted:\n{got}");
}

#[test]
fn figure4a_structure_invariants() {
    // Independent of the exact snapshot: the last stage runs pure
    // slice-level 1F1B after its two-slice warmup, and every stage's
    // backwards run slices in reverse order per micro-batch.
    let sch = Svpp::new().generate(&Dims::new(4, 4).slices(2)).unwrap();
    use mepipe::schedule::ir::OpKind;
    for ops in &sch.workers {
        for mb in 0..4 {
            let b1 = ops
                .iter()
                .position(|o| o.kind == OpKind::Backward && o.micro_batch == mb && o.slice == 1)
                .unwrap();
            let b0 = ops
                .iter()
                .position(|o| o.kind == OpKind::Backward && o.micro_batch == mb && o.slice == 0)
                .unwrap();
            assert!(b1 < b0, "mb {mb}: slice-1 backward must precede slice-0");
        }
    }
}
