//! Integration tests of the `mepipe` CLI binary (spawned as a process via
//! the `CARGO_BIN_EXE_*` path Cargo provides to integration tests).

use std::process::Command;

fn mepipe(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_mepipe"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

#[test]
fn analyze_prints_table3() {
    let (stdout, _, ok) = mepipe(&["analyze", "-p", "8", "-v", "2", "-s", "4", "-n", "16"]);
    assert!(ok);
    assert!(stdout.contains("SVPP"));
    assert!(stdout.contains("DAPPLE"));
    assert!(stdout.contains("TeraPipe"));
}

#[test]
fn schedule_generates_and_renders() {
    let (stdout, _, ok) = mepipe(&[
        "schedule", "--method", "svpp", "-p", "4", "-s", "2", "-n", "4", "--render",
    ]);
    assert!(ok);
    assert!(stdout.contains("SVPP: 4 workers"));
    assert!(stdout.contains("stage 0: Fa0"));
}

#[test]
fn simulate_reports_headline_metrics() {
    let (stdout, _, ok) = mepipe(&[
        "simulate", "--model", "13b", "--gbs", "128", "--pp", "8", "--dp", "8", "--spp", "4",
    ]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("iteration time"));
    assert!(stdout.contains("MFU"));
}

#[test]
fn simulate_rejects_oom_configs() {
    // DAPPLE-esque: 13B without slicing at pp=8 cannot hold activations.
    let (_, stderr, ok) = mepipe(&[
        "simulate", "--model", "13b", "--gbs", "128", "--pp", "8", "--dp", "8",
    ]);
    assert!(!ok);
    assert!(stderr.contains("OOM"), "stderr: {stderr}");
}

#[test]
fn unknown_command_fails_with_usage() {
    let (_, stderr, ok) = mepipe(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("USAGE"));
}

#[test]
fn missing_flags_are_reported() {
    let (_, stderr, ok) = mepipe(&["schedule", "--method", "svpp"]);
    assert!(!ok);
    assert!(stderr.contains("missing required flag"), "stderr: {stderr}");
}
