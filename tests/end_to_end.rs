//! End-to-end integration: schedule generation → validation → simulation
//! → metrics for every scheduling method, plus the real threaded runtime
//! against the simulator's assumptions.

use mepipe::hw::topology::ClusterSpec;
use mepipe::model::{
    config::TransformerConfig,
    cost::ExecutionCost,
    partition::{PartitionSpec, SequenceSplit},
};
use mepipe::schedule::{
    generator::{Dapple, GPipe, TeraPipe, Vpp, Zb, Zbv},
    validate::validate,
    Schedule,
};
use mepipe::sim::{
    engine::{simulate, SimConfig},
    metrics, ModelCost,
};
use mepipe::strategy::{search_all, Method};
use mepipe::tensor::init::synthetic_tokens;
use mepipe::train::{
    params::ModelParams,
    pipeline::{PipelineRuntime, WgradMode},
};
use mepipe::{Dims, Mepipe, ScheduleGenerator, Svpp};

fn every_method_schedule(p: usize, n: usize, s: usize) -> Vec<Schedule> {
    let base = Dims::new(p, n);
    vec![
        GPipe.generate(&base).unwrap(),
        Dapple.generate(&base).unwrap(),
        Vpp.generate(&base.virtual_chunks(2)).unwrap(),
        TeraPipe.generate(&base.slices(s)).unwrap(),
        Zb.generate(&base).unwrap(),
        Zbv.generate(&base.virtual_chunks(2)).unwrap(),
        Svpp::new().generate(&base.slices(s)).unwrap(),
        Mepipe::new()
            .generate(&base.virtual_chunks(2).slices(s))
            .unwrap(),
    ]
}

#[test]
fn every_method_validates_and_simulates() {
    for sch in every_method_schedule(4, 8, 2) {
        validate(&sch).unwrap_or_else(|e| panic!("{}: {e}", sch.meta.name));
        let cost = mepipe::sim::UniformSimCost::default();
        let r = simulate(&sch, &cost, &SimConfig::default())
            .unwrap_or_else(|e| panic!("{}: {e}", sch.meta.name));
        assert!(r.makespan > 0.0, "{}", sch.meta.name);
        assert!(
            r.bubble_ratio() >= 0.0 && r.bubble_ratio() < 1.0,
            "{}",
            sch.meta.name
        );
    }
}

#[test]
fn mepipe_13b_full_stack() {
    // The paper's headline configuration, end to end through the real
    // cost model: Llama-13B, 64 GPUs, (PP 8, SPP 4, DP 8), GBS 128.
    let model = TransformerConfig::llama2_13b();
    let cluster = ClusterSpec::rtx4090_cluster();
    let spec = PartitionSpec {
        pp: 8,
        vp: 1,
        dp: 8,
        seq: SequenceSplit::SlicePipeline { slices: 4 },
        recompute: false,
        micro_batch_size: 1,
        global_batch: 128,
    };
    let schedule = Mepipe::new()
        .generate(&Dims::new(8, spec.micro_batches()).slices(4))
        .unwrap();
    validate(&schedule).unwrap();
    let cost = ModelCost::new(ExecutionCost::new(model, spec, &cluster).unwrap());
    let budget = mepipe::model::memory::activation_budget_bytes(
        &model,
        &spec,
        cluster.accelerator.usable_memory_bytes(),
    );
    let r = simulate(
        &schedule,
        &cost,
        &SimConfig {
            dynamic_wgrad: true,
            memory_limit_bytes: Some(budget),
            ..Default::default()
        },
    )
    .unwrap();
    assert!(r.oom.is_none(), "13B optimal config must fit: {:?}", r.oom);
    // Paper: 5852 ms iteration, 35% MFU, 116 TFLOPS.
    assert!(
        (3.0..9.0).contains(&r.iteration_time),
        "iteration {}",
        r.iteration_time
    );
    let mfu = metrics::mfu(&r, cost.execution_cost());
    assert!((0.25..0.45).contains(&mfu), "MFU {mfu}");
    // Peak activation fits in the 24 GB card next to ~8 GiB static.
    let peak = r.peak_activation_bytes.iter().copied().fold(0.0, f64::max);
    assert!(peak < 15.0 * 1024f64.powi(3), "peak {peak}");
}

#[test]
fn threaded_runtime_agrees_with_every_wgrad_mode_and_schedule() {
    let cfg = TransformerConfig {
        seq_len: 32,
        ..TransformerConfig::tiny(4)
    };
    let rt = PipelineRuntime::new(ModelParams::init(cfg, 7), 2, 2);
    let batch: Vec<Vec<usize>> = (0..4)
        .map(|i| synthetic_tokens(cfg.seq_len + 1, cfg.vocab, 40 + i))
        .collect();
    let dims = Dims::new(2, 4).virtual_chunks(2).slices(2);
    let fused = Svpp::new().generate(&dims).unwrap();
    let split = Mepipe::new().generate(&dims).unwrap();
    let a = rt
        .run_iteration(&fused, &batch, WgradMode::Immediate, None)
        .unwrap();
    let b = rt
        .run_iteration(&split, &batch, WgradMode::AtWeightOp, None)
        .unwrap();
    let c = rt
        .run_iteration(&split, &batch, WgradMode::DrainOnWait, None)
        .unwrap();
    assert!((a.loss - b.loss).abs() < 1e-9);
    assert!((a.loss - c.loss).abs() < 1e-9);
    assert!(a.grads.max_abs_diff(&b.grads) < 1e-4);
    assert!(a.grads.max_abs_diff(&c.grads) < 1e-4);
}

#[test]
fn search_reproduces_paper_winner_on_both_clusters() {
    let model = TransformerConfig::llama2_13b();
    for cluster in [ClusterSpec::rtx4090_cluster(), ClusterSpec::a100_cluster()] {
        let results = search_all(&model, &cluster, 128);
        let mepipe = results
            .iter()
            .find(|(m, _)| *m == Method::Mepipe)
            .and_then(|(_, e)| e.as_ref())
            .unwrap_or_else(|| panic!("MEPipe feasible on {}", cluster.accelerator.name));
        // The paper's claim is MEPipe vs the hand-written zoo; the
        // synthesized tiers (DESIGN.md §11) are *supposed* to beat it.
        let mut best_synth = f64::INFINITY;
        for (m, e) in &results {
            if let Some(e) = e {
                if m.is_synthesized() {
                    best_synth = best_synth.min(e.iteration_time);
                    continue;
                }
                assert!(
                    mepipe.iteration_time <= e.iteration_time + 1e-9,
                    "{}: {} beat MEPipe on {}",
                    cluster.accelerator.name,
                    m.name(),
                    cluster.accelerator.name
                );
            }
        }
        assert!(
            best_synth <= mepipe.iteration_time + 1e-9,
            "{}: best synthesized schedule lost to MEPipe",
            cluster.accelerator.name
        );
    }
}

#[test]
fn oom_configs_are_rejected_consistently() {
    // The memory model and the simulator must agree on the famous
    // failure: DAPPLE without CP on 13B (peak = A > 24 GB).
    let model = TransformerConfig::llama2_13b();
    let cluster = ClusterSpec::rtx4090_cluster();
    let cand = mepipe::strategy::Candidate {
        method: Method::Dapple,
        spec: PartitionSpec {
            pp: 8,
            vp: 1,
            dp: 8,
            seq: SequenceSplit::None,
            recompute: false,
            micro_batch_size: 1,
            global_batch: 128,
        },
    };
    assert!(mepipe::strategy::evaluate(&cand, &model, &cluster).is_err());
    // With recomputation it fits (the paper's escape hatch).
    let recomp = mepipe::strategy::Candidate {
        spec: PartitionSpec {
            recompute: true,
            ..cand.spec
        },
        ..cand
    };
    assert!(mepipe::strategy::evaluate(&recomp, &model, &cluster).is_ok());
}
