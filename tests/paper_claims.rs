//! Integration tests pinning the paper's quantitative claims, section by
//! section. Each test cites the claim it checks.

use mepipe::core::analytic::{self, AnalysisParams};
use mepipe::core::svpp::SvppConfig;
use mepipe::hw::pricing::{compare_cost_effectiveness, ServerPricing};
use mepipe::hw::topology::ClusterSpec;
use mepipe::model::{config::TransformerConfig, memory};
use mepipe::schedule::validate::peak_in_flight;
use mepipe::strategy::{search, search_all, Method};
use mepipe::{Dims, ScheduleGenerator, Svpp};

/// Abstract: "when partitioning each sample into 4 and 8 slices, the
/// reduction in peak memory consumption of activations exceeds 70% and
/// 80%" (vs the whole-micro-batch baselines at p=8, v=2).
#[test]
fn abstract_memory_reduction() {
    for (s, floor) in [(4usize, 0.70), (8, 0.80)] {
        let frac = analytic::svpp_memory_fraction(AnalysisParams {
            p: 8,
            v: 2,
            s,
            n: 8,
        });
        assert!(1.0 - frac > floor, "s={s}: fraction {frac}");
    }
}

/// Section 4.1: the worked peak-memory examples of Figure 4, measured on
/// actually generated schedules.
#[test]
fn section41_worked_examples() {
    let a = Svpp::new().generate(&Dims::new(4, 4).slices(2)).unwrap();
    assert_eq!(peak_in_flight(&a)[0], 5); // 5/8 · A.
    let b = Svpp::new()
        .generate(&Dims::new(4, 4).virtual_chunks(2).slices(2))
        .unwrap();
    assert!(peak_in_flight(&b)[0] <= 9); // 9/16 · A bound.
}

/// Section 4.2: "the scheduling method in Figure 5(c) reduces the memory
/// consumption by 50% while increasing the bubble ratio" — the floor
/// variant holds v·s units versus the default's v·max(p,s)+min(p,s)−1.
#[test]
fn section42_variant_floor() {
    let cfg = SvppConfig::new(4, 2, 2).virtual_chunks(2);
    let dims = Dims::new(4, 2).virtual_chunks(2).slices(2);
    let floor = Svpp::new()
        .warmup_cap(cfg.min_warmup())
        .generate(&dims)
        .unwrap();
    let full = Svpp::new().generate(&dims).unwrap();
    let pf = peak_in_flight(&floor)[0] as f64;
    let pm = peak_in_flight(&full)[0] as f64;
    assert!(pf <= 0.55 * pm.max(8.0), "floor {pf} vs full {pm}");
}

/// Section 7.2 headline: MEPipe speeds up Llama-13B over the best
/// baseline at every global batch size, more at smaller batches
/// (paper: 1.36x / 1.49x / 1.86x at GBS 128 / 64 / 32).
#[test]
fn section72_speedups() {
    let model = TransformerConfig::llama2_13b();
    let cluster = ClusterSpec::rtx4090_cluster();
    let mut speedups = Vec::new();
    for gbs in [128usize, 64, 32] {
        let results = search_all(&model, &cluster, gbs);
        let mepipe = results
            .iter()
            .find(|(m, _)| *m == Method::Mepipe)
            .and_then(|(_, e)| e.as_ref())
            .expect("MEPipe feasible")
            .iteration_time;
        // The paper's baselines are the hand-written zoo; the synthesized
        // tiers (DESIGN.md §11) are *supposed* to beat MEPipe.
        let best = results
            .iter()
            .filter(|(m, _)| *m != Method::Mepipe && !m.is_synthesized())
            .filter_map(|(_, e)| e.as_ref().map(|e| e.iteration_time))
            .fold(f64::INFINITY, f64::min);
        speedups.push(best / mepipe);
    }
    for (gbs, s) in [(128, speedups[0]), (64, speedups[1]), (32, speedups[2])] {
        assert!(s > 1.0, "GBS {gbs}: no speedup ({s})");
        assert!(s < 2.5, "GBS {gbs}: implausible speedup ({s})");
    }
}

/// Section 7.4: Llama-34B fits MEPipe at PP 16 *without* recomputation
/// while VPP and the zero-bubble variants cannot run it at all.
#[test]
fn section74_34b_feasibility() {
    let model = TransformerConfig::llama2_34b();
    let cluster = ClusterSpec::rtx4090_cluster();
    assert!(
        search(Method::Vpp, &model, &cluster, 128).is_none(),
        "VPP must be infeasible"
    );
    assert!(
        search(Method::Zbv, &model, &cluster, 128).is_none(),
        "ZBV must be infeasible"
    );
    let mepipe = search(Method::Mepipe, &model, &cluster, 128).expect("MEPipe feasible");
    assert!(
        !mepipe.candidate.spec.recompute,
        "MEPipe needs no recomputation"
    );
    assert!(
        mepipe.candidate.spec.pp >= 16,
        "MEPipe runs 34B at deep pipelines"
    );
    let dapple = search(Method::Dapple, &model, &cluster, 128).expect("DAPPLE feasible");
    assert!(
        dapple.candidate.spec.recompute,
        "DAPPLE needs recomputation on 34B"
    );
    assert!(mepipe.iteration_time < dapple.iteration_time);
}

/// Section 7.6 / Table 9: 64x RTX 4090 is within 2x of 32x A100 on
/// iteration time and ~2.5x more cost-effective.
#[test]
fn section76_cost_effectiveness() {
    let model = TransformerConfig::llama2_13b();
    let t4090 = search_all(&model, &ClusterSpec::rtx4090_cluster(), 128)
        .into_iter()
        .filter_map(|(_, e)| e)
        .map(|e| e.iteration_time)
        .fold(f64::INFINITY, f64::min);
    let ta100 = search_all(&model, &ClusterSpec::a100_cluster(), 128)
        .into_iter()
        .filter_map(|(_, e)| e)
        .map(|e| e.iteration_time)
        .fold(f64::INFINITY, f64::min);
    let rel = t4090 / ta100;
    assert!((0.5..2.0).contains(&rel), "time ratio {rel}");
    let report = compare_cost_effectiveness(
        ServerPricing::rtx4090(),
        64,
        t4090,
        ServerPricing::a100(),
        32,
        ta100,
    );
    assert!(
        (1.5..4.0).contains(&report.cost_effectiveness_ratio),
        "cost-effectiveness {}",
        report.cost_effectiveness_ratio
    );
}

/// Section 7.2's premise (Figure 1): on a 24 GB card, whole-micro-batch
/// 1F1B cannot hold Llama-13B activations without CP, while SVPP's peak
/// fits with room to spare.
#[test]
fn figure1_premise() {
    let model = TransformerConfig::llama2_13b();
    let a = memory::sample_activation_bytes(&model);
    let usable = ClusterSpec::rtx4090_cluster()
        .accelerator
        .usable_memory_bytes() as f64;
    assert!(a > usable, "A = {a} must exceed usable {usable}");
    let svpp_frac = analytic::svpp_memory_fraction(AnalysisParams {
        p: 8,
        v: 2,
        s: 8,
        n: 8,
    });
    assert!(svpp_frac * a < 0.25 * usable);
}
