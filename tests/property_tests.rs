//! Property-based integration tests (proptest) over the schedule
//! machinery and the numerical substrate.

use proptest::prelude::*;

use mepipe::core::reschedule::reschedule_backwards;
use mepipe::core::svpp::SvppConfig;
use mepipe::schedule::{
    exec::{execute, UnitCost},
    generator::{Dapple, GPipe, TeraPipe, Vpp, Zb, Zbv},
    validate::{peak_in_flight, validate},
};
use mepipe::sim::{
    engine::{simulate, SimConfig},
    UniformSimCost,
};
use mepipe::tensor::{
    init::{rng, uniform},
    ops::{causal_attention, causal_attention_backward},
    Tensor,
};
use mepipe::{Dims, Mepipe, ScheduleGenerator, Svpp};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every SVPP configuration in a broad random range generates a
    /// dependency-valid schedule whose stage-0 peak respects the warmup
    /// budget.
    #[test]
    fn svpp_always_valid_and_capped(
        p in 1usize..=8,
        v in 1usize..=3,
        s in 1usize..=6,
        n in 1usize..=10,
        f_extra in 0usize..=6,
    ) {
        let cfg = SvppConfig::new(p, s, n).virtual_chunks(v).warmup_cap(v * s + f_extra);
        let sch = Svpp::new()
            .warmup_cap(v * s + f_extra)
            .generate(&Dims::new(p, n).virtual_chunks(v).slices(s))
            .unwrap();
        validate(&sch).unwrap();
        let peak = peak_in_flight(&sch)[0];
        prop_assert!(peak <= cfg.effective_warmup(), "peak {} > f {}", peak, cfg.effective_warmup());
        prop_assert!(peak >= (v * s).min(n * v * s), "peak {} below feasibility floor", peak);
    }

    /// Split-backward SVPP stays valid and executable too.
    #[test]
    fn svpp_split_always_valid(p in 1usize..=6, s in 1usize..=4, n in 1usize..=6) {
        let sch = Mepipe::new().generate(&Dims::new(p, n).slices(s)).unwrap();
        validate(&sch).unwrap();
        execute(&sch, &UnitCost::ones()).unwrap();
    }

    /// Every baseline generator produces valid schedules across its whole
    /// parameter range.
    #[test]
    fn baselines_always_valid(p in 1usize..=8, n in 1usize..=12, s in 1usize..=4) {
        let base = Dims::new(p, n);
        validate(&GPipe.generate(&base).unwrap()).unwrap();
        validate(&Dapple.generate(&base).unwrap()).unwrap();
        validate(&TeraPipe.generate(&base.slices(s)).unwrap()).unwrap();
        validate(&Zb.generate(&base).unwrap()).unwrap();
        validate(&Zbv.generate(&base.virtual_chunks(2)).unwrap()).unwrap();
        if n.is_multiple_of(p) {
            validate(&Vpp.generate(&base.virtual_chunks(2)).unwrap()).unwrap();
        }
    }

    /// The static executor and the simulator agree whenever the simulator
    /// runs without dynamic behaviours.
    #[test]
    fn simulator_matches_executor(p in 1usize..=6, n in 1usize..=8) {
        let sch = Dapple.generate(&Dims::new(p, n)).unwrap();
        let t = execute(&sch, &UnitCost { fwd: 1.0, bwd: 2.0, wgrad: 0.0 }).unwrap();
        let r = simulate(&sch, &UniformSimCost::default(), &SimConfig::default()).unwrap();
        prop_assert!((t.makespan - r.makespan).abs() < 1e-9);
    }

    /// Rescheduling backwards never increases the unit-cost makespan and
    /// never worsens the peak memory.
    #[test]
    fn reschedule_never_hurts(p in 2usize..=6, v in 1usize..=2, s in 1usize..=3, n in 1usize..=5) {
        let sch = Svpp::new()
            .generate(&Dims::new(p, n).virtual_chunks(v).slices(s))
            .unwrap();
        let opt = reschedule_backwards(&sch).unwrap();
        validate(&opt).unwrap();
        let tb = execute(&sch, &UnitCost::ones()).unwrap();
        let ta = execute(&opt, &UnitCost::ones()).unwrap();
        prop_assert!(ta.makespan <= tb.makespan + 1e-9);
        prop_assert!(peak_in_flight(&opt)[0] <= peak_in_flight(&sch)[0]);
    }

    /// Dynamic weight-gradient draining never loses work: busy time equals
    /// the static run's busy time (the same total compute, re-packed).
    #[test]
    fn dynamic_drain_conserves_work(p in 2usize..=5, n in 1usize..=6) {
        let sch = Zb.generate(&Dims::new(p, n)).unwrap();
        let cost = UniformSimCost { comm: 0.25, wgrad_units: 4, ..Default::default() };
        let stat = simulate(&sch, &cost, &SimConfig { dynamic_wgrad: false, ..Default::default() }).unwrap();
        let dynr = simulate(&sch, &cost, &SimConfig { dynamic_wgrad: true, ..Default::default() }).unwrap();
        let bs: f64 = stat.busy.iter().sum();
        let bd: f64 = dynr.busy.iter().sum();
        prop_assert!((bs - bd).abs() < 1e-6, "static {} vs dynamic {}", bs, bd);
    }

    /// Slice-wise causal attention equals full-sequence attention for
    /// arbitrary shapes and seeds (forward and all three gradients).
    #[test]
    fn attention_slicing_equivalence(
        seed in 0u64..1000,
        t_per in 1usize..=4,
        s in 1usize..=4,
        d in 1usize..=6,
    ) {
        let t = t_per * s;
        let mut r = rng(seed);
        let q = uniform(t, d, 1.0, &mut r);
        let k = uniform(t, d, 1.0, &mut r);
        let v = uniform(t, d, 1.0, &mut r);
        let dout = uniform(t, d, 1.0, &mut r);

        let (full, saved) = causal_attention(&q, &k, &v, 0);
        let (dq_f, dk_f, dv_f) = causal_attention_backward(&dout, &q, &k, &v, &saved);

        let mut outs = Vec::new();
        let mut dqs = Vec::new();
        let mut dk_acc = Tensor::zeros(t, d);
        let mut dv_acc = Tensor::zeros(t, d);
        for i in 0..s {
            let off = i * t_per;
            let qs = q.slice_rows(off, t_per);
            let kp = k.slice_rows(0, off + t_per);
            let vp = v.slice_rows(0, off + t_per);
            let (o, sv) = causal_attention(&qs, &kp, &vp, off);
            outs.push(o);
            let (dq, dk, dv) =
                causal_attention_backward(&dout.slice_rows(off, t_per), &qs, &kp, &vp, &sv);
            dqs.push(dq);
            for rr in 0..off + t_per {
                for cc in 0..d {
                    dk_acc.set(rr, cc, dk_acc.at(rr, cc) + dk.at(rr, cc));
                    dv_acc.set(rr, cc, dv_acc.at(rr, cc) + dv.at(rr, cc));
                }
            }
        }
        prop_assert!(full.max_abs_diff(&Tensor::vstack(&outs)) < 1e-4);
        prop_assert!(dq_f.max_abs_diff(&Tensor::vstack(&dqs)) < 1e-4);
        prop_assert!(dk_f.max_abs_diff(&dk_acc) < 1e-4);
        prop_assert!(dv_f.max_abs_diff(&dv_acc) < 1e-4);
    }

    /// Peak in-flight units from the list structure equal the simulator's
    /// byte peak (divided by the unit size) for fused-backward schedules.
    #[test]
    fn memory_accounting_consistent(p in 1usize..=6, n in 1usize..=8) {
        let sch = Dapple.generate(&Dims::new(p, n)).unwrap();
        let cost = UniformSimCost { act_bytes: 3.0, ..Default::default() };
        let r = simulate(&sch, &cost, &SimConfig::default()).unwrap();
        let peaks = peak_in_flight(&sch);
        for (units, bytes) in peaks.iter().zip(&r.peak_activation_bytes) {
            prop_assert!((bytes - *units as f64 * 3.0).abs() < 1e-9);
        }
    }
}
